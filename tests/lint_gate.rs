//! Tier-1 gate: the workspace must be clean under `dlog-lint`.
//!
//! Runs the full rule catalog (wire-exhaustiveness, lock-order,
//! panic-freedom, ack-after-force, status-parity, forbid-unsafe) against
//! the repository and fails `cargo test` on any violation not covered by
//! a justified `lint.allow` entry, and on stale allowlist entries. The
//! same report is available interactively via `cargo run -p dlog-lint`.

use std::path::Path;

#[test]
fn workspace_passes_dlog_lint() {
    // CARGO_MANIFEST_DIR is crates/bench; walk up to the workspace root.
    let root = dlog_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/bench");
    let report = dlog_lint::lint_workspace(&root).expect("lint run failed");
    assert!(
        report.ok(),
        "dlog-lint found unallowlisted violations — fix them or add a \
         justified entry to lint.allow:\n{}",
        report.to_text()
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lint.allow entries (the code they excused is gone — remove \
         them):\n{}",
        report.unused_allows.join("\n")
    );
    // Sanity: the run actually scanned the workspace.
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
}
