//! Tier-1 gate: the workspace must be clean under `dlog-lint`.
//!
//! One pass runs the full rule catalog — the six lexical rules
//! (wire-exhaustiveness, lock-order, panic-freedom, ack-after-force,
//! status-parity, forbid-unsafe), the five flow-sensitive rules on
//! the dataflow engine (blocking-under-lock, lsn-checked-arith,
//! seal-typestate, result-swallow, view-escape), the interprocedural
//! rules (hot-path-alloc, unbounded-recursion), and the thread-safety
//! pass (shared-field-lockset, atomics-ordering) — against the
//! repository and fails
//! `cargo test` on any violation not covered by a justified
//! `lint.allow` entry, on stale allowlist entries, on fixture drift
//! (a rule whose pinned pass/fail fixtures no longer behave), and on a
//! blown latency budget. The same report is available interactively via
//! `cargo run -p dlog-lint` (add `--timing` for the per-rule table).

use std::path::Path;
use std::time::Instant;

fn root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; walk up to the workspace root.
    dlog_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/bench")
}

#[test]
fn workspace_passes_dlog_lint() {
    let t0 = Instant::now();
    let report = dlog_lint::lint_workspace(&root()).expect("lint run failed");
    let elapsed = t0.elapsed();
    assert!(
        report.ok(),
        "dlog-lint found unallowlisted violations — fix them or add a \
         justified entry to lint.allow:\n{}",
        report.to_text()
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lint.allow entries (the code they excused is gone — remove \
         them):\n{}",
        report.unused_allows.join("\n")
    );
    // Sanity: the run actually scanned the workspace and every rule ran.
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    for rule in dlog_lint::rules::ALL_RULES {
        assert!(
            report.timings.iter().any(|t| t.rule == *rule),
            "rule {rule} has no timing entry — did its pass run?"
        );
    }
    // Latency budget: the gate runs on every `cargo test`; the full
    // catalog (CFG construction, dataflow fixpoints, the
    // interprocedural call-graph + summary passes, and the
    // thread-safety lockset fixpoint) must stay interactive. Measured
    // ~200ms debug with the thread-safety pass; 4s leaves ~20x headroom
    // for slow CI machines.
    assert!(
        elapsed.as_secs_f64() < 4.0,
        "full-workspace lint took {elapsed:?} (budget 4s) — see \
         `cargo run -p dlog-lint -- --timing` for the per-rule split"
    );
}

/// The race report must demonstrably cover the PR 8 concurrency
/// surface: the in-memory network's endpoint inbox (`Inbox.q`,
/// `Inbox.sleepers` under `EndpointQueue.inbox`), the receive buffer
/// pool's free list (`BufPool.slots`), and the server runner's stop
/// flag (`ServerRunner.stop`). If a refactor renames or drops one of
/// these out of the access map, the detector has lost its primary
/// subject and this gate fails before the lint sweep can go quietly
/// blind.
#[test]
fn race_report_covers_the_shared_server_surface() {
    let json = dlog_lint::workspace::build_race_report(&root(), false).expect("race report");
    for needle in [
        "\"name\":\"Inbox\"",
        "\"name\":\"sleepers\"",
        "\"name\":\"q\"",
        "\"name\":\"BufPool\"",
        "\"name\":\"slots\"",
        "\"name\":\"ServerRunner\"",
        "ServerRunner.stop",
        "crates/server/src/runner.rs::spawn",
    ] {
        assert!(
            json.contains(needle),
            "race report lost `{needle}` — the thread-safety pass no \
             longer sees the sharded-server surface"
        );
    }
}

/// Every rule's pass/fail fixtures must behave exactly as pinned: the
/// fail fixture fires the recorded number of findings, the pass fixture
/// stays silent. This catches a rule edit that silently weakens (or
/// over-tightens) the catalog even when the workspace sweep still
/// passes.
#[test]
fn rule_fixtures_have_not_drifted() {
    let dir = root().join("crates/lint/tests/fixtures");
    let checked = dlog_lint::fixtures::verify_fixtures(&dir).unwrap_or_else(|e| panic!("{e}"));
    assert!(checked >= 20, "only {checked} fixture runs checked");
}
