//! Tier-1 gate: the workspace must be clean under `dlog-lint`.
//!
//! One pass runs the full rule catalog — the six lexical rules
//! (wire-exhaustiveness, lock-order, panic-freedom, ack-after-force,
//! status-parity, forbid-unsafe) and the four flow-sensitive rules on
//! the dataflow engine (blocking-under-lock, lsn-checked-arith,
//! seal-typestate, result-swallow) — against the repository and fails
//! `cargo test` on any violation not covered by a justified
//! `lint.allow` entry, on stale allowlist entries, on fixture drift
//! (a rule whose pinned pass/fail fixtures no longer behave), and on a
//! blown latency budget. The same report is available interactively via
//! `cargo run -p dlog-lint` (add `--timing` for the per-rule table).

use std::path::Path;
use std::time::Instant;

fn root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; walk up to the workspace root.
    dlog_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/bench")
}

#[test]
fn workspace_passes_dlog_lint() {
    let t0 = Instant::now();
    let report = dlog_lint::lint_workspace(&root()).expect("lint run failed");
    let elapsed = t0.elapsed();
    assert!(
        report.ok(),
        "dlog-lint found unallowlisted violations — fix them or add a \
         justified entry to lint.allow:\n{}",
        report.to_text()
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lint.allow entries (the code they excused is gone — remove \
         them):\n{}",
        report.unused_allows.join("\n")
    );
    // Sanity: the run actually scanned the workspace and every rule ran.
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    for rule in dlog_lint::rules::ALL_RULES {
        assert!(
            report.timings.iter().any(|t| t.rule == *rule),
            "rule {rule} has no timing entry — did its pass run?"
        );
    }
    // Latency budget: the gate runs on every `cargo test`; the full
    // catalog (CFG construction, dataflow fixpoints, and the
    // interprocedural call-graph + summary passes) must stay
    // interactive. Measured ~150ms debug; 3s leaves 20x headroom for
    // slow CI machines.
    assert!(
        elapsed.as_secs_f64() < 3.0,
        "full-workspace lint took {elapsed:?} (budget 3s) — see \
         `cargo run -p dlog-lint -- --timing` for the per-rule split"
    );
}

/// Every rule's pass/fail fixtures must behave exactly as pinned: the
/// fail fixture fires the recorded number of findings, the pass fixture
/// stays silent. This catches a rule edit that silently weakens (or
/// over-tightens) the catalog even when the workspace sweep still
/// passes.
#[test]
fn rule_fixtures_have_not_drifted() {
    let dir = root().join("crates/lint/tests/fixtures");
    let checked = dlog_lint::fixtures::verify_fixtures(&dir).unwrap_or_else(|e| panic!("{e}"));
    assert!(checked >= 20, "only {checked} fixture runs checked");
}
