//! **E6 — Figures 3-1 / 3-2 / 3-3** as an executable test: drive the real
//! client/server stack through the paper's worked example and assert the
//! interval-table *shapes* at each stage (the concrete epoch numbers come
//! from the live generator, so they are asserted as ordered variables
//! e1 < e2 < e3 rather than the figures' literal 1/3/4).

use dlog_bench::harness::{client_addr, server_addr};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_core::assign::AssignStrategy;
use dlog_net::wire::{Message, Packet, Request, Response};
use dlog_net::Endpoint;
use dlog_types::{ClientId, Interval, IntervalList, Lsn, ServerId};

/// Under the full parallel test suite, server threads can be starved past
/// the client's RPC budgets; initialization legitimately reports a quorum
/// failure then. Retry a few times, as a real client node would.
fn init_retry<E: dlog_net::Endpoint>(log: &mut dlog_core::ReplicatedLog<E>) {
    for attempt in 0..5 {
        match log.initialize() {
            Ok(()) => return,
            Err(e) if attempt == 4 => panic!("initialize after retries: {e}"),
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(150)),
        }
    }
}

fn interval_list(cluster: &Cluster, s: ServerId, c: ClientId) -> IntervalList {
    let ep = cluster.net.endpoint(client_addr(ClientId(900 + s.0)));
    ep.send(
        server_addr(s),
        &Packet::bare(Message::Request {
            id: 1,
            body: Request::IntervalList { client: c },
        }),
    )
    .unwrap();
    match ep.recv(std::time::Duration::from_secs(1)).unwrap() {
        Some((_, pkt)) => match pkt.msg {
            Message::Response {
                body: Response::Intervals { intervals },
                ..
            } => intervals,
            other => panic!("unexpected response {other:?}"),
        },
        None => IntervalList::new(),
    }
}

#[test]
fn figures_3_1_through_3_3() {
    let cluster = Cluster::start("figure-states", ClusterOptions::new(3));
    let c = ClientId(7);
    let (s1, s2, s3) = (ServerId(1), ServerId(2), ServerId(3));

    // ---- Stage A (first epoch): records 1..=3 on servers 1+2.
    let e1;
    {
        let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
        init_retry(&mut log);
        e1 = log.epoch();
        for i in 1..=3u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        // crash
    }
    let l1 = interval_list(&cluster, s1, c);
    let l2 = interval_list(&cluster, s2, c);
    let l3 = interval_list(&cluster, s3, c);
    assert_eq!(l1.intervals(), &[Interval::new(e1, Lsn(1), Lsn(3))]);
    assert_eq!(l2.intervals(), &[Interval::new(e1, Lsn(1), Lsn(3))]);
    assert!(l3.is_empty());

    // ---- Stage B (second epoch, as in Figure 3-1): restart with server
    // 2 unreachable. Recovery (δ=1) copies record 3 with epoch e2 to the
    // new targets and masks LSN 4; then records 5..=9 are written.
    cluster.net.partition(client_addr(c), server_addr(s2));
    let e2;
    {
        let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
        init_retry(&mut log);
        e2 = log.epoch();
        assert!(e2 > e1, "epochs must increase across restarts");
        assert_eq!(
            log.end_of_log().unwrap(),
            Lsn(4),
            "copy of 3 plus mask at 4"
        );
        for i in 5..=9u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        cluster.net.heal(client_addr(c), server_addr(s2));
        // crash here (cleanly: everything on N servers)
    }
    // Figure 3-1 shape: server 1 has (e1: 1..3) and (e2: 3..9);
    // server 2 (the one that missed the restart) still has only (e1: 1..3);
    // server 3 has (e2: 3..9).
    let l1 = interval_list(&cluster, s1, c);
    let l2 = interval_list(&cluster, s2, c);
    let l3 = interval_list(&cluster, s3, c);
    assert_eq!(
        l1.intervals(),
        &[
            Interval::new(e1, Lsn(1), Lsn(3)),
            Interval::new(e2, Lsn(3), Lsn(9))
        ],
        "server 1 must hold both epochs like Figure 3-1"
    );
    assert_eq!(l2.intervals(), &[Interval::new(e1, Lsn(1), Lsn(3))]);
    assert_eq!(l3.intervals(), &[Interval::new(e2, Lsn(3), Lsn(9))]);

    // ---- Stage C (Figure 3-2): record 10 reaches only server 1.
    {
        let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
        // Make server 2 invisible again so targets remain {1, 3}.
        cluster.net.partition(client_addr(c), server_addr(s2));
        init_retry(&mut log);
        let t_other = log
            .targets()
            .iter()
            .copied()
            .find(|&t| t != s1)
            .expect("two targets");
        cluster.net.partition(client_addr(c), server_addr(t_other));
        log.write(payload(100, 40)).unwrap();
        log.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(120));
        cluster.net.heal(client_addr(c), server_addr(t_other));
        cluster.net.heal(client_addr(c), server_addr(s2));
        // crash with the record partially written
    }
    let partial_end = interval_list(&cluster, s1, c).last().map(|iv| iv.hi);

    // ---- Stage D (Figure 3-3): restart; the doubtful tail is re-copied
    // under epoch e3 and a not-present record is appended; the log is
    // consistent and writable.
    let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
    init_retry(&mut log);
    let e3 = log.epoch();
    assert!(e3 > e2);
    let end = log.end_of_log().unwrap();
    // Whatever the init quorum saw, the end covers at least the certain
    // records (through the stage-B recovery end plus the mask).
    assert!(end >= Lsn(11), "end {end} must cover the recovered tail");
    // The recovery installed the e3 rewrite on the stage-D targets
    // (servers 1 and 2, with everything healed) — while server 3, like
    // the paper's "Server 3 unavailable" case in Figure 3-3, may retain a
    // stale lower-epoch copy that loses every subsequent merge.
    for s in [s1, s2] {
        let list = interval_list(&cluster, s, c);
        let last = list.last().expect("recovery target holds intervals");
        assert_eq!(
            last.epoch, e3,
            "server {s} top interval must be the e3 rewrite"
        );
    }
    let stale = interval_list(&cluster, s3, c)
        .last()
        .expect("server 3 holds intervals");
    assert!(
        stale.epoch < e3,
        "server 3 keeps its stale copy, as in Figure 3-3"
    );
    let _ = partial_end;

    // Reads are consistent and the log accepts new writes.
    for i in 1..=end.0 {
        let a = log.read(Lsn(i)).is_ok();
        let b = log.read(Lsn(i)).is_ok();
        assert_eq!(a, b, "read of {i} must be deterministic");
    }
    let next = log.write(payload(999, 16)).unwrap();
    assert_eq!(next, end.next());
    log.force().unwrap();
}

#[test]
fn not_present_masks_follow_every_restart() {
    // δ = 3: each restart masks exactly 3 LSNs past the end.
    let cluster = Cluster::start("masking", ClusterOptions::new(3));
    let mut expected_end = 0u64;
    for round in 0..3u64 {
        let mut log = cluster.client(5, 2, 3);
        init_retry(&mut log);
        if round > 0 {
            expected_end += 3; // the masks from this restart
        }
        assert_eq!(
            log.end_of_log().unwrap(),
            Lsn(expected_end),
            "round {round}"
        );
        for _ in 0..4 {
            log.write(payload(round, 32)).unwrap();
        }
        log.force().unwrap();
        expected_end += 4;
    }
}
