//! End-to-end tests of log repair (§5.3): after a permanent server loss,
//! a repair pass restores N live copies of every record, and the log
//! survives the subsequent loss of another original holder.

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::Lsn;

#[test]
fn repair_restores_redundancy_after_media_loss() {
    let mut cluster = Cluster::start("repair-basic", ClusterOptions::new(4));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=30u64 {
        log.write(payload(i, 90)).unwrap();
    }
    log.force().unwrap();

    // A holder dies for good (media failure: its disk state is lost to
    // us — we never reboot it).
    let dead = log.targets()[0];
    let survivor = log.targets()[1];
    cluster.kill_server(dead);

    let report = log.repair().unwrap();
    assert_eq!(report.live_servers, 3);
    assert!(report.under_replicated >= 30, "all records lost a copy");
    assert_eq!(report.records_copied, report.under_replicated);

    // Now the *other* original holder dies too. Before the repair this
    // would have destroyed records; after it, everything still reads.
    cluster.kill_server(survivor);
    for i in 1..=30u64 {
        let got = log
            .read(Lsn(i))
            .unwrap_or_else(|e| panic!("post-repair read {i}: {e}"));
        assert_eq!(got.as_bytes(), payload(i, 90).as_slice(), "lsn {i}");
    }
}

#[test]
fn repair_is_a_noop_on_healthy_logs() {
    let cluster = Cluster::start("repair-noop", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=10u64 {
        log.write(payload(i, 50)).unwrap();
    }
    log.force().unwrap();
    let report = log.repair().unwrap();
    assert_eq!(report.under_replicated, 0);
    assert_eq!(report.records_copied, 0);
    assert!(report.records_examined >= 10);
}

#[test]
fn repair_requires_quiescence() {
    let cluster = Cluster::start("repair-quiesce", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    log.write(payload(1, 50)).unwrap(); // buffered, unforced
    assert!(log.repair().is_err());
    log.force().unwrap();
    assert!(log.repair().is_ok());
}

#[test]
fn writes_continue_after_repair() {
    let mut cluster = Cluster::start("repair-continue", ClusterOptions::new(4));
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=8u64 {
        log.write(payload(i, 60)).unwrap();
    }
    log.force().unwrap();
    let epoch_before = log.epoch();
    cluster.kill_server(log.targets()[0]);
    log.repair().unwrap();
    assert!(log.epoch() > epoch_before, "repair adopts a fresh epoch");

    // The stream continues at the next LSN under the new epoch.
    let next = log.write(payload(9, 60)).unwrap();
    assert_eq!(next, Lsn(9));
    for i in 10..=15u64 {
        log.write(payload(i, 60)).unwrap();
    }
    log.force().unwrap();
    for i in 1..=15u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 60).as_slice(),
            "lsn {i}"
        );
    }

    // And a restart after all that still recovers cleanly.
    drop(log);
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=15u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 60).as_slice(),
            "lsn {i}"
        );
    }
}

#[test]
fn repair_preserves_not_present_masks() {
    // Masked LSNs must stay masked through a repair (present flags are
    // copied as-is).
    let mut cluster = Cluster::start("repair-masks", ClusterOptions::new(4));
    {
        let mut log = cluster.client(1, 2, 2);
        log.initialize().unwrap();
        for i in 1..=5u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        // crash
    }
    let mut log = cluster.client(1, 2, 2);
    log.initialize().unwrap();
    let end = log.end_of_log().unwrap();
    assert_eq!(end, Lsn(7)); // 5 + delta(2) masks
    log.force().unwrap(); // no-op, keeps repair happy

    cluster.kill_server(log.targets()[0]);
    log.repair().unwrap();
    cluster.kill_server(log.targets()[1]);

    use dlog_types::DlogError;
    for i in 6..=7u64 {
        assert!(
            matches!(log.read(Lsn(i)), Err(DlogError::NotPresent { .. })),
            "mask at {i} must survive repair"
        );
    }
    for i in 1..=5u64 {
        assert!(log.read(Lsn(i)).is_ok(), "lsn {i}");
    }
}
