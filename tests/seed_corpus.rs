//! Pinned soak-seed corpus. `tests/soak.rs` sweeps a small contiguous
//! seed range; this test pins seeds that exercised distinctive
//! schedules (heavy kill/reboot churn, partition flapping, client
//! crashes mid-force) so they stay in coverage verbatim even if the
//! sweep range changes. Every scenario also re-checks the
//! force-before-ack trace invariant on every server.
//!
//! The second half pins `dlog-mc` counterexample traces: the minimized
//! action sequences the model checker produced for each seeded protocol
//! mutation. Replaying them is instant (a handful of actions against a
//! fresh world) and guards two things at once — the mutations stay
//! detectable, and the action-trace syntax stays replayable, so any
//! counterexample the nightly lane uploads can be re-run verbatim.

use dlog_bench::scenario::run_soak_scenario;
use dlog_mc::explore::{default_scratch, replay_trace};
use dlog_mc::{Action, McConfig, Mutation};

/// Seeds deliberately disjoint from the `0..6` sweep in
/// `tests/soak.rs`.
const CORPUS: [u64; 8] = [7, 11, 42, 99, 123, 2024, 31337, 0xD106];

#[test]
fn pinned_seed_corpus_holds() {
    let mut total = 0;
    for &seed in &CORPUS {
        total += run_soak_scenario(seed);
    }
    assert!(total > 0, "the corpus must force something");
}

/// Minimized counterexamples as found by `Explorer::run_bfs` on the
/// default 2-server/1-client configuration, pinned in replayable text
/// form. Each entry: (mutation, violated invariant, trace).
const MC_PINS: [(Mutation, &str, &[&str]); 4] = [
    (
        // Ack fabricated the moment the ForceLog arrives: the write and
        // force are issued back-to-back, and delivering the ForceLog
        // (slot 2) alone is enough — it carries the unacked suffix, so
        // the server stores record 1 and "acks" it in one step with no
        // durable round in between.
        Mutation::EarlyAck,
        "ack-after-force",
        &["step:0", "step:0", "deliver:2"],
    ),
    (
        // The flush acks its obligation without running force_batch.
        Mutation::SkipForce,
        "ack-after-force",
        &["step:0", "step:0", "deliver:2", "flush:1"],
    ),
    (
        // The flush runs the durable round but drops the ack.
        Mutation::LostAck,
        "obligation-safety",
        &["step:0", "step:0", "deliver:2", "flush:1"],
    ),
    (
        // Recovery reopens with a blank NVRAM device: the record that
        // was delivered before the crash vanishes from the store.
        Mutation::Amnesia,
        "recovery-consistency",
        &["step:0", "deliver:0", "crash:1", "recover:1"],
    ),
];

#[test]
fn pinned_mc_counterexamples_still_reproduce() {
    for (i, (mutation, invariant, lines)) in MC_PINS.iter().enumerate() {
        let cfg = McConfig {
            mutation: *mutation,
            ..McConfig::default()
        };
        let trace: Vec<Action> = lines
            .iter()
            .map(|s| s.parse().expect("pinned action parses"))
            .collect();
        let violation = replay_trace(&cfg, &trace, &default_scratch(&format!("corpus-mc-{i}")))
            .expect("pinned trace applies")
            .unwrap_or_else(|| {
                panic!("pin {i} ({mutation:?}): counterexample no longer reproduces")
            });
        assert_eq!(
            violation.invariant, *invariant,
            "pin {i} ({mutation:?}): different invariant now trips: {}",
            violation.detail
        );
    }
}

/// The same traces must run clean without the mutation — otherwise the
/// pins would be testing a protocol bug, not the checker's ability to
/// see a seeded one.
#[test]
fn pinned_mc_traces_are_clean_without_mutation() {
    for (i, (_, _, lines)) in MC_PINS.iter().enumerate() {
        let cfg = McConfig::default();
        let trace: Vec<Action> = lines
            .iter()
            .map(|s| s.parse().expect("pinned action parses"))
            .collect();
        let violation = replay_trace(
            &cfg,
            &trace,
            &default_scratch(&format!("corpus-mc-clean-{i}")),
        )
        .expect("pinned trace applies");
        assert!(
            violation.is_none(),
            "pin {i}: faithful protocol violates on the pinned trace: {violation:?}"
        );
    }
}
