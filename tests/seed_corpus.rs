//! Pinned soak-seed corpus. `tests/soak.rs` sweeps a small contiguous
//! seed range; this test pins seeds that exercised distinctive
//! schedules (heavy kill/reboot churn, partition flapping, client
//! crashes mid-force) so they stay in coverage verbatim even if the
//! sweep range changes. Every scenario also re-checks the
//! force-before-ack trace invariant on every server.

use dlog_bench::scenario::run_soak_scenario;

/// Seeds deliberately disjoint from the `0..6` sweep in
/// `tests/soak.rs`.
const CORPUS: [u64; 8] = [7, 11, 42, 99, 123, 2024, 31337, 0xD106];

#[test]
fn pinned_seed_corpus_holds() {
    let mut total = 0;
    for &seed in &CORPUS {
        total += run_soak_scenario(seed);
    }
    assert!(total > 0, "the corpus must force something");
}
