//! End-to-end tests of the archive tier (dlog-archive): servers archive
//! sealed segments to per-server object stores, retention prunes the
//! local head, and the pruned records stay readable — directly, through
//! interval lists, and through a §5.3 repair that re-replicates them
//! from a peer's archive.

use std::time::{Duration, Instant};

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_net::wire::Response;
use dlog_types::{Lsn, ServerId};

fn archive_opts(servers: u64) -> ClusterOptions {
    ClusterOptions {
        archive: true,
        segment_bytes: Some(2048),
        track_bytes: 512,
        ..ClusterOptions::new(servers)
    }
}

/// Archive then prune every live server: run one archival round by hand
/// (deterministic — no reliance on runner idle timing) and shrink local
/// retention so the head of each stream only survives in the archive.
fn archive_and_prune(cluster: &mut Cluster, max_bytes: u64) -> u64 {
    let mut pruned = 0;
    for sid in cluster.servers.clone() {
        let servers = cluster.stop_server(sid);
        if servers.is_empty() {
            continue;
        }
        for mut server in servers {
            server.archive_tick().unwrap();
            let report = server.store_mut().enforce_retention(max_bytes).unwrap();
            pruned += report.freed;
        }
        cluster.boot_server(sid);
    }
    pruned
}

#[test]
fn pruned_head_is_served_from_the_archive() {
    let mut cluster = Cluster::start("archive-read", archive_opts(3));
    {
        let mut log = cluster.client(1, 2, 8);
        log.initialize().unwrap();
        for i in 1..=60u64 {
            log.write(payload(i, 150)).unwrap();
        }
        log.force().unwrap();
    }

    let freed = archive_and_prune(&mut cluster, 2048);
    assert!(freed > 0, "retention must drop the archived head");

    // A fresh client sees the full log: interval lists are merged with
    // the archive's, and reads of pruned positions fall back to it.
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=60u64 {
        let got = log
            .read(Lsn(i))
            .unwrap_or_else(|e| panic!("read {i} after prune: {e}"));
        assert_eq!(got.as_bytes(), payload(i, 150).as_slice(), "lsn {i}");
    }
}

#[test]
fn repair_rereplicates_from_a_peer_archive() {
    let mut cluster = Cluster::start("archive-repair", archive_opts(4));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=40u64 {
        log.write(payload(i, 150)).unwrap();
    }
    log.force().unwrap();

    let freed = archive_and_prune(&mut cluster, 2048);
    assert!(freed > 0, "retention must drop the archived head");

    // One holder dies for good. The surviving holder's local copy of the
    // head is pruned — repair must read it back through the peer's
    // archive tier to restore redundancy.
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    log.force().unwrap();
    let dead = log.targets()[0];
    let survivor = log.targets()[1];
    cluster.kill_server(dead);

    let report = log.repair().unwrap();
    assert_eq!(report.live_servers, 3);
    assert!(report.under_replicated >= 40, "all records lost a copy");
    assert_eq!(report.records_copied, report.under_replicated);

    // Losing the other original holder now destroys nothing.
    cluster.kill_server(survivor);
    for i in 1..=40u64 {
        let got = log
            .read(Lsn(i))
            .unwrap_or_else(|e| panic!("post-repair read {i}: {e}"));
        assert_eq!(got.as_bytes(), payload(i, 150).as_slice(), "lsn {i}");
    }
}

#[test]
fn status_reports_archive_gauges() {
    let cluster = Cluster::start("archive-status", archive_opts(2));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=60u64 {
        log.write(payload(i, 150)).unwrap();
    }
    log.force().unwrap();

    // The runner archives from its idle loop; poll status until the
    // background tick has published a manifest.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut archived = 0;
    while Instant::now() < deadline {
        match log.server_status(ServerId(1)).unwrap() {
            Response::Status {
                archived_bytes,
                pending_upload_bytes,
                last_manifest_lsn,
                ..
            } => {
                if archived_bytes > 0 {
                    archived = archived_bytes;
                    assert!(last_manifest_lsn > 0, "manifest covers installed records");
                    assert!(
                        pending_upload_bytes < 3 * 2048,
                        "pending tail stays under a couple of segments, got {pending_upload_bytes}"
                    );
                    break;
                }
            }
            other => panic!("unexpected status reply {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        archived > 0,
        "background archiver never published a manifest"
    );
}
