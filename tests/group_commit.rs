//! Property tests for group-commit force coalescing (§4.2 + the PR 5
//! write pipeline): under random coalescing windows, batch caps, δ
//! window sizes, fault plans, and flush interleavings,
//!
//! 1. every acknowledged `NewHighLSN` was durably forced first
//!    (`check_force_before_ack` over each server's own trace),
//! 2. a server never emits an out-of-order (decreasing) forced ack for
//!    a client — group commit must preserve the cumulative-ack rule,
//! 3. a full read-back returns every record byte-identical to what the
//!    client wrote, even when records were NAK- or timeout-retransmitted
//!    into a coalescing server.
//!
//! The cluster is the synchronous single-threaded world from
//! `trace_determinism.rs`: `LogServer::handle` runs inline on the test
//! thread, so deferred force obligations only flush at the batch cap,
//! at seeded random flush points, or when the client's inbox drains —
//! the worst-case interleavings a threaded runner would only hit by
//! luck.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::wire::{Message, NodeAddr, Packet};
use dlog_net::{Endpoint, FaultPlan};
use dlog_obs::{check_force_before_ack, Obs, ObsOptions};
use dlog_server::gen::GenStore;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, Lsn, ReplicationConfig, ServerId};

const M: u64 = 3;
const RECORDS: u64 = 60;
const CLIENT_ADDR: NodeAddr = NodeAddr(1000);

struct World {
    servers: HashMap<NodeAddr, LogServer>,
    inbox: VecDeque<(NodeAddr, Packet)>,
    plan: FaultPlan,
    rng: StdRng,
    /// Probability of flushing a server's pending forces right after it
    /// handles a packet — exercises partial-batch group commits.
    flush_p: f64,
    /// Highest forced-ack LSN each server has *generated* (pre-fault),
    /// for the monotonicity invariant.
    last_ack: HashMap<NodeAddr, Lsn>,
}

impl World {
    fn deliver(&mut self, from: NodeAddr, to: NodeAddr, pkt: &Packet) {
        // Invariant 2: acks are checked where they are generated, before
        // the fault schedule gets a chance to drop or reorder them.
        if self.servers.contains_key(&from) {
            if let Message::NewHighLsn { lsn, .. } = &pkt.msg {
                let prev = self.last_ack.entry(from).or_insert(Lsn::ZERO);
                assert!(
                    *lsn >= *prev,
                    "server {from:?} acked {lsn:?} after {prev:?} (out of order)"
                );
                *prev = *lsn;
            }
        }
        if self.plan.loss > 0.0 && self.rng.gen_bool(self.plan.loss) {
            return;
        }
        let copies = if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            self.route(from, to, pkt.clone());
        }
    }

    fn route(&mut self, from: NodeAddr, to: NodeAddr, pkt: Packet) {
        if self.servers.contains_key(&to) {
            let (replies, flushed) = {
                let server = self.servers.get_mut(&to).expect("server exists");
                let replies = server.handle(from, &pkt);
                let flush = server.has_pending_forces() && self.rng.gen_bool(self.flush_p);
                let flushed = if flush {
                    server.flush_pending_forces()
                } else {
                    Vec::new()
                };
                (replies, flushed)
            };
            for (rto, rpkt) in replies.into_iter().chain(flushed) {
                self.deliver(to, rto, &rpkt);
            }
        } else if self.plan.reorder > 0.0
            && !self.inbox.is_empty()
            && self.rng.gen_bool(self.plan.reorder)
        {
            let idx = self.inbox.len() - 1;
            self.inbox.insert(idx, (from, pkt));
        } else {
            self.inbox.push_back((from, pkt));
        }
    }

    /// The inbox ran dry while the client is waiting: flush every
    /// server's deferred obligations (the sync-world analogue of the
    /// runner's idle flush).
    fn idle_flush(&mut self) {
        let addrs: Vec<NodeAddr> = self.servers.keys().copied().collect();
        for a in addrs {
            let out = self
                .servers
                .get_mut(&a)
                .map(LogServer::flush_pending_forces)
                .unwrap_or_default();
            for (to, pkt) in out {
                self.deliver(a, to, &pkt);
            }
        }
    }
}

struct SyncEndpoint {
    addr: NodeAddr,
    world: Arc<Mutex<World>>,
}

impl Endpoint for SyncEndpoint {
    fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let mut w = self.world.lock().expect("world lock");
        w.deliver(self.addr, to, packet);
        Ok(())
    }

    fn recv(&self, _timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        let mut w = self.world.lock().expect("world lock");
        if w.inbox.is_empty() {
            w.idle_flush();
        }
        Ok(w.inbox.pop_front())
    }
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join("dlog-group-commit").join(format!(
        "case-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create case dir");
    d
}

#[allow(clippy::needless_pass_by_value)]
fn run_case(plan: FaultPlan, window_us: u64, max_batch: usize, delta: u64, flush_p: f64) {
    let dir = fresh_dir();
    let mut servers = HashMap::new();
    let mut observers: Vec<(NodeAddr, Obs)> = Vec::new();
    for id in 1..=M {
        let d = dir.join(format!("server-{id}"));
        let opts = StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&d, opts, NvramDevice::new(1 << 20)).expect("open store");
        let gens = GenStore::open(d.join("gens")).expect("open gens");
        let mut config = ServerConfig::new(ServerId(id));
        config.coalesce_window = Duration::from_micros(window_us);
        config.coalesce_max_batch = max_batch;
        let mut server = LogServer::new(config, store, gens).expect("construct server");
        let obs = Obs::new(&ObsOptions::on());
        server.set_obs(obs.clone());
        observers.push((NodeAddr(id), obs));
        servers.insert(NodeAddr(id), server);
    }
    let world = Arc::new(Mutex::new(World {
        servers,
        inbox: VecDeque::new(),
        rng: StdRng::seed_from_u64(plan.seed ^ 0xC0A1_E5CE),
        plan,
        flush_p,
        last_ack: HashMap::new(),
    }));
    let ep = SyncEndpoint {
        addr: CLIENT_ADDR,
        world: Arc::clone(&world),
    };
    let addrs: HashMap<ServerId, NodeAddr> = (1..=M).map(|i| (ServerId(i), NodeAddr(i))).collect();
    let net = ClientNet::new(ep, addrs);
    let config = ReplicationConfig::new((1..=M).map(ServerId).collect(), 2, delta)
        .expect("replication config");
    let mut log = ReplicatedLog::new(ClientId(1), ClientOptions::new(config), net);
    log.initialize().expect("initialize");

    for i in 1..=RECORDS {
        log.write(dlog_bench::payload(i, 48)).expect("write");
        if i % 5 == 0 {
            log.force().expect("force");
        }
    }
    log.force().expect("final force");

    // Invariant 3: full read-back, byte-identical to what was written —
    // including records that arrived via selective retransmit.
    let recs = log
        .read_backward(Lsn(RECORDS), RECORDS as u32)
        .expect("read back");
    prop_assert_eq!(recs.len(), RECORDS as usize, "read-back missed records");
    for r in &recs {
        prop_assert!(r.present, "record {:?} masked without any recovery", r.lsn);
        prop_assert_eq!(
            r.data.as_bytes(),
            dlog_bench::payload(r.lsn.0, 48).as_slice(),
            "record {:?} bytes corrupted",
            r.lsn
        );
    }

    // Invariant 1, per server: no forced ack without a prior durable
    // force covering it.
    let w = world.lock().expect("world lock");
    let mut coalesced_total = 0;
    for (addr, obs) in &observers {
        let snap = obs.snapshot().expect("obs enabled");
        prop_assert_eq!(snap.trace_dropped, 0, "trace ring overflowed on {:?}", addr);
        check_force_before_ack(&snap.trace)
            .unwrap_or_else(|e| panic!("{addr:?}: force-before-ack violated: {e}"));
        let st = w.servers.get(addr).expect("server exists").stats();
        coalesced_total += st.coalesced_forces;
        prop_assert!(
            st.group_commits <= st.coalesced_forces,
            "{:?}: more group commits than deferred forces",
            addr
        );
    }
    if window_us > 0 {
        prop_assert!(
            coalesced_total > 0,
            "coalescing enabled but no force was ever deferred"
        );
    }
    drop(w);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn group_commit_holds_invariants(
        seed in any::<u64>(),
        window_us in prop_oneof![Just(0u64), 1u64..5_000],
        max_batch in 1usize..8,
        delta in 1u64..8,
        plan_kind in 0u8..3,
        flush_p in 0.0f64..0.4,
    ) {
        let plan = match plan_kind {
            0 => FaultPlan::reliable(),
            1 => FaultPlan::flaky(seed),
            _ => FaultPlan::hostile(seed),
        };
        run_case(plan, window_us, max_batch, delta, flush_p);
    }
}

/// A fixed worst-case shape outside proptest so it always runs: hostile
/// network, batch cap 1 below δ, coalescing on, frequent random flushes.
#[test]
fn group_commit_hostile_smoke() {
    run_case(FaultPlan::hostile(0x6C0), 2_000, 3, 4, 0.25);
}
