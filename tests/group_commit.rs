//! Property tests for group-commit force coalescing (§4.2 + the PR 5
//! write pipeline): under random coalescing windows, batch caps, δ
//! window sizes, fault plans, and flush interleavings,
//!
//! 1. every acknowledged `NewHighLSN` was durably forced first
//!    (`check_force_before_ack` over each server's own trace),
//! 2. a server never emits an out-of-order (decreasing) forced ack for
//!    a client — group commit must preserve the cumulative-ack rule,
//! 3. a full read-back returns every record byte-identical to what the
//!    client wrote, even when records were NAK- or timeout-retransmitted
//!    into a coalescing server.
//!
//! The cluster is the `dlog_mc::harness` synchronous single-threaded
//! world: `LogServer::handle` runs inline on the test thread, so
//! deferred force obligations only flush at the batch cap, at seeded
//! random flush points, or when the client's inbox drains — the
//! worst-case interleavings a threaded runner would only hit by luck.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::prelude::*;

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_mc::harness::{build_world, SyncEndpoint, SyncWorldOptions};
use dlog_net::wire::NodeAddr;
use dlog_net::FaultPlan;
use dlog_obs::check_force_before_ack;
use dlog_types::{ClientId, Lsn, ReplicationConfig, ServerId};

const M: u64 = 3;
const RECORDS: u64 = 60;
const CLIENT_ADDR: NodeAddr = NodeAddr(1000);

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join("dlog-group-commit").join(format!(
        "case-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create case dir");
    d
}

/// Per-server replay fingerprint: `(addr, ingest_allocs, ingest_records,
/// trace_bytes)`, sorted by address. Two same-seed runs must match.
type CaseFingerprint = Vec<(u64, u64, u64, Vec<u8>)>;

#[allow(clippy::needless_pass_by_value)]
fn run_case(
    plan: FaultPlan,
    window_us: u64,
    max_batch: usize,
    delta: u64,
    flush_p: f64,
) -> CaseFingerprint {
    let dir = fresh_dir();
    let rng_seed = plan.seed ^ 0xC0A1_E5CE;
    let (world, observers) = build_world(
        &dir,
        SyncWorldOptions::coalescing(
            M,
            plan,
            rng_seed,
            Duration::from_micros(window_us),
            max_batch,
            flush_p,
        ),
    )
    .expect("build world");
    let ep = SyncEndpoint::new(CLIENT_ADDR, std::sync::Arc::clone(&world));
    let addrs: HashMap<ServerId, NodeAddr> = (1..=M).map(|i| (ServerId(i), NodeAddr(i))).collect();
    let net = ClientNet::new(ep, addrs);
    let config = ReplicationConfig::new((1..=M).map(ServerId).collect(), 2, delta)
        .expect("replication config");
    let mut log = ReplicatedLog::new(ClientId(1), ClientOptions::new(config), net);
    log.initialize().expect("initialize");

    for i in 1..=RECORDS {
        log.write(dlog_bench::payload(i, 48)).expect("write");
        if i % 5 == 0 {
            log.force().expect("force");
        }
    }
    log.force().expect("final force");

    // Invariant 3: full read-back, byte-identical to what was written —
    // including records that arrived via selective retransmit.
    let recs = log
        .read_backward(Lsn(RECORDS), RECORDS as u32)
        .expect("read back");
    prop_assert_eq!(recs.len(), RECORDS as usize, "read-back missed records");
    for r in &recs {
        prop_assert!(r.present, "record {:?} masked without any recovery", r.lsn);
        prop_assert_eq!(
            r.data.as_bytes(),
            dlog_bench::payload(r.lsn.0, 48).as_slice(),
            "record {:?} bytes corrupted",
            r.lsn
        );
    }

    // Invariant 1, per server: no forced ack without a prior durable
    // force covering it. (Invariant 2 — cumulative-ack monotonicity — is
    // asserted inside the sync world, where acks are generated, before
    // the fault schedule can drop or reorder them.)
    let w = world.lock().expect("world lock");
    let mut coalesced_total = 0;
    let mut fingerprint: CaseFingerprint = Vec::with_capacity(observers.len());
    for (addr, obs) in &observers {
        let snap = obs.snapshot().expect("obs enabled");
        prop_assert_eq!(snap.trace_dropped, 0, "trace ring overflowed on {:?}", addr);
        check_force_before_ack(&snap.trace)
            .unwrap_or_else(|e| panic!("{addr:?}: force-before-ack violated: {e}"));
        let server = w.servers.get(addr).expect("server exists");
        let st = server.stats();
        coalesced_total += st.coalesced_forces;
        prop_assert!(
            st.group_commits <= st.coalesced_forces,
            "{:?}: more group commits than deferred forces",
            addr
        );
        let (ingest_allocs, ingest_records) = server.ingest_alloc_gauge();
        let trace_bytes = snap.trace.iter().flat_map(|e| e.to_bytes()).collect();
        fingerprint.push((addr.0, ingest_allocs, ingest_records, trace_bytes));
    }
    if window_us > 0 {
        prop_assert!(
            coalesced_total > 0,
            "coalescing enabled but no force was ever deferred"
        );
    }
    drop(w);
    let _ = std::fs::remove_dir_all(&dir);
    fingerprint.sort_unstable();
    fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn group_commit_holds_invariants(
        seed in any::<u64>(),
        window_us in prop_oneof![Just(0u64), 1u64..5_000],
        max_batch in 1usize..8,
        delta in 1u64..8,
        plan_kind in 0u8..3,
        flush_p in 0.0f64..0.4,
    ) {
        let plan = match plan_kind {
            0 => FaultPlan::reliable(),
            1 => FaultPlan::flaky(seed),
            _ => FaultPlan::hostile(seed),
        };
        let _ = run_case(plan, window_us, max_batch, delta, flush_p);
    }
}

/// A fixed worst-case shape outside proptest so it always runs: hostile
/// network, batch cap 1 below δ, coalescing on, frequent random flushes.
#[test]
fn group_commit_hostile_smoke() {
    let _ = run_case(FaultPlan::hostile(0x6C0), 2_000, 3, 4, 0.25);
}

/// Same seed ⇒ identical per-server traces AND identical per-server
/// ingest alloc gauges. The zero-copy ingest path may not allocate
/// nondeterministically: every delivered packet replays exactly, so the
/// counting-allocator deltas attributed to ingest must too. A warm-up
/// run pays one-time lazy-init allocations (CRC tables, empty-buf
/// singletons) before the measured pair. Wall-clock effects are fenced
/// out of the measured pair: the coalesce window is an hour (expiry
/// never fires mid-test, leaving the deterministic flush triggers —
/// batch cap, seeded rolls, inbox drain) and the plan is reliable (no
/// loss, so the client's wall-clock retransmit timers never trip, even
/// when parallel test threads steal CPU).
#[test]
fn group_commit_same_seed_identical_allocs() {
    const HOUR_US: u64 = 3_600_000_000;
    let _ = run_case(FaultPlan::reliable(), HOUR_US, 3, 4, 0.2);
    let a = run_case(FaultPlan::reliable(), HOUR_US, 3, 4, 0.2);
    let b = run_case(FaultPlan::reliable(), HOUR_US, 3, 4, 0.2);
    let ingested: u64 = a.iter().map(|(_, _, records, _)| records).sum();
    assert!(
        ingested > 0,
        "servers ingested nothing; comparison is vacuous"
    );
    for ((addr_a, allocs_a, records_a, trace_a), (addr_b, allocs_b, records_b, trace_b)) in
        a.iter().zip(&b)
    {
        assert_eq!(addr_a, addr_b, "server sets differ across replays");
        assert!(
            trace_a == trace_b,
            "server {addr_a}: trace bytes differ across replays"
        );
        assert_eq!(
            records_a, records_b,
            "server {addr_a}: ingested record counts differ across replays"
        );
        assert_eq!(
            allocs_a, allocs_b,
            "server {addr_a}: ingest alloc counts differ across replays — \
             the zero-copy path allocates nondeterministically"
        );
    }
}
