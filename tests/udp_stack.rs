//! The full stack over real UDP loopback sockets: initialization, writes,
//! forces, reads, and crash recovery across actual datagrams.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::udp::UdpEndpoint;
use dlog_net::wire::NodeAddr;
use dlog_server::gen::GenStore;
use dlog_server::runner::ServerRunner;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, Lsn, ReplicationConfig, ServerId};

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

struct UdpCluster {
    root: PathBuf,
    runners: Vec<ServerRunner>,
    server_ids: Vec<ServerId>,
}

impl Drop for UdpCluster {
    fn drop(&mut self) {
        for r in self.runners.drain(..) {
            drop(r);
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// UDP endpoints only accept datagrams from known peers, and ports are
/// ephemeral — so client sockets are bound *first* and registered with
/// every server socket before the servers start.
fn start_with_clients(
    tag: &str,
    m: u64,
    client_addr_ids: &[u64],
) -> (UdpCluster, Vec<UdpEndpoint>) {
    let client_eps: Vec<UdpEndpoint> = client_addr_ids
        .iter()
        .map(|&id| UdpEndpoint::bind(NodeAddr(1000 + id), loopback()).unwrap())
        .collect();
    let root = std::env::temp_dir().join(format!("dlog-udp-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server_ids: Vec<ServerId> = (1..=m).map(ServerId).collect();
    let mut server_eps = Vec::new();
    for &sid in &server_ids {
        server_eps.push(UdpEndpoint::bind(NodeAddr(sid.0), loopback()).unwrap());
    }
    let socket_addrs: Vec<SocketAddr> = server_eps
        .iter()
        .map(|e| e.socket_addr().unwrap())
        .collect();
    for sep in &server_eps {
        for (j, cep) in client_eps.iter().enumerate() {
            sep.add_peer(
                NodeAddr(1000 + client_addr_ids[j]),
                cep.socket_addr().unwrap(),
            );
        }
    }
    for cep in &client_eps {
        for (i, &sid) in server_ids.iter().enumerate() {
            cep.add_peer(NodeAddr(sid.0), socket_addrs[i]);
        }
    }
    let mut cluster = UdpCluster {
        root,
        runners: Vec::new(),
        server_ids: server_ids.clone(),
    };
    for (i, ep) in server_eps.into_iter().enumerate() {
        let sid = server_ids[i];
        let dir = cluster.root.join(format!("server-{}", sid.0));
        let opts = StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
        let gens = GenStore::open(dir.join("gens")).unwrap();
        let server = LogServer::new(ServerConfig::new(sid), store, gens).unwrap();
        cluster.runners.push(ServerRunner::spawn(server, ep));
    }
    (cluster, client_eps)
}

fn make_client(
    cluster: &UdpCluster,
    ep: UdpEndpoint,
    client_id: u64,
    n: usize,
    delta: u64,
) -> ReplicatedLog<UdpEndpoint> {
    let addrs: HashMap<ServerId, NodeAddr> = cluster
        .server_ids
        .iter()
        .map(|&s| (s, NodeAddr(s.0)))
        .collect();
    let net = ClientNet::new(ep, addrs);
    let config = ReplicationConfig::new(cluster.server_ids.clone(), n, delta).unwrap();
    ReplicatedLog::new(ClientId(client_id), ClientOptions::new(config), net)
}

#[test]
fn udp_write_force_read() {
    let (cluster, mut eps) = start_with_clients("wfr", 3, &[1]);
    let ep = eps.pop().unwrap();
    let mut log = make_client(&cluster, ep, 1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=30u64 {
        log.write(vec![i as u8; 120]).unwrap();
    }
    assert_eq!(log.force().unwrap(), Lsn(30));
    for i in 1..=30u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            vec![i as u8; 120].as_slice()
        );
    }
}

#[test]
fn udp_restart_recovers() {
    // Two sockets (distinct node addresses) for the same logical client:
    // its pre- and post-crash incarnations. The log identity is the
    // ClientId, not the transport address.
    let (cluster, mut eps) = start_with_clients("restart", 3, &[2, 3]);
    let ep1 = eps.remove(0);
    {
        let mut log = make_client(&cluster, ep1, 2, 2, 4);
        log.initialize().unwrap();
        for i in 1..=12u64 {
            log.write(vec![i as u8; 80]).unwrap();
        }
        log.force().unwrap();
        // crash
    }
    let ep2 = eps.remove(0);
    let mut log = make_client(&cluster, ep2, 2, 2, 4);
    log.initialize().unwrap();
    assert!(log.end_of_log().unwrap() >= Lsn(12));
    for i in 1..=12u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            vec![i as u8; 80].as_slice()
        );
    }
}
