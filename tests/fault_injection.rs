//! Adversarial fault schedules against the full stack: heavy packet loss,
//! repeated client crashes, repeated server crashes and reboots — the
//! replicated log must never lose a forced record and never serve
//! inconsistent answers.

use dlog_bench::harness::{client_addr, server_addr};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_net::FaultPlan;
use dlog_types::{DlogError, Lsn, ServerId};

#[test]
fn forced_records_survive_repeated_client_crashes() {
    let cluster = Cluster::start("multi-crash", ClusterOptions::new(3));
    // Across 5 client incarnations, write and force a few records each;
    // every forced record must be readable in every later incarnation.
    let mut durable: Vec<(u64, Vec<u8>)> = Vec::new();
    for round in 0..5u64 {
        let mut log = cluster.client(1, 2, 2);
        log.initialize().unwrap();
        for (lsn, bytes) in &durable {
            let got = log
                .read(Lsn(*lsn))
                .unwrap_or_else(|e| panic!("round {round}: lost forced record {lsn}: {e}"));
            assert_eq!(got.as_bytes(), bytes.as_slice(), "round {round} lsn {lsn}");
        }
        for i in 0..3u64 {
            let bytes = payload(round * 10 + i, 64);
            let lsn = log.write(bytes.clone()).unwrap();
            durable.push((lsn.0, bytes));
        }
        log.force().unwrap();
        // crash (drop)
    }
}

#[test]
fn hostile_network_cannot_corrupt_the_log() {
    let mut opts = ClusterOptions::new(3);
    opts.plan = FaultPlan {
        loss: 0.10,
        duplicate: 0.05,
        reorder: 0.10,
        seed: 31337,
    };
    let cluster = Cluster::start("hostile", opts);
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=40u64 {
        log.write(payload(i, 90)).unwrap();
        if i % 4 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();
    for i in 1..=40u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 90).as_slice(),
            "lsn {i}"
        );
    }
    // Duplicate suppression means the servers stored each record once per
    // copy; the client's own resends must not create divergent content.
    drop(log);
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    for i in 1..=40u64 {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 90).as_slice()
        );
    }
}

#[test]
fn rolling_server_reboots() {
    let mut cluster = Cluster::start("rolling", ClusterOptions::new(4));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    let mut next = 1u64;
    for victim in 1..=4u64 {
        for _ in 0..5 {
            log.write(payload(next, 70)).unwrap();
            next += 1;
        }
        log.force().unwrap();
        // Reboot one server (graceful stop + restart) each round.
        cluster.kill_server(ServerId(victim));
        cluster.boot_server(ServerId(victim));
    }
    log.force().unwrap();
    for i in 1..next {
        assert_eq!(
            log.read(Lsn(i)).unwrap().as_bytes(),
            payload(i, 70).as_slice(),
            "lsn {i}"
        );
    }
}

#[test]
fn reads_fail_cleanly_when_all_holders_down() {
    let mut cluster = Cluster::start("all-down", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    log.write(payload(1, 50)).unwrap();
    log.force().unwrap();
    let holders: Vec<ServerId> = log.targets().to_vec();
    for s in holders {
        cluster.kill_server(s);
    }
    match log.read(Lsn(1)) {
        Err(DlogError::ServerUnavailable { .. } | DlogError::QuorumUnavailable { .. }) => {}
        other => panic!("expected clean unavailability, got {other:?}"),
    }
}

#[test]
fn partition_heals_and_writes_resume() {
    let cluster = Cluster::start("partition-heal", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    log.write(payload(1, 50)).unwrap();
    log.force().unwrap();

    // Partition the client from one target; the client switches to the
    // third server and keeps going.
    let t0 = log.targets()[0];
    cluster
        .net
        .partition(client_addr(log.client_id()), server_addr(t0));
    for i in 2..=6u64 {
        log.write(payload(i, 50)).unwrap();
    }
    log.force().unwrap();
    assert!(log.stats().switches >= 1);

    // Heal; everything stays readable.
    cluster
        .net
        .heal(client_addr(log.client_id()), server_addr(t0));
    for i in 1..=6u64 {
        assert!(log.read(Lsn(i)).is_ok(), "lsn {i}");
    }
}
