//! Deterministic replay: the same `FaultPlan` seed must produce a
//! byte-identical ordered trace-event sequence across two runs.
//!
//! Threads are the only source of nondeterminism in the full harness,
//! so this test drives real `LogServer`s *synchronously* on the
//! `dlog_mc::harness` sync world: a `SyncEndpoint` delivers each packet
//! by calling the sans-I/O `LogServer::handle` inline (under one lock,
//! on the test thread) and queues replies for the client, applying
//! `FaultPlan`-style loss, duplication, and reordering from a seeded
//! RNG consumed only per send. Client, servers, and the network share
//! ONE `dlog_obs::Obs` handle, so the interleaved `ClientWrite` /
//! `PacketSend` / `ServerIngest` / `Force` / `AckHighLsn` stream is
//! totally ordered by the shared sequence counter — and must replay
//! exactly.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_mc::harness::{build_world, SyncEndpoint, SyncWorldOptions};
use dlog_net::wire::NodeAddr;
use dlog_net::FaultPlan;
use dlog_obs::{Obs, ObsOptions};
use dlog_types::{ClientId, ReplicationConfig, ServerId};

const M: u64 = 3;
const CLIENT_ADDR: NodeAddr = NodeAddr(1000);

fn fresh_dir(label: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-trace-determinism")
        .join(format!("{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run the fixed workload under `plan` and return the ordered trace as
/// bytes (25 bytes per event, wall-clock-free by construction) plus the
/// client's counters.
fn run_once(plan: FaultPlan, dir: &Path) -> (Vec<u8>, dlog_core::client::ClientStats) {
    let obs = Obs::new(&ObsOptions::on());
    let (world, _observers) =
        build_world(dir, SyncWorldOptions::shared(M, plan, obs.clone())).expect("build world");
    let ep = SyncEndpoint::new(CLIENT_ADDR, world);
    let addrs: HashMap<ServerId, NodeAddr> = (1..=M).map(|i| (ServerId(i), NodeAddr(i))).collect();
    let net = ClientNet::new(ep, addrs);
    let servers: Vec<ServerId> = (1..=M).map(ServerId).collect();
    let config = ReplicationConfig::new(servers, 2, 4).unwrap();
    let mut log = ReplicatedLog::new(ClientId(1), ClientOptions::new(config), net);
    log.set_obs(obs.clone());
    log.initialize().unwrap();

    for i in 1u64..=120 {
        log.write(dlog_bench::payload(i, 48)).unwrap();
        if i % 7 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();

    let snap = obs.snapshot().expect("obs enabled");
    assert_eq!(snap.trace_dropped, 0, "trace ring overflowed; grow it");
    assert!(
        snap.trace.len() > 300,
        "suspiciously few events: {}",
        snap.trace.len()
    );
    dlog_obs::check_force_before_ack(&snap.trace).expect("force-before-ack invariant");
    let bytes = snap.trace.iter().flat_map(|e| e.to_bytes()).collect();
    (bytes, log.stats())
}

#[test]
fn same_seed_replays_byte_identical_reliable() {
    let (a, _) = run_once(FaultPlan::reliable(), &fresh_dir("reliable-a"));
    let (b, _) = run_once(FaultPlan::reliable(), &fresh_dir("reliable-b"));
    assert_eq!(a.len(), b.len(), "event counts differ across replays");
    assert!(a == b, "reliable-plan trace bytes differ across replays");
}

#[test]
fn same_seed_replays_byte_identical_flaky() {
    let (a, _) = run_once(FaultPlan::flaky(0xD106), &fresh_dir("flaky-a"));
    let (b, _) = run_once(FaultPlan::flaky(0xD106), &fresh_dir("flaky-b"));
    assert_eq!(a.len(), b.len(), "event counts differ across replays");
    assert!(a == b, "flaky-plan trace bytes differ across replays");
}

/// Pins the retry-backoff bugfix: the client's jittered exponential
/// backoff draws from a xorshift generator seeded by the client id —
/// never from wall clock or OS entropy — so even a hostile schedule
/// (15% loss, 5% duplication, 10% reorder) that drives the timeout and
/// NAK retransmit paths hard must replay byte-identically.
#[test]
fn same_seed_replays_byte_identical_hostile() {
    let (a, sa) = run_once(FaultPlan::hostile(0xBACC0FF), &fresh_dir("hostile-a"));
    let (b, sb) = run_once(FaultPlan::hostile(0xBACC0FF), &fresh_dir("hostile-b"));
    assert!(
        sa.resends > 0,
        "hostile plan never exercised the retry path; the test pins nothing"
    );
    assert_eq!(
        sa.resends, sb.resends,
        "resend counts differ across replays"
    );
    assert_eq!(a.len(), b.len(), "event counts differ across replays");
    assert!(a == b, "hostile-plan trace bytes differ across replays");
}

#[test]
fn different_fault_schedules_diverge() {
    // Sanity check that the comparison has teeth: a lossy schedule
    // produces a different event sequence than the reliable one.
    let (a, _) = run_once(FaultPlan::reliable(), &fresh_dir("div-a"));
    let (b, _) = run_once(FaultPlan::flaky(7), &fresh_dir("div-b"));
    assert!(a != b, "flaky and reliable schedules produced equal traces");
}
