//! Deterministic replay: the same `FaultPlan` seed must produce a
//! byte-identical ordered trace-event sequence across two runs.
//!
//! Threads are the only source of nondeterminism in the full harness,
//! so this test drives real `LogServer`s *synchronously* on the
//! `dlog_mc::harness` sync world: a `SyncEndpoint` delivers each packet
//! by calling the sans-I/O `LogServer::handle` inline (under one lock,
//! on the test thread) and queues replies for the client, applying
//! `FaultPlan`-style loss, duplication, and reordering from a seeded
//! RNG consumed only per send. Client, servers, and the network share
//! ONE `dlog_obs::Obs` handle, so the interleaved `ClientWrite` /
//! `PacketSend` / `ServerIngest` / `Force` / `AckHighLsn` stream is
//! totally ordered by the shared sequence counter — and must replay
//! exactly.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_mc::harness::{build_world, SyncEndpoint, SyncWorldOptions};
use dlog_net::wire::NodeAddr;
use dlog_net::FaultPlan;
use dlog_obs::{Obs, ObsOptions};
use dlog_types::{ClientId, ReplicationConfig, ServerId};

const M: u64 = 3;
const CLIENT_ADDR: NodeAddr = NodeAddr(1000);

fn fresh_dir(label: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-trace-determinism")
        .join(format!("{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Everything a replay must reproduce exactly: the ordered trace bytes,
/// the client's counters, the test thread's allocation count over the
/// workload, and each server's ingest-gauge (allocs, records) pair.
struct RunFingerprint {
    trace: Vec<u8>,
    stats: dlog_core::client::ClientStats,
    thread_allocs: u64,
    server_gauges: Vec<(u64, u64, u64)>,
}

/// Run the fixed workload under `plan` and return the ordered trace as
/// bytes (25 bytes per event, wall-clock-free by construction) plus the
/// client's counters and the run's allocation fingerprint.
fn run_once(plan: FaultPlan, dir: &Path) -> RunFingerprint {
    let allocs_before = dlog_obs::gauge::thread_allocs();
    let obs = Obs::new(&ObsOptions::on());
    let (world, _observers) =
        build_world(dir, SyncWorldOptions::shared(M, plan, obs.clone())).expect("build world");
    let world_handle = std::sync::Arc::clone(&world);
    let ep = SyncEndpoint::new(CLIENT_ADDR, world);
    let addrs: HashMap<ServerId, NodeAddr> = (1..=M).map(|i| (ServerId(i), NodeAddr(i))).collect();
    let net = ClientNet::new(ep, addrs);
    let servers: Vec<ServerId> = (1..=M).map(ServerId).collect();
    let config = ReplicationConfig::new(servers, 2, 4).unwrap();
    let mut log = ReplicatedLog::new(ClientId(1), ClientOptions::new(config), net);
    log.set_obs(obs.clone());
    log.initialize().unwrap();

    for i in 1u64..=120 {
        log.write(dlog_bench::payload(i, 48)).unwrap();
        if i % 7 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();

    let snap = obs.snapshot().expect("obs enabled");
    assert_eq!(snap.trace_dropped, 0, "trace ring overflowed; grow it");
    assert!(
        snap.trace.len() > 300,
        "suspiciously few events: {}",
        snap.trace.len()
    );
    dlog_obs::check_force_before_ack(&snap.trace).expect("force-before-ack invariant");
    let trace = snap.trace.iter().flat_map(|e| e.to_bytes()).collect();

    // The sync world runs every server on this thread, so both the
    // thread-local allocation count and the servers' ingest gauges are
    // part of what a deterministic replay must reproduce.
    let w = world_handle.lock().expect("world lock");
    let mut server_gauges: Vec<(u64, u64, u64)> = w
        .servers
        .iter()
        .map(|(addr, server)| {
            let (allocs, records) = server.ingest_alloc_gauge();
            (addr.0, allocs, records)
        })
        .collect();
    server_gauges.sort_unstable();
    drop(w);

    RunFingerprint {
        trace,
        stats: log.stats(),
        thread_allocs: dlog_obs::gauge::thread_allocs() - allocs_before,
        server_gauges,
    }
}

/// Compare two same-seed runs: identical trace bytes and identical
/// per-server ingest alloc gauges always; identical whole-thread
/// allocation counts only when `strict_thread_allocs` — the client's
/// poll loop spins on wall-clock deadlines, so under a lossy plan the
/// number of *empty* polls (and their allocations) varies run to run
/// even though every delivered packet, and hence every server-side
/// ingest allocation, replays exactly.
fn assert_replays_identical(
    label: &str,
    a: &RunFingerprint,
    b: &RunFingerprint,
    strict_thread_allocs: bool,
) {
    assert_eq!(
        a.trace.len(),
        b.trace.len(),
        "{label}: event counts differ across replays"
    );
    assert!(
        a.trace == b.trace,
        "{label}: trace bytes differ across replays"
    );
    if strict_thread_allocs {
        assert_eq!(
            a.thread_allocs, b.thread_allocs,
            "{label}: allocation counts differ across replays — the hot \
             path allocates nondeterministically"
        );
    }
    assert_eq!(
        a.server_gauges, b.server_gauges,
        "{label}: per-server ingest alloc gauges differ across replays"
    );
    let ingested: u64 = a.server_gauges.iter().map(|(_, _, records)| records).sum();
    assert!(
        ingested > 0,
        "{label}: servers report zero ingested records; gauge comparison is vacuous"
    );
}

/// One throwaway run so lazily initialized globals (CRC tables, empty-buf
/// singletons, thread-local scratch) pay their one-time allocations
/// before any measured pair of runs. `label` keeps parallel test threads
/// out of each other's directories.
fn warm_up(label: &str) {
    let _ = run_once(
        FaultPlan::reliable(),
        &fresh_dir(&format!("{label}-warmup")),
    );
}

#[test]
fn same_seed_replays_byte_identical_reliable() {
    warm_up("reliable");
    let a = run_once(FaultPlan::reliable(), &fresh_dir("reliable-a"));
    let b = run_once(FaultPlan::reliable(), &fresh_dir("reliable-b"));
    assert_replays_identical("reliable", &a, &b, true);
}

#[test]
fn same_seed_replays_byte_identical_flaky() {
    warm_up("flaky");
    let a = run_once(FaultPlan::flaky(0xD106), &fresh_dir("flaky-a"));
    let b = run_once(FaultPlan::flaky(0xD106), &fresh_dir("flaky-b"));
    assert_replays_identical("flaky", &a, &b, false);
}

/// Pins the retry-backoff bugfix: the client's jittered exponential
/// backoff draws from a xorshift generator seeded by the client id —
/// never from wall clock or OS entropy — so even a hostile schedule
/// (15% loss, 5% duplication, 10% reorder) that drives the timeout and
/// NAK retransmit paths hard must replay byte-identically.
#[test]
fn same_seed_replays_byte_identical_hostile() {
    warm_up("hostile");
    let a = run_once(FaultPlan::hostile(0xBACC0FF), &fresh_dir("hostile-a"));
    let b = run_once(FaultPlan::hostile(0xBACC0FF), &fresh_dir("hostile-b"));
    assert!(
        a.stats.resends > 0,
        "hostile plan never exercised the retry path; the test pins nothing"
    );
    assert_eq!(
        a.stats.resends, b.stats.resends,
        "resend counts differ across replays"
    );
    assert_replays_identical("hostile", &a, &b, false);
}

#[test]
fn different_fault_schedules_diverge() {
    // Sanity check that the comparison has teeth: a lossy schedule
    // produces a different event sequence than the reliable one.
    let a = run_once(FaultPlan::reliable(), &fresh_dir("div-a"));
    let b = run_once(FaultPlan::flaky(7), &fresh_dir("div-b"));
    assert!(
        a.trace != b.trace,
        "flaky and reliable schedules produced equal traces"
    );
}
