//! Deterministic replay: the same `FaultPlan` seed must produce a
//! byte-identical ordered trace-event sequence across two runs.
//!
//! Threads are the only source of nondeterminism in the full harness,
//! so this test drives real `LogServer`s *synchronously*: a
//! `SyncEndpoint` delivers each packet by calling the sans-I/O
//! `LogServer::handle` inline (under one lock, on the test thread) and
//! queues replies for the client, applying `FaultPlan`-style loss,
//! duplication, and reordering from a seeded RNG consumed only per
//! send. Client, servers, and the network share ONE `dlog_obs::Obs`
//! handle, so the interleaved `ClientWrite` / `PacketSend` /
//! `ServerIngest` / `Force` / `AckHighLsn` stream is totally ordered by
//! the shared sequence counter — and must replay exactly.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::wire::{NodeAddr, Packet};
use dlog_net::{Endpoint, FaultPlan};
use dlog_obs::{Obs, ObsOptions, Stage};
use dlog_server::gen::GenStore;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, ReplicationConfig, ServerId};

const M: u64 = 3;
const CLIENT_ADDR: NodeAddr = NodeAddr(1000);

/// The single-threaded cluster: servers are pumped inline on delivery.
struct World {
    servers: HashMap<NodeAddr, LogServer>,
    /// Packets awaiting the client's next `recv`.
    inbox: VecDeque<(NodeAddr, Packet)>,
    plan: FaultPlan,
    rng: StdRng,
    obs: Obs,
}

impl World {
    /// One send attempt: trace it, roll the fault schedule, and route
    /// every surviving copy. Server replies are routed recursively
    /// (servers only ever reply toward the client, so depth is bounded).
    fn deliver(&mut self, from: NodeAddr, to: NodeAddr, pkt: &Packet) {
        self.obs.event(Stage::PacketSend, pkt.lsn_hint(), to.0);
        if self.plan.loss > 0.0 && self.rng.gen_bool(self.plan.loss) {
            return;
        }
        let copies = if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            self.route(from, to, pkt.clone());
        }
    }

    fn route(&mut self, from: NodeAddr, to: NodeAddr, pkt: Packet) {
        if let Some(server) = self.servers.get_mut(&to) {
            let replies = server.handle(from, &pkt);
            for (rto, rpkt) in replies {
                self.deliver(to, rto, &rpkt);
            }
        } else {
            // Client-bound: occasionally deliver behind the packet that
            // is already queued (reordering).
            if self.plan.reorder > 0.0
                && !self.inbox.is_empty()
                && self.rng.gen_bool(self.plan.reorder)
            {
                let idx = self.inbox.len() - 1;
                self.inbox.insert(idx, (from, pkt));
            } else {
                self.inbox.push_back((from, pkt));
            }
        }
    }
}

/// The client's endpoint over the synchronous world.
struct SyncEndpoint {
    addr: NodeAddr,
    world: Arc<Mutex<World>>,
}

impl Endpoint for SyncEndpoint {
    fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let mut w = self.world.lock().expect("world lock");
        w.deliver(self.addr, to, packet);
        Ok(())
    }

    fn recv(&self, _timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        // Never blocks: everything that will ever arrive is already in
        // the inbox (delivery happened inside `send`).
        let mut w = self.world.lock().expect("world lock");
        Ok(w.inbox.pop_front())
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-trace-determinism")
        .join(format!("{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Run the fixed workload under `plan` and return the ordered trace as
/// bytes (25 bytes per event, wall-clock-free by construction) plus the
/// client's counters.
fn run_once(plan: FaultPlan, dir: &Path) -> (Vec<u8>, dlog_core::client::ClientStats) {
    let obs = Obs::new(&ObsOptions::on());
    let mut servers = HashMap::new();
    for id in 1..=M {
        let d = dir.join(format!("server-{id}"));
        let opts = StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        let store = LogStore::open(&d, opts, NvramDevice::new(1 << 20)).unwrap();
        let gens = GenStore::open(d.join("gens")).unwrap();
        let mut server = LogServer::new(ServerConfig::new(ServerId(id)), store, gens).unwrap();
        server.set_obs(obs.clone());
        servers.insert(NodeAddr(id), server);
    }
    let world = Arc::new(Mutex::new(World {
        servers,
        inbox: VecDeque::new(),
        rng: StdRng::seed_from_u64(plan.seed),
        plan,
        obs: obs.clone(),
    }));
    let ep = SyncEndpoint {
        addr: CLIENT_ADDR,
        world,
    };
    let addrs: HashMap<ServerId, NodeAddr> = (1..=M).map(|i| (ServerId(i), NodeAddr(i))).collect();
    let net = ClientNet::new(ep, addrs);
    let servers: Vec<ServerId> = (1..=M).map(ServerId).collect();
    let config = ReplicationConfig::new(servers, 2, 4).unwrap();
    let mut log = ReplicatedLog::new(ClientId(1), ClientOptions::new(config), net);
    log.set_obs(obs.clone());
    log.initialize().unwrap();

    for i in 1u64..=120 {
        log.write(dlog_bench::payload(i, 48)).unwrap();
        if i % 7 == 0 {
            log.force().unwrap();
        }
    }
    log.force().unwrap();

    let snap = obs.snapshot().expect("obs enabled");
    assert_eq!(snap.trace_dropped, 0, "trace ring overflowed; grow it");
    assert!(
        snap.trace.len() > 300,
        "suspiciously few events: {}",
        snap.trace.len()
    );
    dlog_obs::check_force_before_ack(&snap.trace).expect("force-before-ack invariant");
    let bytes = snap.trace.iter().flat_map(|e| e.to_bytes()).collect();
    (bytes, log.stats())
}

#[test]
fn same_seed_replays_byte_identical_reliable() {
    let (a, _) = run_once(FaultPlan::reliable(), &fresh_dir("reliable-a"));
    let (b, _) = run_once(FaultPlan::reliable(), &fresh_dir("reliable-b"));
    assert_eq!(a.len(), b.len(), "event counts differ across replays");
    assert!(a == b, "reliable-plan trace bytes differ across replays");
}

#[test]
fn same_seed_replays_byte_identical_flaky() {
    let (a, _) = run_once(FaultPlan::flaky(0xD106), &fresh_dir("flaky-a"));
    let (b, _) = run_once(FaultPlan::flaky(0xD106), &fresh_dir("flaky-b"));
    assert_eq!(a.len(), b.len(), "event counts differ across replays");
    assert!(a == b, "flaky-plan trace bytes differ across replays");
}

/// Pins the retry-backoff bugfix: the client's jittered exponential
/// backoff draws from a xorshift generator seeded by the client id —
/// never from wall clock or OS entropy — so even a hostile schedule
/// (15% loss, 5% duplication, 10% reorder) that drives the timeout and
/// NAK retransmit paths hard must replay byte-identically.
#[test]
fn same_seed_replays_byte_identical_hostile() {
    let (a, sa) = run_once(FaultPlan::hostile(0xBACC0FF), &fresh_dir("hostile-a"));
    let (b, sb) = run_once(FaultPlan::hostile(0xBACC0FF), &fresh_dir("hostile-b"));
    assert!(
        sa.resends > 0,
        "hostile plan never exercised the retry path; the test pins nothing"
    );
    assert_eq!(
        sa.resends, sb.resends,
        "resend counts differ across replays"
    );
    assert_eq!(a.len(), b.len(), "event counts differ across replays");
    assert!(a == b, "hostile-plan trace bytes differ across replays");
}

#[test]
fn different_fault_schedules_diverge() {
    // Sanity check that the comparison has teeth: a lossy schedule
    // produces a different event sequence than the reliable one.
    let (a, _) = run_once(FaultPlan::reliable(), &fresh_dir("div-a"));
    let (b, _) = run_once(FaultPlan::flaky(7), &fresh_dir("div-b"));
    assert!(a != b, "flaky and reliable schedules produced equal traces");
}
