//! Whole-system test: ET1 transactions against the bank database, logged
//! through the replicated log to real (threaded, storage-backed) log
//! servers; the client crashes and a fresh node rebuilds the database
//! from the log — with and without server failures along the way.

use dlog_bench::{Cluster, ClusterOptions};
use dlog_net::FaultPlan;
use dlog_types::ServerId;
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

fn fresh_db() -> BankDb {
    BankDb::new(10_000, 100, 10)
}

#[test]
fn bank_crash_recovery_roundtrip() {
    let cluster = Cluster::start("bank-rt", ClusterOptions::new(3));
    let committed;
    {
        let mut log = cluster.client(1, 2, 16);
        log.initialize().unwrap();
        let mut mgr = RecoveryManager::new(log, fresh_db(), LogMode::Classic, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config::small(55));
        for i in 0..120 {
            let txn = gen.next_txn();
            if i % 7 == 6 {
                mgr.run_et1_abort(&txn).unwrap();
            } else {
                mgr.run_et1(&txn).unwrap();
            }
        }
        assert!(mgr.db().conserved());
        committed = mgr.db().clone();
    }
    let mut log = cluster.client(1, 2, 16);
    log.initialize().unwrap();
    let recovered = RecoveryManager::recover(&mut log, fresh_db()).unwrap();
    assert_eq!(recovered, committed);
}

#[test]
fn bank_survives_server_failure_mid_run() {
    let mut cluster = Cluster::start("bank-fail", ClusterOptions::new(4));
    let committed;
    {
        let mut log = cluster.client(1, 2, 16);
        log.initialize().unwrap();
        let mut mgr = RecoveryManager::new(log, fresh_db(), LogMode::Classic, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config::small(77));
        for i in 0..100u32 {
            if i == 40 {
                // One of the client's targets dies; the client must
                // switch and keep committing.
                let victim = ServerId(1);
                cluster.kill_server(victim);
            }
            mgr.run_et1(&gen.next_txn()).unwrap();
        }
        assert!(mgr.db().conserved());
        committed = mgr.db().clone();
    }
    let mut log = cluster.client(1, 2, 16);
    log.initialize().unwrap();
    let recovered = RecoveryManager::recover(&mut log, fresh_db()).unwrap();
    assert_eq!(recovered, committed);
}

#[test]
fn bank_over_lossy_network() {
    let mut opts = ClusterOptions::new(3);
    opts.plan = FaultPlan {
        loss: 0.03,
        duplicate: 0.02,
        reorder: 0.03,
        seed: 2026,
    };
    let cluster = Cluster::start("bank-lossy", opts);
    let committed;
    {
        let mut log = cluster.client(1, 2, 8);
        log.initialize().unwrap();
        let mut mgr = RecoveryManager::new(log, fresh_db(), LogMode::Split, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config::small(99));
        for _ in 0..60 {
            mgr.run_et1(&gen.next_txn()).unwrap();
        }
        assert!(mgr.db().conserved());
        committed = mgr.db().clone();
    }
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    let recovered = RecoveryManager::recover(&mut log, fresh_db()).unwrap();
    assert_eq!(recovered, committed);
}

#[test]
fn two_clients_share_the_servers() {
    // §4.1: "log servers may store portions of the replicated logs from
    // many clients" — two independent bank nodes interleave on the same
    // six servers without interference.
    let cluster = Cluster::start("bank-two", ClusterOptions::new(6));
    let mut outcomes = Vec::new();
    for cid in [1u64, 2] {
        let mut log = cluster.client(cid, 2, 16);
        log.initialize().unwrap();
        let mut mgr = RecoveryManager::new(log, fresh_db(), LogMode::Classic, 1 << 20);
        let mut gen = Et1Generator::new(Et1Config::small(cid * 13));
        for _ in 0..50 {
            mgr.run_et1(&gen.next_txn()).unwrap();
        }
        outcomes.push(mgr.db().clone());
    }
    for (i, cid) in [1u64, 2].iter().enumerate() {
        let mut log = cluster.client(*cid, 2, 16);
        log.initialize().unwrap();
        let recovered = RecoveryManager::recover(&mut log, fresh_db()).unwrap();
        assert_eq!(&recovered, &outcomes[i], "client {cid}");
    }
}
