//! Randomized full-stack soak: a seeded schedule of server kills,
//! reboots, partitions, heals, client crashes, and writes runs against
//! the real cluster; after every schedule the log must contain exactly
//! the records whose forces succeeded, unchanged, and every server's
//! trace must satisfy the force-before-ack ordering invariant. The
//! scenario body lives in `dlog_bench::scenario` so the pinned seed
//! corpus (`tests/seed_corpus.rs`) runs the identical schedule.

use dlog_bench::scenario::run_soak_scenario;

#[test]
fn randomized_schedules_never_lose_forced_records() {
    let mut total = 0;
    for seed in 0..6u64 {
        total += run_soak_scenario(seed);
    }
    assert!(total > 0, "the schedules must force something");
}
