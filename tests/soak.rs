//! Randomized full-stack soak: a seeded schedule of server kills,
//! reboots, partitions, heals, client crashes, and writes runs against
//! the real cluster; after every schedule the log must contain exactly
//! the records whose forces succeeded, unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_bench::harness::{client_addr, server_addr};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::{DlogError, Lsn, ServerId};

/// One seeded scenario. Returns the forced (durable) record set that was
/// verified.
fn run_scenario(seed: u64) -> u64 {
    let m = 4u64;
    let mut cluster = Cluster::start(&format!("soak-{seed}"), ClusterOptions::new(m));
    let mut rng = StdRng::seed_from_u64(seed);
    let client_id = 1u64;

    let mut log = cluster.client(client_id, 2, 4);
    log.initialize().unwrap();

    // Ground truth: (lsn, payload tag) for every record whose force
    // completed.
    let mut durable: Vec<(u64, u64)> = Vec::new();
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let mut down: Vec<ServerId> = Vec::new();
    let mut partitioned: Vec<ServerId> = Vec::new();
    let mut tag = 0u64;

    for _step in 0..60 {
        match rng.gen_range(0..10) {
            // Write a record (buffered).
            0..=3 => {
                tag += 1;
                if let Ok(lsn) = log.write(payload(tag, 60)) {
                    pending.push((lsn.0, tag));
                }
            }
            // Force: on success everything pending becomes durable.
            4..=5 => {
                if log.force().is_ok() {
                    durable.append(&mut pending);
                } else {
                    // A failed force leaves records in limbo; we make no
                    // claim about them (the client would retry). Drop our
                    // expectation.
                    pending.clear();
                }
            }
            // Kill a server (at most M−2 down so a quorum always exists).
            6 => {
                if down.len() < (m - 2) as usize {
                    let victim = ServerId(rng.gen_range(1..=m));
                    if !down.contains(&victim) {
                        cluster.kill_server(victim);
                        down.push(victim);
                    }
                }
            }
            // Reboot a downed server.
            7 => {
                if let Some(&s) = down.first() {
                    cluster.boot_server(s);
                    down.retain(|&x| x != s);
                }
            }
            // Partition the client from one server / heal it.
            8 => {
                let s = ServerId(rng.gen_range(1..=m));
                if partitioned.contains(&s) {
                    cluster
                        .net
                        .heal(client_addr(log.client_id()), server_addr(s));
                    partitioned.retain(|&x| x != s);
                } else if partitioned.is_empty() {
                    cluster
                        .net
                        .partition(client_addr(log.client_id()), server_addr(s));
                    partitioned.push(s);
                }
            }
            // Client crash + restart.
            _ => {
                pending.clear(); // unforced records may legitimately vanish
                drop(log);
                // Heal everything so initialization has its quorum.
                for &s in &partitioned {
                    cluster
                        .net
                        .heal(client_addr(dlog_types::ClientId(client_id)), server_addr(s));
                }
                partitioned.clear();
                for &s in &down.clone() {
                    cluster.boot_server(s);
                }
                down.clear();
                log = cluster.client(client_id, 2, 4);
                log.initialize().unwrap();
            }
        }
    }

    // Final settle: heal, reboot, force, audit.
    for &s in &partitioned {
        cluster
            .net
            .heal(client_addr(log.client_id()), server_addr(s));
    }
    for &s in &down.clone() {
        cluster.boot_server(s);
    }
    if log.force().is_ok() {
        durable.append(&mut pending);
    }

    for &(lsn, tag) in &durable {
        match log.read(Lsn(lsn)) {
            Ok(d) => assert_eq!(
                d.as_bytes(),
                payload(tag, 60).as_slice(),
                "seed {seed}: lsn {lsn} content changed"
            ),
            Err(e) => panic!("seed {seed}: durable lsn {lsn} lost: {e}"),
        }
    }
    // Reads past the end fail cleanly.
    let end = log.end_of_log().unwrap();
    assert!(matches!(
        log.read(end.next()),
        Err(DlogError::NoSuchRecord { .. })
    ));
    durable.len() as u64
}

#[test]
fn randomized_schedules_never_lose_forced_records() {
    let mut total = 0;
    for seed in 0..6u64 {
        total += run_scenario(seed);
    }
    assert!(total > 0, "the schedules must force something");
}
