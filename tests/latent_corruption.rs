//! Latent media corruption end to end: a bit rots inside one server's
//! on-disk stream; the frame CRC catches it at read time, the server
//! reports a storage error, the client fails over to the other holder —
//! and a repair pass restores full redundancy.

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::Lsn;

#[test]
fn reads_fail_over_past_rotted_replica_and_repair_heals() {
    let root = std::env::temp_dir().join(format!("dlog-latent-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut opts = ClusterOptions::new(3);
    opts.root = Some(root.clone());
    let mut cluster = Cluster::start("latent", opts);

    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=20u64 {
        log.write(payload(i, 100)).unwrap();
    }
    log.force().unwrap();
    let t0 = log.targets()[0];
    let t1 = log.targets()[1];

    // Flush the victim's NVRAM to disk, stop it, rot a byte mid-stream,
    // restart it. (Its in-memory state is rebuilt from the *corrupt*
    // disk; the scan stops at the rot, so it now serves a shorter log.)
    {
        let servers = cluster.stop_server(t0);
        assert!(!servers.is_empty(), "server running");
        drop(servers); // stores synced on graceful stop
                       // Find the segment holding the client's records: the largest
                       // `.seg` anywhere under the server's root (sharded servers keep
                       // per-shard stores in `shard-K/` subdirectories; the client's
                       // whole log lives in exactly one of them).
        let seg_dir = root.join(format!("server-{}", t0.0));
        let mut stack = vec![seg_dir];
        let mut seg: Option<(u64, std::path::PathBuf)> = None;
        while let Some(d) = stack.pop() {
            for e in std::fs::read_dir(&d).unwrap().filter_map(|e| e.ok()) {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "seg") {
                    let len = e.metadata().map_or(0, |m| m.len());
                    if seg.as_ref().is_none_or(|(best, _)| len > *best) {
                        seg = Some((len, p));
                    }
                }
            }
        }
        let (_, seg) = seg.expect("segment file");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&seg, bytes).unwrap();
        // Fresh NVRAM: the rot models loss *after* the data left NVRAM.
        cluster.nvram_reset(t0);
        cluster.boot_server(t0);
    }

    // Every record still reads: LSNs past the rot come from the healthy
    // holder.
    for i in 1..=20u64 {
        let got = log.read(Lsn(i)).unwrap_or_else(|e| panic!("read {i}: {e}"));
        assert_eq!(got.as_bytes(), payload(i, 100).as_slice(), "lsn {i}");
    }

    // Repair restores N live copies (the rotted server lost its tail, so
    // those records are under-replicated among live holders).
    let report = log.repair().unwrap();
    assert!(
        report.under_replicated > 0,
        "the rotted tail must need repair"
    );

    // Now even losing the healthy original holder keeps the log readable.
    cluster.kill_server(t1);
    for i in 1..=20u64 {
        let got = log
            .read(Lsn(i))
            .unwrap_or_else(|e| panic!("post-repair read {i}: {e}"));
        assert_eq!(got.as_bytes(), payload(i, 100).as_slice(), "lsn {i}");
    }
    let _ = std::fs::remove_dir_all(&root);
}
