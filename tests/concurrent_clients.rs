//! Concurrency: many client nodes (threads) logging to the same shared
//! servers simultaneously — the deployment §4.1 sizes (many clients per
//! server) — with interleaved streams, per-client recovery, and no
//! cross-contamination.

use std::thread;

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::Lsn;
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, Et1Generator, RecoveryManager};

#[test]
fn eight_clients_share_three_servers() {
    let cluster = Cluster::start("concurrent-8", ClusterOptions::new(3));
    let records_per_client = 40u64;

    thread::scope(|scope| {
        let mut handles = Vec::new();
        for cid in 1..=8u64 {
            let cluster = &cluster;
            handles.push(scope.spawn(move || {
                let mut log = cluster.client(cid, 2, 8);
                log.initialize().unwrap();
                for i in 1..=records_per_client {
                    // Payload tagged by client so cross-contamination
                    // would be detected.
                    log.write(payload(cid * 1000 + i, 80)).unwrap();
                    if i % 10 == 0 {
                        log.force().unwrap();
                    }
                }
                log.force().unwrap();
                // Verify own records.
                for i in 1..=records_per_client {
                    let got = log.read(Lsn(i)).unwrap();
                    assert_eq!(
                        got.as_bytes(),
                        payload(cid * 1000 + i, 80).as_slice(),
                        "client {cid} lsn {i}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // Each client's log recovers independently after "crashes".
    for cid in 1..=8u64 {
        let mut log = cluster.client(cid, 2, 8);
        log.initialize().unwrap();
        for i in 1..=records_per_client {
            let got = log.read(Lsn(i)).unwrap();
            assert_eq!(got.as_bytes(), payload(cid * 1000 + i, 80).as_slice());
        }
    }
}

#[test]
fn concurrent_banks_stay_conserved() {
    let cluster = Cluster::start("concurrent-banks", ClusterOptions::new(4));
    let outcomes: Vec<(u64, BankDb)> = thread::scope(|scope| {
        let mut handles = Vec::new();
        for cid in 1..=4u64 {
            let cluster = &cluster;
            handles.push(scope.spawn(move || {
                let mut log = cluster.client(cid, 2, 16);
                log.initialize().unwrap();
                let mut mgr =
                    RecoveryManager::new(log, BankDb::new(5_000, 50, 5), LogMode::Classic, 1 << 20);
                let mut gen = Et1Generator::new(Et1Config {
                    accounts: 5_000,
                    tellers: 50,
                    branches: 5,
                    seed: cid * 31,
                });
                for i in 0..60 {
                    let t = gen.next_txn();
                    if i % 9 == 8 {
                        mgr.run_et1_abort(&t).unwrap();
                    } else {
                        mgr.run_et1(&t).unwrap();
                    }
                }
                assert!(mgr.db().conserved());
                (cid, mgr.db().clone())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("bank thread"))
            .collect()
    });

    // Recover each client's database from the shared servers.
    for (cid, committed) in outcomes {
        let mut log = cluster.client(cid, 2, 16);
        log.initialize().unwrap();
        let recovered = RecoveryManager::recover(&mut log, BankDb::new(5_000, 50, 5)).unwrap();
        assert_eq!(recovered, committed, "client {cid}");
    }
}
