//! Shard-count transparency: the number of shard event loops a server
//! runs is a deployment knob, not a semantic one. For any workload, the
//! bytes a client reads back per logical log must be identical whether
//! the servers run one shard or four — the router only partitions logs
//! across event loops, it never reorders or rewrites anything within
//! one log.

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::Lsn;
use proptest::prelude::*;

/// Run the same deterministic workload against a fresh cluster with
/// `shards` shard loops per server and return every record read back,
/// per client in id order.
fn readback_with_shards(
    shards: u64,
    case_tag: &str,
    clients: u64,
    records: u64,
    len: usize,
) -> Vec<Vec<Vec<u8>>> {
    let mut opts = ClusterOptions::new(3);
    opts.shards = shards;
    let cluster = Cluster::start(case_tag, opts);
    for c in 1..=clients {
        let mut log = cluster.client(c, 2, 8);
        log.initialize().expect("initialize");
        for i in 1..=records {
            // Distinct bytes per (client, lsn) so a cross-log mixup
            // (the bug sharding could introduce) changes the output.
            log.write(payload(i.wrapping_mul(31).wrapping_add(c), len))
                .expect("write");
        }
        log.force().expect("force");
    }
    let mut out = Vec::new();
    for c in 1..=clients {
        let mut log = cluster.client(c, 2, 8);
        log.initialize().expect("re-initialize");
        let mut rows = Vec::new();
        for i in 1..=records {
            rows.push(
                log.read(Lsn(i))
                    .unwrap_or_else(|e| panic!("read client {c} lsn {i}: {e}"))
                    .as_bytes()
                    .to_vec(),
            );
        }
        out.push(rows);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn readback_is_byte_identical_at_1_and_4_shards(
        clients in 1u64..=3,
        records in 1u64..=10,
        len in 1usize..=64,
    ) {
        let tag1 = format!("shard-eq-1-{clients}-{records}-{len}");
        let tag4 = format!("shard-eq-4-{clients}-{records}-{len}");
        let flat = readback_with_shards(1, &tag1, clients, records, len);
        let sharded = readback_with_shards(4, &tag4, clients, records, len);
        prop_assert_eq!(&flat, &sharded);
        // And both match ground truth, not just each other.
        for (ci, rows) in flat.iter().enumerate() {
            let c = ci as u64 + 1;
            for (ri, row) in rows.iter().enumerate() {
                let i = ri as u64 + 1;
                let want = payload(i.wrapping_mul(31).wrapping_add(c), len);
                prop_assert_eq!(row.as_slice(), want.as_slice());
            }
        }
    }
}
