//! `ReadLogBackward` through the full stack: the recovery-manager access
//! pattern — scan descending from `EndOfLog`, crossing interval and
//! server boundaries, with masked records included.

use dlog_bench::harness::{client_addr, server_addr};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::Lsn;

#[test]
fn backward_scan_from_end() {
    let cluster = Cluster::start("bwd-basic", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=25u64 {
        log.write(payload(i, 60)).unwrap();
    }
    log.force().unwrap();

    let recs = log.read_backward(Lsn(25), 10).unwrap();
    let lsns: Vec<u64> = recs.iter().map(|r| r.lsn.0).collect();
    assert_eq!(lsns, (16..=25).rev().collect::<Vec<_>>());
    for r in &recs {
        assert!(r.present);
        assert_eq!(r.data.as_bytes(), payload(r.lsn.0, 60).as_slice());
    }

    // A full scan reaches LSN 1 and stops.
    let recs = log.read_backward(Lsn(25), 100).unwrap();
    assert_eq!(recs.len(), 25);
    assert_eq!(recs.last().unwrap().lsn, Lsn(1));
}

#[test]
fn backward_scan_includes_masks_and_crosses_epochs() {
    let cluster = Cluster::start("bwd-masks", ClusterOptions::new(3));
    {
        let mut log = cluster.client(1, 2, 2);
        log.initialize().unwrap();
        for i in 1..=6u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        // crash
    }
    let mut log = cluster.client(1, 2, 2);
    log.initialize().unwrap();
    // end = 8 (6 + delta 2 masks); write a few more in the new epoch.
    for i in 9..=12u64 {
        let lsn = log.write(payload(i, 40)).unwrap();
        assert_eq!(lsn, Lsn(i));
    }
    log.force().unwrap();

    let recs = log.read_backward(Lsn(12), 100).unwrap();
    assert_eq!(
        recs.len(),
        12,
        "every LSN visited: {:?}",
        recs.iter().map(|r| r.lsn.0).collect::<Vec<_>>()
    );
    for r in &recs {
        let expect_present = !(7..=8).contains(&r.lsn.0);
        assert_eq!(r.present, expect_present, "lsn {}", r.lsn);
    }
}

#[test]
fn backward_scan_survives_holder_failure() {
    let mut cluster = Cluster::start("bwd-failover", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=15u64 {
        log.write(payload(i, 50)).unwrap();
    }
    log.force().unwrap();
    let t0 = log.targets()[0];
    cluster.kill_server(t0);

    let recs = log.read_backward(Lsn(15), 100).unwrap();
    assert_eq!(recs.len(), 15);
}

#[test]
fn backward_scan_rejects_bad_start() {
    let cluster = Cluster::start("bwd-bad", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 4);
    log.initialize().unwrap();
    assert!(log.read_backward(Lsn(0), 5).is_err());
    assert!(log.read_backward(Lsn(1), 5).is_err(), "nothing written yet");
    log.write(payload(1, 30)).unwrap();
    log.force().unwrap();
    assert_eq!(log.read_backward(Lsn(1), 5).unwrap().len(), 1);
}

#[test]
fn backward_scan_sees_buffered_tail() {
    // Unforced records are still readable locally in a backward scan.
    let cluster = Cluster::start("bwd-buffered", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 8);
    log.initialize().unwrap();
    for i in 1..=5u64 {
        log.write(payload(i, 30)).unwrap();
    }
    log.force().unwrap();
    for i in 6..=8u64 {
        log.write(payload(i, 30)).unwrap(); // buffered only
    }
    let recs = log.read_backward(Lsn(8), 100).unwrap();
    assert_eq!(recs.len(), 8);
    assert_eq!(recs[0].lsn, Lsn(8));
    let _ = (client_addr, server_addr); // harness re-exports referenced
}
