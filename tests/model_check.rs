//! Tier-1 model-checking gate: exhaustive bounded exploration of the
//! protocol core must come back clean, and the checker itself must be
//! able to catch bugs — each seeded mutation is detected with a
//! minimized, replayable counterexample.
//!
//! The nightly lane (`.github/workflows/nightly-mc.yml`) runs the same
//! binary at deeper bounds; this file keeps the fast configuration in
//! every `cargo test` run.

use dlog_mc::explore::{default_scratch, replay_trace, Explorer};
use dlog_mc::{render_counterexample, Action, McConfig, Mutation};

/// The tier-1 configuration: 2 servers, 1 client, write+force script,
/// one crash, one duplicate, one retransmit — and a depth that covers
/// the full write → force → ack → crash → recover cycle (see
/// `cycle_fits_inside_tier1_depth`).
const TIER1_DEPTH: usize = 9;

fn parse_trace(lines: &[&str]) -> Vec<Action> {
    lines
        .iter()
        .map(|s| s.parse().expect("well-formed pinned action"))
        .collect()
}

/// The headline gate: every interleaving of the faithful protocol up to
/// `TIER1_DEPTH` actions holds every invariant, and the exploration is
/// big enough to mean something (≥ 10k deduplicated states) while
/// staying inside the tier-1 time budget.
#[test]
fn exhaustive_bfs_is_clean_at_tier1_depth() {
    let cfg = McConfig::default();
    let explorer = Explorer::new(&cfg, &default_scratch("t1-exhaustive"));
    let report = explorer.run_bfs(TIER1_DEPTH).expect("exploration runs");
    if let Some(ce) = &report.violation {
        let rendered = render_counterexample(&cfg, ce, &default_scratch("t1-exhaustive-render"))
            .unwrap_or_else(|e| format!("(render failed: {e})"));
        panic!("model checker found a violation:\n{rendered}");
    }
    assert!(
        report.states_unique >= 10_000,
        "exploration too small to be meaningful: {} unique states",
        report.states_unique
    );
    assert!(
        report.dedup_hits > 0,
        "fingerprint dedup never fired; canonicalization is broken"
    );
    assert!(
        report.elapsed_ms < 60_000,
        "tier-1 exploration blew its time budget: {} ms",
        report.elapsed_ms
    );
}

/// Witness that the tier-1 depth really contains the full protocol
/// cycle: one write delivered, its force delivered, the group-commit
/// flush, the ack delivered back, then a crash and a recovery — 8
/// actions, all applicable, no violation.
#[test]
fn cycle_fits_inside_tier1_depth() {
    let trace = parse_trace(&[
        "step:0",    // write record 1 (WriteLog to both servers)
        "deliver:0", // WriteLog reaches server 1
        "step:0",    // force (ForceLog to both servers)
        "deliver:1", // ForceLog reaches server 1; obligation queued
        "flush:1",   // group-commit window expires: durable round + ack
        "deliver:2", // forced NewHighLsn reaches the client
        "crash:1",   // server 1 loses volatile state
        "recover:1", // reopen: checkpoint + tail scan + NVRAM replay
    ]);
    assert!(trace.len() <= TIER1_DEPTH, "cycle no longer fits the bound");
    let violation = replay_trace(&McConfig::default(), &trace, &default_scratch("t1-cycle"))
        .expect("cycle trace applies cleanly");
    assert!(violation.is_none(), "clean cycle violated: {violation:?}");
}

/// Each seeded mutation must be caught, with the right invariant, and
/// the minimized counterexample must be short and must reproduce the
/// violation when replayed from scratch — that replay is exactly what
/// makes a counterexample actionable.
fn assert_mutation_caught(mutation: Mutation, tag: &str, invariant: &str, max_len: usize) {
    let cfg = McConfig {
        mutation,
        ..McConfig::default()
    };
    let explorer = Explorer::new(&cfg, &default_scratch(tag));
    let report = explorer.run_bfs(6).expect("exploration runs");
    let ce = report
        .violation
        .unwrap_or_else(|| panic!("{tag}: seeded bug escaped the checker"));
    assert_eq!(
        ce.violation.invariant, invariant,
        "{tag}: caught by the wrong invariant: {}",
        ce.violation.detail
    );
    assert!(
        ce.trace.len() <= max_len,
        "{tag}: counterexample not minimized: {} actions: {:?}",
        ce.trace.len(),
        ce.trace
    );
    assert!(
        ce.trace.len() <= ce.original_len,
        "{tag}: minimization grew the trace"
    );
    let replayed = replay_trace(&cfg, &ce.trace, &default_scratch(&format!("{tag}-replay")))
        .expect("minimized trace applies")
        .unwrap_or_else(|| panic!("{tag}: minimized trace no longer reproduces"));
    assert_eq!(
        replayed.invariant, invariant,
        "{tag}: replay found a different bug"
    );
    // The rendered artifact must carry the pieces a human needs: the
    // invariant, and the replayable action syntax.
    let rendered = render_counterexample(&cfg, &ce, &default_scratch(&format!("{tag}-render")))
        .expect("render succeeds");
    assert!(rendered.contains(invariant), "render lost the invariant");
    for action in &ce.trace {
        assert!(
            rendered.contains(&action.to_string()),
            "render lost action {action}"
        );
    }
}

#[test]
fn mutation_early_ack_is_caught() {
    // Ack fabricated on ForceLog arrival, before any durable round.
    assert_mutation_caught(Mutation::EarlyAck, "mut-early-ack", "ack-after-force", 4);
}

#[test]
fn mutation_skip_force_is_caught() {
    // Obligations acked without running force_batch (the failed-force
    // ack bug the PR 5 obligation rule exists to prevent).
    assert_mutation_caught(Mutation::SkipForce, "mut-skip-force", "ack-after-force", 5);
}

#[test]
fn mutation_lost_ack_is_caught() {
    // The durable round runs but obligation acks are discarded.
    assert_mutation_caught(Mutation::LostAck, "mut-lost-ack", "obligation-safety", 5);
}

#[test]
fn mutation_amnesia_is_caught() {
    // Recovery with a blank NVRAM device loses the durable tail.
    assert_mutation_caught(Mutation::Amnesia, "mut-amnesia", "recovery-consistency", 5);
}

/// Sharded tier-1 gate: 2 servers × 2 shards, two clients whose
/// logical logs hash to different shards (log 1 → shard 1, log 2 →
/// shard 0 under splitmix64 mod 2). Every interleaving up to depth 8 —
/// including a crash/recover of a whole sharded server — must hold
/// every invariant, `router-stability` (a client's records only ever
/// land on the shard its logical log hashes to, so same-log operations
/// can never reorder across shards) among them.
#[test]
fn exhaustive_bfs_is_clean_with_two_shards() {
    let cfg = McConfig {
        shards: 2,
        clients: 2,
        delta: 1,
        max_dups: 0,
        max_rexmits: 0,
        ..McConfig::default()
    };
    let explorer = Explorer::new(&cfg, &default_scratch("t1-sharded"));
    let report = explorer.run_bfs(8).expect("exploration runs");
    if let Some(ce) = &report.violation {
        let rendered = render_counterexample(&cfg, ce, &default_scratch("t1-sharded-render"))
            .unwrap_or_else(|e| format!("(render failed: {e})"));
        panic!("sharded model found a violation:\n{rendered}");
    }
    assert!(
        report.states_unique >= 5_000,
        "sharded exploration too small to be meaningful: {} unique states",
        report.states_unique
    );
    assert!(
        report.elapsed_ms < 60_000,
        "sharded tier-1 exploration blew its time budget: {} ms",
        report.elapsed_ms
    );
}

/// Router stability, pinned: drive both clients through a full write →
/// force → flush → ack cycle against a 2-shard server, then crash and
/// recover it. The `router-stability` invariant runs after every
/// action, and afterwards each of server 1's two shard traces must show
/// ingests — proof the two logs really landed on two different shards
/// (same-log ordering then follows from each shard being one ordered
/// event loop).
#[test]
fn sharded_cycle_routes_clients_to_distinct_shards() {
    let cfg = McConfig {
        shards: 2,
        clients: 2,
        ..McConfig::default()
    };
    let mut world =
        dlog_mc::McWorld::new(&cfg, &default_scratch("t1-shard-route")).expect("world builds");
    let trace = parse_trace(&[
        "step:0",    // client 1 writes (WriteLog to both servers)
        "step:1",    // client 2 writes
        "deliver:0", // client 1's WriteLog reaches server 1
        "deliver:1", // client 2's WriteLog reaches server 1
        "drop:0",    // shed the server-2 copies: this test is about server 1
        "drop:0",
        "step:0",    // client 1 forces
        "deliver:0", // ForceLog reaches server 1 (obligation on shard 1)
        "drop:0",
        "step:1",    // client 2 forces
        "deliver:0", // ForceLog reaches server 1 (obligation on shard 0)
        "drop:0",
        "flush:1",   // window expiry drains both shards' obligations
        "deliver:0", // forced acks reach both clients
        "deliver:0",
        "crash:1",   // both shards lose volatile state at once
        "recover:1", // per-shard recovery checked against per-shard images
    ]);
    for action in trace {
        let v = world.apply(action).expect("pinned action applies");
        assert!(v.is_none(), "sharded cycle violated an invariant: {v:?}");
    }
    let handles = world.server_obs();
    assert_eq!(handles.len(), 4, "2 servers x 2 shards obs handles");
    for (k, (sid, obs)) in handles.iter().take(2).enumerate() {
        assert_eq!(*sid, 1);
        let snap = obs.snapshot().expect("obs enabled");
        assert!(
            snap.trace.iter().any(|e| e.stage.name() == "server_ingest"),
            "server 1 shard {k} never ingested — both clients routed to one shard"
        );
    }
}

/// The random-walk mode reaches depths the exhaustive frontier cannot;
/// on the faithful protocol it must also come back clean, and the
/// walker must actually cover fresh states.
#[test]
fn random_walks_stay_clean() {
    let cfg = McConfig::default();
    let explorer = Explorer::new(&cfg, &default_scratch("t1-walk"));
    let report = explorer.run_walk(150, 24, 0xD1CE).expect("walks run");
    assert!(
        report.violation.is_none(),
        "random walk violated: {:?}",
        report.violation
    );
    assert!(
        report.states_unique > 200,
        "walks covered suspiciously few states: {}",
        report.states_unique
    );
    assert!(
        report.max_depth > TIER1_DEPTH,
        "walks never went deeper than the exhaustive frontier"
    );
}

/// Crash/recover markers must land in the per-server observability
/// trace — the counterexample renderer (and the soak cluster) depend on
/// them to make crash schedules legible.
#[test]
fn crash_and_recover_land_in_server_trace() {
    let cfg = McConfig::default();
    let mut world =
        dlog_mc::McWorld::new(&cfg, &default_scratch("t1-markers")).expect("world builds");
    for line in ["step:0", "deliver:0", "crash:1", "recover:1"] {
        let action: Action = line.parse().expect("well-formed action");
        let v = world.apply(action).expect("action applies");
        assert!(v.is_none(), "unexpected violation: {v:?}");
    }
    let (_, obs) = world
        .server_obs()
        .into_iter()
        .next()
        .expect("server 1 has an obs handle");
    let snap = obs.snapshot().expect("obs enabled");
    let names: Vec<&str> = snap.trace.iter().map(|e| e.stage.name()).collect();
    assert!(names.contains(&"crash"), "no crash marker in {names:?}");
    assert!(names.contains(&"recover"), "no recover marker in {names:?}");
    let crash_at = names.iter().position(|n| *n == "crash").unwrap();
    let recover_at = names.iter().position(|n| *n == "recover").unwrap();
    assert!(crash_at < recover_at, "markers out of order");
}
