//! **dlog-alloc** — a counting shim over the system allocator.
//!
//! The zero-copy wire path (ROADMAP item 3) is only verifiable if
//! allocation counts are *measured*, not eyeballed: `dlog-obs` exposes
//! the gauges collected here as `allocs_per_write`, `obs_bench` reports
//! them per scenario, and the bench-regression gate fails when they
//! grow. The shim forwards every call straight to [`System`] and adds
//! two relaxed atomic increments plus one thread-local increment — a
//! few nanoseconds per allocation, which is noise next to the
//! allocation itself.
//!
//! Two gauges are kept:
//!
//! * **process-wide** totals (allocation count and bytes), served from
//!   relaxed atomics — what `obs_bench` divides by the record count;
//! * a **per-thread** allocation count, served from a `const`-initialized
//!   thread-local `Cell` so reading or bumping it never allocates — what
//!   the determinism tests compare across seeded replays (counts from
//!   unrelated threads must not bleed in).
//!
//! This is the one crate in the workspace that needs `unsafe`
//! (`GlobalAlloc` is an unsafe trait); the `forbid-unsafe` lint gate
//! carries an audited allow entry for it. Nothing here can panic: the
//! thread-local read falls back to 0 during TLS teardown.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // `const` initialization: touching the cell never allocates, so the
    // counter can be bumped from inside the allocator itself.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count(bytes: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    // During thread teardown the TLS slot may already be gone; losing
    // those few counts is fine (and unavoidable without a lock).
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// The counting allocator. Registered as the global allocator by this
/// crate; every binary that (transitively) depends on `dlog-alloc` gets
/// counted allocations with no further setup.
pub struct CountingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counters touched before forwarding cannot
// unwind (relaxed atomics and a `try_with` thread-local access).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by this process since startup (all threads).
#[must_use]
pub fn process_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator since startup (all threads; counts
/// requests, not live bytes — frees are not subtracted).
#[must_use]
pub fn process_alloc_bytes() -> u64 {
    TOTAL_BYTES.load(Ordering::Relaxed)
}

/// Allocations performed by the *calling thread* since it started.
/// Deterministic under a deterministic schedule: counts from other
/// threads never bleed in, so two seeded replays on fresh threads (or
/// the same thread) see identical deltas for identical work.
#[must_use]
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_move_on_allocation() {
        let (p0, b0, t0) = (process_allocs(), process_alloc_bytes(), thread_allocs());
        let v: Vec<u8> = Vec::with_capacity(4096);
        assert!(v.capacity() >= 4096);
        assert!(process_allocs() > p0, "process alloc count did not move");
        assert!(
            process_alloc_bytes() >= b0 + 4096,
            "byte gauge missed a 4 KiB allocation"
        );
        assert!(thread_allocs() > t0, "thread alloc count did not move");
    }

    #[test]
    fn thread_counter_is_thread_local() {
        let before = thread_allocs();
        std::thread::spawn(|| {
            let mut v = Vec::new();
            for i in 0..1000u64 {
                v.push(vec![0u8; 64]);
                v[0][0] = i as u8;
            }
        })
        .join()
        .unwrap();
        let after = thread_allocs();
        // The spawned thread's ~1000 allocations must not land on ours.
        // (A few allocations on this thread from the join machinery are
        // tolerated.)
        assert!(
            after - before < 100,
            "foreign thread allocations bled into the local counter: {}",
            after - before
        );
    }

    #[test]
    // The init-then-push shape is the point: the second push must grow
    // the vec so the realloc registers as a distinct allocation.
    #[allow(clippy::vec_init_then_push)]
    fn vec_growth_is_counted_per_reallocation() {
        let t0 = thread_allocs();
        let mut v: Vec<u64> = Vec::with_capacity(1);
        v.push(1);
        v.push(2); // forces a realloc
        assert!(thread_allocs() >= t0 + 2);
    }
}
