//! Property tests for the §3.2 availability formulas: probabilistic
//! sanity (bounds, monotonicity in p, N, and M) and consistency
//! identities.

use proptest::prelude::*;

use dlog_analysis::availability::{
    generator_availability, init_availability, prob_at_most_down, read_availability,
    write_availability,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn all_probabilities_in_unit_interval(m in 1u64..12, n_seed in 1u64..12, p in 0.0f64..1.0) {
        let n = 1 + n_seed % m;
        for v in [
            write_availability(m, n, p),
            init_availability(m, n, p),
            read_availability(n, p),
            generator_availability(m, p),
        ] {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "{v} out of range");
        }
    }

    /// Higher per-server failure probability never raises availability.
    #[test]
    fn monotone_decreasing_in_p(m in 1u64..10, n_seed in 1u64..10, p in 0.0f64..0.95) {
        let n = 1 + n_seed % m;
        let q = p + 0.05;
        prop_assert!(write_availability(m, n, p) >= write_availability(m, n, q) - 1e-12);
        prop_assert!(init_availability(m, n, p) >= init_availability(m, n, q) - 1e-12);
        prop_assert!(read_availability(n, p) >= read_availability(n, q) - 1e-12);
        prop_assert!(generator_availability(m, p) >= generator_availability(m, q) - 1e-12);
    }

    /// Adding a server helps writes and hurts initialization — the
    /// Figure 3-4 trade-off, for every (M, N, p).
    #[test]
    fn figure_3_4_tradeoff(m in 2u64..10, n_seed in 1u64..10, p in 0.01f64..0.5) {
        let n = 1 + n_seed % m;
        prop_assert!(write_availability(m + 1, n, p) >= write_availability(m, n, p) - 1e-12);
        prop_assert!(init_availability(m + 1, n, p) <= init_availability(m, n, p) + 1e-12);
    }

    /// More copies help reads, hurt writes, help initialization.
    #[test]
    fn monotone_in_n(m in 2u64..10, n_seed in 1u64..10, p in 0.01f64..0.5) {
        let n = 1 + n_seed % (m - 1); // n + 1 <= m
        prop_assert!(read_availability(n + 1, p) >= read_availability(n, p) - 1e-12);
        prop_assert!(write_availability(m, n + 1, p) <= write_availability(m, n, p) + 1e-12);
        prop_assert!(init_availability(m, n + 1, p) >= init_availability(m, n, p) - 1e-12);
    }

    /// Identity: write availability for (M, N) equals init availability
    /// for (M, M−N+1) — both are "at most M−N down".
    #[test]
    fn write_init_duality(m in 1u64..12, n_seed in 1u64..12, p in 0.0f64..1.0) {
        let n = 1 + n_seed % m;
        let dual = m - n + 1;
        let a = write_availability(m, n, p);
        let b = init_availability(m, dual, p);
        prop_assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    /// The CDF is consistent: P(≤ k down) is nondecreasing in k and hits
    /// 1 at k = n.
    #[test]
    fn cdf_consistency(n in 1u64..12, p in 0.0f64..1.0) {
        let mut prev = 0.0;
        for k in 0..=n {
            let c = prob_at_most_down(n, k, p);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
        prop_assert!((prev - 1.0).abs() < 1e-9);
    }
}
