//! Closed-form models from the paper: the availability analysis of §3.2
//! and Appendix I, the log-server capacity analysis of §4.1, and the log
//! space management accounting of §5.3.
//!
//! These are the analytic halves of experiments E1–E3, E5, and E12; the
//! Monte-Carlo cross-checks live in `dlog-sim` and the measured
//! counterparts in `dlog-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod capacity;
pub mod commit;
pub mod queueing;
pub mod space;
pub mod table;

pub use availability::{
    generator_availability, init_availability, read_availability, write_availability,
};
pub use capacity::{CapacityParams, CapacityReport};
