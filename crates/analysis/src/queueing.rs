//! Log-server response-time model (§3.2, §5.4).
//!
//! §3.2 remarks that as servers fail, "response to WriteLog operations
//! may degrade, as fewer servers remain to carry the load, but such
//! failures will hardly ever render WriteLog operations unavailable";
//! §5.4 wants load spread "so as to minimize response times". This module
//! quantifies both with standard single-server queueing formulas:
//!
//! * **M/M/1** — exponential service (a pessimistic envelope);
//! * **M/D/1** — deterministic service, the right shape for a force
//!   that is a fixed-cost NVRAM insert (Pollaczek–Khinchine).

/// Mean response time (waiting + service) of an M/M/1 queue.
///
/// `lambda`: arrivals/sec; `mu`: service rate/sec. Returns `None` when
/// the queue is unstable (λ ≥ μ).
#[must_use]
pub fn mm1_response(lambda: f64, mu: f64) -> Option<f64> {
    (lambda < mu && lambda >= 0.0).then(|| 1.0 / (mu - lambda))
}

/// Mean response time of an M/D/1 queue (deterministic service time
/// `1/mu`), by Pollaczek–Khinchine: `W = 1/μ + ρ/(2μ(1−ρ))`.
#[must_use]
pub fn md1_response(lambda: f64, mu: f64) -> Option<f64> {
    if !(lambda >= 0.0 && lambda < mu) {
        return None;
    }
    let rho = lambda / mu;
    Some(1.0 / mu + rho / (2.0 * mu * (1.0 - rho)))
}

/// The §3.2 degradation scenario: `clients` nodes force `force_rate`
/// times/sec to N of the *live* servers each; each force costs the server
/// `service_us` microseconds. Returns mean per-force response time in
/// microseconds for a given number of down servers, or `None` once the
/// survivors saturate.
#[derive(Clone, Copy, Debug)]
pub struct DegradationModel {
    /// Client nodes.
    pub clients: u64,
    /// Forces per second per client.
    pub force_rate: f64,
    /// Copies per force (N).
    pub n: u64,
    /// Total servers (M).
    pub m: u64,
    /// Server service time per force, microseconds.
    pub service_us: f64,
}

impl DegradationModel {
    /// The §4.1 target: 50 clients × 10 forces/s, N = 2, M = 6, with a
    /// generous 200 µs per force (NVRAM copy + protocol processing).
    #[must_use]
    pub fn paper_target() -> Self {
        DegradationModel {
            clients: 50,
            force_rate: 10.0,
            n: 2,
            m: 6,
            service_us: 200.0,
        }
    }

    /// Mean response (µs) with `down` servers failed, M/D/1 service.
    #[must_use]
    pub fn response_with_down(&self, down: u64) -> Option<f64> {
        let live = self.m.checked_sub(down)?;
        if live < self.n {
            return None; // WriteLog unavailable outright
        }
        let total_forces = self.clients as f64 * self.force_rate * self.n as f64;
        let lambda = total_forces / live as f64;
        let mu = 1.0e6 / self.service_us;
        md1_response(lambda, mu).map(|w| w * 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_basics() {
        // λ=0: response = service time.
        assert!((mm1_response(0.0, 100.0).unwrap() - 0.01).abs() < 1e-12);
        // Half load doubles the M/M/1 response.
        assert!((mm1_response(50.0, 100.0).unwrap() - 0.02).abs() < 1e-12);
        // Unstable.
        assert_eq!(mm1_response(100.0, 100.0), None);
        assert_eq!(mm1_response(150.0, 100.0), None);
    }

    #[test]
    fn md1_below_mm1() {
        // Deterministic service halves the *waiting* component relative to
        // exponential, so M/D/1 response is strictly below M/M/1 under load.
        for lambda in [10.0, 50.0, 90.0] {
            let md1 = md1_response(lambda, 100.0).unwrap();
            let mm1 = mm1_response(lambda, 100.0).unwrap();
            assert!(md1 < mm1, "λ={lambda}: {md1} !< {mm1}");
            assert!(md1 >= 0.01, "never below the service time");
        }
        // At λ→0 both converge to the service time.
        assert!((md1_response(1e-9, 100.0).unwrap() - 0.01).abs() < 1e-6);
    }

    /// §3.2's qualitative claim, quantified: losing servers degrades
    /// response monotonically but the system stays far from saturation at
    /// the paper's load until almost every server is gone.
    #[test]
    fn degradation_is_graceful_at_paper_load() {
        let m = DegradationModel::paper_target();
        let baseline = m.response_with_down(0).unwrap();
        let mut prev = baseline;
        for down in 1..=4 {
            let r = m.response_with_down(down).unwrap();
            assert!(r > prev, "response must degrade with {down} down");
            prev = r;
        }
        // With 4 of 6 down, the two survivors carry 500 forces/s each at
        // 5000/s capacity: only 10% utilization — response grows but stays
        // within 2x of baseline. ("Hardly ever" unavailable, mild slowdown.)
        let worst = m.response_with_down(4).unwrap();
        assert!(
            worst < 2.0 * baseline,
            "worst {worst} vs baseline {baseline}"
        );
        // Below N survivors: unavailable.
        assert_eq!(m.response_with_down(5), None);
    }

    #[test]
    fn saturation_detected() {
        // Crank the load until survivors saturate.
        let m = DegradationModel {
            clients: 50,
            force_rate: 10.0,
            n: 2,
            m: 6,
            service_us: 5000.0, // slow disk-bound server: 200 forces/s
        };
        // All up: 1000 total forces over 6 servers = 167/s each < 200 ok.
        assert!(m.response_with_down(0).is_some());
        // 2 down: 250/s each > 200 capacity — unstable.
        assert_eq!(m.response_with_down(2), None);
    }
}
