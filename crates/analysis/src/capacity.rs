//! The log-server capacity analysis of §4.1.
//!
//! The paper sizes a shared logging service for a concrete target load:
//! fifty client nodes each running ten local ET1 transactions per second
//! (500 TPS aggregate), dual-copy logs (N = 2), six log servers. Each ET1
//! transaction writes 700 bytes in seven log records, of which only the
//! final commit record is forced. From these constants the paper derives
//! message rates, network load, CPU fractions, disk utilization, and
//! daily log volume; [`CapacityParams::report`] reproduces every number.

/// Workload and hardware constants for the capacity model.
#[derive(Clone, Debug)]
pub struct CapacityParams {
    /// Transaction-processing client nodes.
    pub clients: u64,
    /// Local transactions per second per client.
    pub tps_per_client: f64,
    /// Log records per transaction (ET1: 7).
    pub records_per_txn: f64,
    /// Log bytes per transaction (ET1: 700).
    pub bytes_per_txn: f64,
    /// Forced log writes per transaction (ET1: 1 — the commit record).
    pub forces_per_txn: f64,
    /// Log-server nodes.
    pub servers: u64,
    /// Copies per record.
    pub n: u64,
    /// Instructions for network + RPC processing per packet (paper: 1000).
    pub instr_per_packet: f64,
    /// Instructions to process a message's records and copy them to
    /// non-volatile memory (paper: 2000).
    pub instr_per_message: f64,
    /// Instructions to write a track to disk (paper: 2000).
    pub instr_per_track_write: f64,
    /// Server CPU speed in instructions/second (paper: "a few MIPS").
    pub server_mips: f64,
    /// Track size in bytes (the NVRAM flush unit).
    pub track_bytes: f64,
    /// Time to write one track to disk, seconds (sequential, no seek —
    /// dominated by rotation; a "slow disk with small tracks" in the
    /// paper's terms).
    pub track_write_seconds: f64,
    /// Per-packet wire overhead in bytes (headers, acks).
    pub packet_overhead_bytes: f64,
    /// Whether writes are multicast (halves network traffic, §4.1).
    pub multicast: bool,
}

impl CapacityParams {
    /// The paper's §4.1 target configuration.
    #[must_use]
    pub fn paper_target() -> Self {
        CapacityParams {
            clients: 50,
            tps_per_client: 10.0,
            records_per_txn: 7.0,
            bytes_per_txn: 700.0,
            forces_per_txn: 1.0,
            servers: 6,
            n: 2,
            instr_per_packet: 1000.0,
            instr_per_message: 2000.0,
            instr_per_track_write: 2000.0,
            server_mips: 4.0e6,
            track_bytes: 16.0 * 1024.0,
            track_write_seconds: 0.060,
            packet_overhead_bytes: 100.0,
            multicast: false,
        }
    }

    /// Evaluate the model.
    #[must_use]
    pub fn report(&self) -> CapacityReport {
        let tps = self.clients as f64 * self.tps_per_client;
        let copies = self.n as f64;
        let servers = self.servers as f64;

        // Without grouping, every record is an RPC to each of N servers:
        // requests in plus responses out.
        let record_rpcs = tps * self.records_per_txn * copies / servers;
        let messages_per_server_ungrouped = 2.0 * record_rpcs;

        // With grouping, records buffer locally until the per-transaction
        // force, so each transaction costs one message per copy.
        let grouped_rpcs_per_server = tps * self.forces_per_txn * copies / servers;
        let messages_per_server_grouped = 2.0 * grouped_rpcs_per_server;

        // Network volume: payload to N servers plus per-packet overhead
        // and acknowledgments.
        let payload_bytes_per_sec = tps * self.bytes_per_txn * copies;
        let packets_per_sec = tps * self.forces_per_txn * copies * 2.0; // req + ack
        let mut network_bits_per_sec =
            (payload_bytes_per_sec + packets_per_sec * self.packet_overhead_bytes) * 8.0;
        if self.multicast {
            network_bits_per_sec /= 2.0;
        }

        // Per-server data and CPU.
        let bytes_per_server_per_sec = payload_bytes_per_sec / servers;
        let comm_instr = messages_per_server_grouped * self.instr_per_packet;
        let tracks_per_sec = bytes_per_server_per_sec / self.track_bytes;
        let log_instr = grouped_rpcs_per_server * self.instr_per_message
            + tracks_per_sec * self.instr_per_track_write;

        CapacityReport {
            aggregate_tps: tps,
            messages_per_server_ungrouped,
            rpcs_per_server_grouped: grouped_rpcs_per_server,
            grouping_factor: self.records_per_txn / self.forces_per_txn,
            network_megabits_per_sec: network_bits_per_sec / 1.0e6,
            bytes_per_server_per_sec,
            comm_cpu_fraction: comm_instr / self.server_mips,
            logging_cpu_fraction: log_instr / self.server_mips,
            tracks_per_server_per_sec: tracks_per_sec,
            disk_utilization: tracks_per_sec * self.track_write_seconds,
            gb_per_server_per_day: bytes_per_server_per_sec * 86_400.0 / 1.0e9,
        }
    }
}

/// Model outputs (§4.1's derived quantities).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityReport {
    /// Aggregate transactions per second.
    pub aggregate_tps: f64,
    /// Messages per server per second *without* record grouping
    /// (paper: "about 2400 incoming or outgoing messages per second").
    pub messages_per_server_ungrouped: f64,
    /// Grouped RPCs per server per second (paper: "about 170").
    pub rpcs_per_server_grouped: f64,
    /// The factor grouping saves (paper: "a factor of seven").
    pub grouping_factor: f64,
    /// Total network load (paper: "around seven million total bits per
    /// second").
    pub network_megabits_per_sec: f64,
    /// Log bytes arriving at each server per second.
    pub bytes_per_server_per_sec: f64,
    /// Fraction of server CPU spent on communication (paper: "less than
    /// ten percent").
    pub comm_cpu_fraction: f64,
    /// Fraction of server CPU spent processing and writing log records
    /// (paper: "ten to twenty percent").
    pub logging_cpu_fraction: f64,
    /// Track writes per server per second.
    pub tracks_per_server_per_sec: f64,
    /// Disk-arm utilization (paper: "close to fifty percent for slow
    /// disks with small tracks").
    pub disk_utilization: f64,
    /// Daily log volume per server (paper: "approximately ten billion
    /// bytes ... per day").
    pub gb_per_server_per_day: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_target_reproduces_section_4_1() {
        let r = CapacityParams::paper_target().report();

        assert_eq!(r.aggregate_tps, 500.0);

        // "each log server would have to process about 2400 incoming or
        // outgoing messages per second"
        assert!(
            (r.messages_per_server_ungrouped - 2333.0).abs() < 100.0,
            "ungrouped messages: {}",
            r.messages_per_server_ungrouped
        );

        // "grouping log records ... reduces the number of RPCs by a factor
        // of seven. Still, each server must process about 170 RPCs per
        // second"
        assert_eq!(r.grouping_factor, 7.0);
        assert!(
            (r.rpcs_per_server_grouped - 167.0).abs() < 10.0,
            "grouped RPCs: {}",
            r.rpcs_per_server_grouped
        );

        // "fifty client nodes, each using two log servers, will generate
        // around seven million total bits per second of network traffic"
        assert!(
            r.network_megabits_per_sec > 5.5 && r.network_megabits_per_sec < 8.0,
            "network: {} Mbit/s",
            r.network_megabits_per_sec
        );

        // "communication processing will consume less than ten percent of
        // log server CPU capacity"
        assert!(
            r.comm_cpu_fraction < 0.10,
            "comm CPU: {}",
            r.comm_cpu_fraction
        );

        // "only ten to twenty percent of a log server's CPU capacity will
        // be used for writing log records" (the paper's bound is an upper
        // estimate; the model lands at or below it)
        assert!(
            r.logging_cpu_fraction < 0.20,
            "logging CPU: {}",
            r.logging_cpu_fraction
        );

        // "disk utilization will be higher, close to fifty percent for
        // slow disks with small tracks"
        assert!(
            r.disk_utilization > 0.25 && r.disk_utilization < 0.65,
            "disk util: {}",
            r.disk_utilization
        );

        // "approximately ten billion bytes of log data will be written to
        // each log server per day"
        assert!(
            (r.gb_per_server_per_day - 10.0).abs() < 1.0,
            "daily volume: {} GB",
            r.gb_per_server_per_day
        );
    }

    #[test]
    fn multicast_halves_network() {
        let base = CapacityParams::paper_target();
        let mut mc = base.clone();
        mc.multicast = true;
        let r0 = base.report();
        let r1 = mc.report();
        assert!((r1.network_megabits_per_sec * 2.0 - r0.network_megabits_per_sec).abs() < 1e-9);
    }

    #[test]
    fn scaling_in_clients_is_linear() {
        let base = CapacityParams::paper_target().report();
        let mut double = CapacityParams::paper_target();
        double.clients = 100;
        let r = double.report();
        assert!((r.rpcs_per_server_grouped - 2.0 * base.rpcs_per_server_grouped).abs() < 1e-9);
        assert!((r.gb_per_server_per_day - 2.0 * base.gb_per_server_per_day).abs() < 1e-9);
    }
}
