//! Replicated-log availability (§3.2) and identifier-generator
//! availability (Appendix I).
//!
//! With M log servers failing independently (each unavailable with
//! probability `p`) and records written to N of them:
//!
//! * **WriteLog** is available when M−N or fewer servers are down:
//!   `Σ_{i=0}^{M−N} C(M,i) pⁱ (1−p)^{M−i}`;
//! * **client initialization** needs M−N+1 servers, i.e. N−1 or fewer
//!   down: `Σ_{i=0}^{N−1} C(M,i) pⁱ (1−p)^{M−i}`;
//! * **ReadLog** of a record needs one of its N holders: `1 − pᴺ`;
//! * the **identifier generator** with R representatives needs a majority:
//!   `Σ_{i=0}^{⌊(R−1)/2⌋} C(R,i) pⁱ (1−p)^{R−i}`.

/// Binomial coefficient C(n, k) as f64 (exact for the small n used here).
#[must_use]
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    let mut den = 1.0f64;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// P(exactly `k` of `n` nodes are down), nodes independently down with
/// probability `p`.
#[must_use]
pub fn prob_down(n: u64, k: u64, p: f64) -> f64 {
    binomial(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// P(at most `k` of `n` nodes are down).
#[must_use]
pub fn prob_at_most_down(n: u64, k: u64, p: f64) -> f64 {
    (0..=k.min(n)).map(|i| prob_down(n, i, p)).sum()
}

/// Availability of `WriteLog` for an (M, N) replicated log.
#[must_use]
pub fn write_availability(m: u64, n: u64, p: f64) -> f64 {
    assert!(n >= 1 && n <= m, "need 1 <= N <= M");
    prob_at_most_down(m, m - n, p)
}

/// Availability of client initialization for an (M, N) replicated log.
#[must_use]
pub fn init_availability(m: u64, n: u64, p: f64) -> f64 {
    assert!(n >= 1 && n <= m, "need 1 <= N <= M");
    prob_at_most_down(m, n - 1, p)
}

/// Availability of reading a particular record stored on N servers.
#[must_use]
pub fn read_availability(n: u64, p: f64) -> f64 {
    1.0 - p.powi(n as i32)
}

/// Availability of the Appendix I replicated identifier generator with R
/// state representatives.
#[must_use]
pub fn generator_availability(r: u64, p: f64) -> f64 {
    assert!(r >= 1);
    prob_at_most_down(r, (r - 1) / 2, p)
}

/// Smallest M (≥ N) whose `WriteLog` availability meets `target`, or
/// `None` if no M up to `m_max` does. Sizing helper: "users of replicated
/// logs must select values of M to provide some minimum availability"
/// (§3.2).
#[must_use]
pub fn min_m_for_write(n: u64, p: f64, target: f64, m_max: u64) -> Option<u64> {
    (n..=m_max).find(|&m| write_availability(m, n, p) >= target)
}

/// Largest M whose client-initialization availability still meets
/// `target` (init availability *falls* with M), or `None` if even M = N
/// misses it.
#[must_use]
pub fn max_m_for_init(n: u64, p: f64, target: f64, m_max: u64) -> Option<u64> {
    (n..=m_max)
        .take_while(|&m| init_availability(m, n, p) >= target)
        .last()
}

/// One row of the Figure 3-4 dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig34Row {
    /// Total servers M.
    pub m: u64,
    /// Copies per record N.
    pub n: u64,
    /// WriteLog availability.
    pub write: f64,
    /// Client-initialization availability.
    pub init: f64,
}

/// The Figure 3-4 dataset: availabilities for N ∈ {2, 3}, M ∈ N..=m_max,
/// with per-server unavailability `p` (the paper uses p = 0.05).
#[must_use]
pub fn figure_3_4(m_max: u64, p: f64) -> Vec<Fig34Row> {
    let mut rows = Vec::new();
    for n in [2u64, 3] {
        for m in n..=m_max {
            rows.push(Fig34Row {
                m,
                n,
                write: write_availability(m, n, p),
                init: init_availability(m, n, p),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: f64 = 0.05;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(3, 4), 0.0);
        assert_eq!(binomial(8, 4), 70.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        for n in [1u64, 3, 7] {
            let total: f64 = (0..=n).map(|k| prob_down(n, k, 0.3)).sum();
            assert!(close(total, 1.0, 1e-12));
        }
    }

    /// Single server: everything available with probability 1−p = 0.95
    /// ("if only a single server were used, then ReadLog, WriteLog and
    /// client initialization would be available with probability 0.95").
    #[test]
    fn single_server_baseline() {
        assert!(close(write_availability(1, 1, P), 0.95, 1e-12));
        assert!(close(init_availability(1, 1, P), 0.95, 1e-12));
        assert!(close(read_availability(1, P), 0.95, 1e-12));
    }

    /// §3.2: "consider the case of dual copy replicated logs (N = 2) and
    /// M = 5 ... For WriteLog operations to be unavailable, at least four
    /// of the five servers must be down", and "four of the five log
    /// servers must be available for client initialization. This occurs
    /// with a probability of about 0.98".
    #[test]
    fn paper_n2_m5_example() {
        let w = write_availability(5, 2, P);
        assert!(w > 0.99996, "write availability {w} should be ~1");
        let i = init_availability(5, 2, P);
        assert!(
            close(i, 0.977, 2e-3),
            "init availability {i} should be about 0.98"
        );
    }

    /// §3.2: "with five log servers and triple copy replicated logs,
    /// availability for both normal processing and client initialization
    /// is about 0.999".
    #[test]
    fn paper_n3_m5_example() {
        let w = write_availability(5, 3, P);
        let i = init_availability(5, 3, P);
        assert!(close(w, 0.9988, 1e-3), "write {w}");
        assert!(close(i, 0.9988, 1e-3), "init {i}");
        // For N=3, M=5, both tolerate exactly 2 failures: identical.
        assert!(close(w, i, 1e-12));
    }

    /// §3.2: "with dual copy replicated logs, 0.95 or better availability
    /// for client initialization would be achieved using up to M = 7 log
    /// servers".
    #[test]
    fn paper_dual_copy_limit() {
        assert!(init_availability(7, 2, P) >= 0.95);
        assert!(init_availability(8, 2, P) < 0.95);
    }

    /// Write availability rises with M; init availability falls with M.
    #[test]
    fn monotonicity_in_m() {
        for n in [2u64, 3] {
            for m in n..8 {
                assert!(
                    write_availability(m + 1, n, P) >= write_availability(m, n, P) - 1e-12,
                    "write not rising at M={m} N={n}"
                );
                assert!(
                    init_availability(m + 1, n, P) <= init_availability(m, n, P) + 1e-12,
                    "init not falling at M={m} N={n}"
                );
            }
        }
    }

    #[test]
    fn read_availability_formula() {
        assert!(close(read_availability(2, P), 1.0 - 0.0025, 1e-12));
        assert!(close(read_availability(3, P), 1.0 - 0.000125, 1e-12));
    }

    /// Appendix I: majority quorum availability; R=3 tolerates 1 failure.
    #[test]
    fn generator_availability_values() {
        let g1 = generator_availability(1, P); // majority of 1 = itself
        assert!(close(g1, 0.95, 1e-12));
        let g3 = generator_availability(3, P); // ≤1 of 3 down
        assert!(close(g3, prob_at_most_down(3, 1, P), 1e-12));
        assert!(g3 > 0.992);
        let g5 = generator_availability(5, P); // ≤2 of 5 down
        assert!(g5 > g3);
    }

    /// Footnote 3: generator representatives require fewer nodes than
    /// client initialization, so the generator never limits availability
    /// (for the typical configurations in Figure 3-4).
    #[test]
    fn generator_does_not_limit_init() {
        for (m, n) in [(3u64, 2u64), (5, 2), (5, 3), (7, 2)] {
            let gen = generator_availability(m, P);
            let init = init_availability(m, n, P);
            assert!(
                gen >= init - 1e-9,
                "generator availability {gen} below init {init} for M={m} N={n}"
            );
        }
    }

    /// §3.2: "0.95 or better availability for client initialization would
    /// be achieved using up to M = 7 log servers" — the sizing helpers
    /// find exactly that bound.
    #[test]
    fn sizing_helpers() {
        assert_eq!(max_m_for_init(2, P, 0.95, 20), Some(7));
        assert_eq!(min_m_for_write(2, P, 0.999, 20), Some(4));
        // An impossible target yields None.
        assert_eq!(max_m_for_init(1, 0.5, 0.95, 20), None);
        assert_eq!(min_m_for_write(2, 0.5, 0.9999, 4), None);
    }

    #[test]
    fn figure_3_4_shape() {
        let rows = figure_3_4(8, P);
        // N=2: M=2..8 (7 rows); N=3: M=3..8 (6 rows).
        assert_eq!(rows.len(), 13);
        for r in &rows {
            // At M=N a write needs all N servers while initialization
            // needs only one, so write availability is the lower of the
            // two; the curves cross as M grows (the Figure 3-4 shape).
            if r.m == r.n {
                assert!(r.write <= r.init);
            }
            assert!(r.write >= 0.0 && r.write <= 1.0);
            assert!(r.init >= 0.0 && r.init <= 1.0);
        }
    }
}
