//! Common commit coordination (§5.5).
//!
//! "If remote logging were performed using a server having mirrored
//! disks, rather than using the replicated logging algorithm ..., that
//! server could be a coordinator for an optimized commit protocol. The
//! number of messages and the number of forces of data to non volatile
//! storage required for commit could be reduced ... if multi node
//! transactions are frequent then common commit coordination is an
//! argument against replicated logging."
//!
//! This model counts the messages and synchronous log forces on the
//! commit path of a distributed transaction with `participants` worker
//! nodes, under three architectures:
//!
//! 1. **2PC over replicated logs** (this paper's design): every
//!    participant and the coordinator force prepare/commit records to
//!    their own N-of-M replicated logs;
//! 2. **2PC over local duplexed logs**: forces hit two local disks, no
//!    network logging;
//! 3. **common commit** (§5.5): one shared mirrored-disk log server holds
//!    everyone's log *and* coordinates — prepare records double as votes,
//!    and one group force covers the whole transaction.

/// Commit-path costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitCost {
    /// Network messages on the commit critical path (excluding lazy
    /// acknowledgments after the decision is durable).
    pub messages: u64,
    /// Synchronous force operations before the decision is durable.
    pub forces: u64,
    /// Sequential message/force rounds (latency proxy).
    pub rounds: u64,
}

/// A distributed transaction across `participants` nodes (the coordinator
/// runs on one of them) where each force costs `n` server messages when
/// logs are replicated.
#[derive(Clone, Copy, Debug)]
pub struct CommitModel {
    /// Worker nodes with updates to commit.
    pub participants: u64,
    /// Replication degree of each node's log.
    pub n: u64,
}

impl CommitModel {
    /// 2PC where every node logs to its own N-of-M replicated log.
    /// Prepare: coordinator→P, each participant forces prepare (N
    /// messages + N acks each), votes back: P. Decision: coordinator
    /// forces commit (N + N), then commit messages: P (participant commit
    /// records are forced lazily).
    #[must_use]
    pub fn two_phase_replicated(&self) -> CommitCost {
        let p = self.participants;
        let n = self.n;
        CommitCost {
            messages: p            // prepare requests
                + p * 2 * n        // participant prepare forces (writes + acks)
                + p                // votes
                + 2 * n            // coordinator decision force
                + p, // commit notifications
            forces: p + 1,
            rounds: 5, // prepare, force, vote, decide/force, notify
        }
    }

    /// 2PC where every node has a local duplexed log: same message
    /// pattern minus the remote logging traffic (forces are local).
    #[must_use]
    pub fn two_phase_local(&self) -> CommitCost {
        let p = self.participants;
        CommitCost {
            messages: 3 * p,
            forces: p + 1,
            rounds: 5,
        }
    }

    /// §5.5 common commit: all nodes log to one shared mirrored server
    /// that also coordinates. Participants send their prepare records to
    /// the server (P messages, these *are* the votes); the server groups
    /// all prepares plus the commit record into a single force of its
    /// non-volatile storage, then notifies (P messages).
    #[must_use]
    pub fn common_commit(&self) -> CommitCost {
        let p = self.participants;
        CommitCost {
            messages: 2 * p,
            forces: 1,
            rounds: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_counts_p2_n2() {
        // 2 participants, dual-copy logs.
        let m = CommitModel {
            participants: 2,
            n: 2,
        };
        let repl = m.two_phase_replicated();
        // 2 prepares + 8 (2 participants × 2N) + 2 votes + 4 (decision
        // force) + 2 notifies = 18.
        assert_eq!(repl.messages, 18);
        assert_eq!(repl.forces, 3);

        let local = m.two_phase_local();
        assert_eq!(local.messages, 6);
        assert_eq!(local.forces, 3);

        let common = m.common_commit();
        assert_eq!(common.messages, 4);
        assert_eq!(common.forces, 1);
    }

    #[test]
    fn common_commit_always_cheapest() {
        for p in 1..10 {
            for n in 1..4 {
                let m = CommitModel { participants: p, n };
                let c = m.common_commit();
                let r = m.two_phase_replicated();
                let l = m.two_phase_local();
                assert!(c.messages < r.messages);
                assert!(c.messages <= l.messages + 1);
                assert!(c.forces < r.forces || p == 0);
                assert!(c.rounds < r.rounds);
                assert!(c.forces <= l.forces);
            }
        }
    }

    #[test]
    fn replication_cost_scales_with_n() {
        let p3n2 = CommitModel {
            participants: 3,
            n: 2,
        }
        .two_phase_replicated();
        let p3n3 = CommitModel {
            participants: 3,
            n: 3,
        }
        .two_phase_replicated();
        assert!(p3n3.messages > p3n2.messages);
        assert_eq!(
            p3n3.forces, p3n2.forces,
            "forces depend on participants, not N"
        );
    }
}
