//! Minimal aligned-column table rendering for the benchmark report
//! binaries (kept dependency-free on purpose).

/// A simple text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a probability with enough digits to distinguish high
/// availabilities (e.g. `0.999973`).
#[must_use]
pub fn fmt_prob(p: f64) -> String {
    format!("{p:.6}")
}

/// Format a float to 1 decimal.
#[must_use]
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float to 2 decimals.
#[must_use]
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["M", "write", "init"]);
        t.row(vec!["2", "0.9025", "0.9975"]);
        t.row(vec!["10", "1.0", "0.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("M "));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "write" starts at the same offset in every row.
        let col = lines[0].find("write").unwrap();
        assert_eq!(&lines[2][col..col + 6], "0.9025");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_prob(0.97739), "0.977390");
        assert_eq!(fmt1(3.17), "3.2");
        assert_eq!(fmt2(3.17159), "3.17");
    }
}
