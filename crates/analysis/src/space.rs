//! Log space management accounting (§5.3).
//!
//! "There are at least four functions that can be combined to develop a
//! space management strategy": client checkpoints (bound node-recovery
//! log), periodic dumps (bound media-recovery log), spooling to offline
//! storage, and compression. This model compares strategies by the §5.3
//! cost measures: online storage, offline storage, and the data volumes
//! read by node and media recovery.

/// A space management strategy (a combination of the §5.3 functions).
#[derive(Clone, Debug, PartialEq)]
pub struct SpacePolicy {
    /// Hours between database dumps (`None`: no dumps — the log simply
    /// accumulates, the "simple strategy" of §4.1).
    pub dump_interval_hours: Option<f64>,
    /// Hours between client recovery-manager checkpoints.
    pub checkpoint_interval_hours: f64,
    /// Whether log data older than the dump horizon is spooled offline
    /// (tape) rather than kept online.
    pub spool_offline: bool,
    /// Compression ratio applied to spooled/retained data (1.0 = none).
    pub compression_ratio: f64,
    /// Days of log history that must remain recoverable (for disasters
    /// and audits).
    pub retention_days: f64,
}

impl SpacePolicy {
    /// §4.1's baseline: daily dumps, log accumulates online between dumps.
    #[must_use]
    pub fn daily_dump_online() -> Self {
        SpacePolicy {
            dump_interval_hours: Some(24.0),
            checkpoint_interval_hours: 1.0,
            spool_offline: false,
            compression_ratio: 1.0,
            retention_days: 7.0,
        }
    }
}

/// Storage and recovery costs of a policy for a server ingesting
/// `gb_per_day` of log data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceReport {
    /// Online log storage needed (GB).
    pub online_gb: f64,
    /// Offline (spooled) storage needed for the retention window (GB).
    pub offline_gb: f64,
    /// Log data scanned by node recovery (GB) — bounded by the checkpoint
    /// interval.
    pub node_recovery_gb: f64,
    /// Log data read for media recovery (GB) — everything since the last
    /// dump (or the whole retained log without dumps).
    pub media_recovery_gb: f64,
}

impl SpacePolicy {
    /// Evaluate the policy for a server ingesting `gb_per_day`.
    #[must_use]
    pub fn report(&self, gb_per_day: f64) -> SpaceReport {
        let horizon_days = self
            .dump_interval_hours
            .map_or(self.retention_days, |h| h / 24.0);
        let live_gb = gb_per_day * horizon_days;
        let retained_gb = gb_per_day * self.retention_days / self.compression_ratio;
        let (online_gb, offline_gb) = if self.spool_offline {
            (live_gb, retained_gb)
        } else {
            (retained_gb.max(live_gb), 0.0)
        };
        SpaceReport {
            online_gb,
            offline_gb,
            node_recovery_gb: gb_per_day * self.checkpoint_interval_hours / 24.0,
            media_recovery_gb: live_gb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAILY_GB: f64 = 10.0; // §4.1: ~10 GB/server/day

    #[test]
    fn baseline_daily_dumps() {
        let r = SpacePolicy::daily_dump_online().report(DAILY_GB);
        // One day of log between dumps must be read for media recovery.
        assert!((r.media_recovery_gb - 10.0).abs() < 1e-9);
        // Without spooling, the whole retention window sits online.
        assert!((r.online_gb - 70.0).abs() < 1e-9);
        assert_eq!(r.offline_gb, 0.0);
        // Hourly checkpoints bound node recovery to ~0.42 GB.
        assert!(r.node_recovery_gb < 0.5);
    }

    #[test]
    fn spooling_moves_storage_offline() {
        let mut p = SpacePolicy::daily_dump_online();
        p.spool_offline = true;
        let r = p.report(DAILY_GB);
        assert!(
            (r.online_gb - 10.0).abs() < 1e-9,
            "only the live day online"
        );
        assert!((r.offline_gb - 70.0).abs() < 1e-9);
    }

    #[test]
    fn compression_shrinks_retention() {
        let mut p = SpacePolicy::daily_dump_online();
        p.spool_offline = true;
        p.compression_ratio = 2.0;
        let r = p.report(DAILY_GB);
        assert!((r.offline_gb - 35.0).abs() < 1e-9);
    }

    #[test]
    fn no_dumps_means_whole_log_for_media_recovery() {
        let p = SpacePolicy {
            dump_interval_hours: None,
            checkpoint_interval_hours: 1.0,
            spool_offline: false,
            compression_ratio: 1.0,
            retention_days: 7.0,
        };
        let r = p.report(DAILY_GB);
        assert!((r.media_recovery_gb - 70.0).abs() < 1e-9);
        assert!((r.online_gb - 70.0).abs() < 1e-9);
    }

    #[test]
    fn more_frequent_dumps_cut_media_recovery() {
        let mut p = SpacePolicy::daily_dump_online();
        p.dump_interval_hours = Some(6.0);
        let r = p.report(DAILY_GB);
        assert!((r.media_recovery_gb - 2.5).abs() < 1e-9);
    }
}
