//! Statement-level control-flow graph over the token stream.
//!
//! The lexical rules see token order; the dataflow rules (see
//! [`crate::dataflow`]) need *path* order: "is this guard still live on
//! the branch that reaches the disk force?" is a question about the CFG,
//! not the text. This module parses one function body into basic blocks
//! split at `if`/`else`, `match` arms, `loop`/`while`/`for`, `return`,
//! `break`/`continue`, and the `?` operator.
//!
//! The builder is deliberately approximate in the safe direction for a
//! forward *may* analysis: where the token grammar is ambiguous it adds
//! edges rather than dropping them (e.g. every loop header gets an edge
//! to the loop's after-block, as if a `break` may always fire), so a
//! hazard on a real path is never hidden. Braced subexpressions it
//! cannot attribute to control flow — closure bodies, struct literals —
//! are kept inside their statement and treated as straight-line code.
//!
//! Each braced scope that closes appends a synthetic [`StmtKind::ScopeExit`]
//! statement so the engine can model guard drops at end-of-scope.

use crate::source::{FnSpan, SourceFile};

/// Index of a basic block inside its [`Cfg`].
pub type BlockId = usize;

/// What a CFG statement is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// An ordinary statement: tokens `[lo, hi)` of the file stream.
    Plain,
    /// Synthetic end-of-scope marker: `lo` is the opening `{` token of
    /// the scope that just closed, `hi` its matching `}`. Bindings
    /// declared strictly inside die here.
    ScopeExit,
}

/// One statement in a basic block.
#[derive(Clone, Copy, Debug)]
pub struct Stmt {
    /// Statement kind (plain vs. synthetic scope exit).
    pub kind: StmtKind,
    /// First token index (for `ScopeExit`: the opening brace).
    pub lo: usize,
    /// One past the last token (for `ScopeExit`: the closing brace).
    pub hi: usize,
}

/// A basic block: straight-line statements plus successor edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements executed in order.
    pub stmts: Vec<Stmt>,
    /// Successor blocks (unordered; duplicates possible but harmless).
    pub succs: Vec<BlockId>,
}

/// Control-flow graph of one function body.
pub struct Cfg {
    /// All blocks; `blocks[entry]` is the function entry.
    pub blocks: Vec<Block>,
    /// Entry block id.
    pub entry: BlockId,
    /// Distinguished empty exit block: `return`, `?` error paths, and
    /// normal fall-off all lead here.
    pub exit: BlockId,
}

/// Item keywords that introduce a nested item inside a function body;
/// their bodies are skipped (nested `fn`s get their own CFG).
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "mod",
    "trait",
    "use",
    "static",
    "type",
    "macro_rules",
];

impl Cfg {
    /// Build the CFG for the body of `f` in `file`.
    #[must_use]
    pub fn build(file: &SourceFile, f: &FnSpan) -> Cfg {
        let mut b = Builder {
            file,
            blocks: vec![Block::default(), Block::default()],
            exit: 1,
            loops: Vec::new(),
        };
        let end = b.region(f.open + 1, f.close, 0);
        if let Some(last) = end {
            b.edge(last, 1);
        }
        Cfg {
            blocks: b.blocks,
            entry: 0,
            exit: 1,
        }
    }

    /// Blocks reachable from `entry`, in BFS order.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut queue = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = queue.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    queue.push(s);
                }
            }
        }
        seen
    }
}

struct Builder<'a> {
    file: &'a SourceFile,
    blocks: Vec<Block>,
    exit: BlockId,
    /// Innermost-last stack of `(continue_target, break_target)`.
    loops: Vec<(BlockId, BlockId)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push_stmt(&mut self, block: BlockId, kind: StmtKind, lo: usize, hi: usize) {
        if kind == StmtKind::Plain && lo >= hi {
            return;
        }
        self.blocks[block].stmts.push(Stmt { kind, lo, hi });
    }

    fn tok_is(&self, i: usize, s: &str) -> bool {
        self.file.tokens.get(i).is_some_and(|t| t.is(s))
    }

    /// Token index of the first `{` at paren/bracket depth 0 in `[i, hi)`.
    fn find_body_brace(&self, i: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in i..hi {
            let t = &self.file.tokens[j];
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if depth == 0 && t.is("{") {
                return Some(j);
            }
        }
        None
    }

    /// Build the region `[lo, hi)` starting in `cur`. Returns the block
    /// normal flow falls out of, or `None` when every path diverges.
    fn region(&mut self, lo: usize, hi: usize, cur: BlockId) -> Option<BlockId> {
        let mut cur = Some(cur);
        let mut i = lo;
        while i < hi {
            // Dead code after a diverging statement still gets a block so
            // its tokens are modeled; it simply has no predecessors.
            let blk = match cur {
                Some(b) => b,
                None => {
                    let b = self.new_block();
                    cur = Some(b);
                    b
                }
            };
            let t = &self.file.tokens[i];
            if t.is(";") || t.is(",") {
                i += 1;
                continue;
            }
            // Loop label: `'name : loop`.
            if t.text.starts_with('\'') && self.tok_is(i + 1, ":") {
                i += 2;
                continue;
            }
            if t.is("if") {
                let (join, ni) = self.if_chain(i, hi, blk);
                cur = join;
                i = ni;
                continue;
            }
            if t.is("match") {
                let (join, ni) = self.match_expr(i, hi, blk);
                cur = join;
                i = ni;
                continue;
            }
            if t.is("loop") || t.is("while") || t.is("for") {
                let (join, ni) = self.loop_stmt(i, hi, blk);
                cur = join;
                i = ni;
                continue;
            }
            if t.is("return") {
                let end = self.stmt_end(i, hi);
                self.push_stmt(blk, StmtKind::Plain, i, end);
                self.edge(blk, self.exit);
                cur = None;
                i = end + 1;
                continue;
            }
            if t.is("break") || t.is("continue") {
                let end = self.stmt_end(i, hi);
                self.push_stmt(blk, StmtKind::Plain, i, end);
                let target = match (self.loops.last(), t.is("break")) {
                    (Some(&(_, after)), true) => after,
                    (Some(&(header, _)), false) => header,
                    (None, _) => self.exit, // malformed input; stay safe
                };
                self.edge(blk, target);
                cur = None;
                i = end + 1;
                continue;
            }
            // Nested item: skip its tokens (nested fns get their own CFG).
            if ITEM_KEYWORDS.contains(&t.text.as_str()) {
                i = self.skip_item(i, hi);
                continue;
            }
            // Bare scoping block.
            if t.is("{") {
                if let Some(close) = self.file.matching_brace(i) {
                    let end = self.braced_region(i, close.min(hi), blk);
                    cur = end;
                    i = close + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            // Plain (or `let`) statement.
            let (next, ni) = self.statement(i, hi, blk);
            cur = next;
            i = ni;
        }
        cur
    }

    /// `[open, close]` is a braced body: run it in a fresh block hanging
    /// off `cur`, append the `ScopeExit`, return the fall-through block.
    fn braced_region(&mut self, open: usize, close: usize, cur: BlockId) -> Option<BlockId> {
        let entry = self.new_block();
        self.edge(cur, entry);
        let end = self.region(open + 1, close, entry);
        if let Some(e) = end {
            self.push_stmt(e, StmtKind::ScopeExit, open, close);
        }
        end
    }

    /// End (exclusive) of a simple statement: the first `;` at
    /// paren/bracket depth 0, skipping braced subexpressions.
    fn stmt_end(&self, i: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < hi {
            let t = &self.file.tokens[j];
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if depth == 0 && t.is(";") {
                return j;
            } else if t.is("{") {
                match self.file.matching_brace(j) {
                    Some(c) => j = c,
                    None => return hi,
                }
            }
            j += 1;
        }
        hi
    }

    /// Skip a nested item starting at token `i` (keyword position).
    fn skip_item(&self, i: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < hi {
            let t = &self.file.tokens[j];
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if depth == 0 && t.is(";") {
                return j + 1;
            } else if depth == 0 && t.is("{") {
                return match self.file.matching_brace(j) {
                    Some(c) => c + 1,
                    None => hi,
                };
            }
            j += 1;
        }
        hi
    }

    /// One plain/`let` statement starting at `i` in block `cur`. Splits
    /// at embedded `?` (error edge to exit), statement-position
    /// `if`/`match` expressions, and `let … else` diverging blocks.
    fn statement(&mut self, i: usize, hi: usize, cur: BlockId) -> (Option<BlockId>, usize) {
        let mut cur = cur;
        let mut start = i;
        let mut depth = 0i32;
        let mut j = i;
        let is_let = self.tok_is(i, "let");
        while j < hi {
            let t = &self.file.tokens[j];
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if t.is(";") && depth == 0 {
                self.push_stmt(cur, StmtKind::Plain, start, j);
                return (Some(cur), j + 1);
            } else if t.is("?") && !self.tok_is(j + 1, "Sized") {
                // `expr?`: split the statement; the error path exits.
                self.push_stmt(cur, StmtKind::Plain, start, j + 1);
                let next = self.new_block();
                self.edge(cur, next);
                self.edge(cur, self.exit);
                cur = next;
                start = j + 1;
            } else if depth == 0 && (t.is("if") || t.is("match")) {
                // Control flow embedded in statement position
                // (`let x = if c { a } else { b };`).
                self.push_stmt(cur, StmtKind::Plain, start, j);
                let (join, nj) = if t.is("if") {
                    self.if_chain(j, hi, cur)
                } else {
                    self.match_expr(j, hi, cur)
                };
                let resumed = match join {
                    Some(b) => b,
                    None => self.new_block(), // all branches diverged
                };
                cur = resumed;
                start = nj;
                j = nj;
                // A trailing `;` closes the statement.
                if self.tok_is(j, ";") {
                    return (join.map(|_| cur), j + 1);
                }
                continue;
            } else if depth == 0 && is_let && t.is("else") && self.tok_is(j + 1, "{") {
                // `let PAT = expr else { diverge };`
                self.push_stmt(cur, StmtKind::Plain, start, j);
                if let Some(close) = self.file.matching_brace(j + 1) {
                    if let Some(end) = self.braced_region(j + 1, close, cur) {
                        // A let-else block must diverge; if our model
                        // found a fall-through, route it to exit.
                        self.edge(end, self.exit);
                    }
                    let after = self.new_block();
                    self.edge(cur, after);
                    cur = after;
                    start = close + 1;
                    j = close + 1;
                    continue;
                }
            } else if t.is("{") {
                // Opaque braced subexpression (struct literal, closure
                // body): straight-line as far as this CFG is concerned.
                match self.file.matching_brace(j) {
                    Some(c) => j = c,
                    None => break,
                }
            }
            j += 1;
        }
        let end = j.min(hi);
        self.push_stmt(cur, StmtKind::Plain, start, end);
        (Some(cur), end)
    }

    /// `if cond { … } [else if …]* [else { … }]` starting at `i`.
    /// Returns the join block (None when every branch diverges) and the
    /// index just past the chain.
    fn if_chain(&mut self, i: usize, hi: usize, cur: BlockId) -> (Option<BlockId>, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi) else {
            // Unparseable; treat the rest as one opaque statement.
            self.push_stmt(cur, StmtKind::Plain, i, hi);
            return (Some(cur), hi);
        };
        let Some(close) = self.file.matching_brace(open) else {
            self.push_stmt(cur, StmtKind::Plain, i, hi);
            return (Some(cur), hi);
        };
        // The condition (with its `if`) runs in the current block.
        self.push_stmt(cur, StmtKind::Plain, i, open);
        let then_end = self.braced_region(open, close, cur);
        let mut arm_ends = vec![then_end];
        let mut k = close + 1;
        let mut has_else = false;
        if self.tok_is(k, "else") {
            has_else = true;
            if self.tok_is(k + 1, "if") {
                let (else_end, nk) = self.if_chain(k + 1, hi, cur);
                arm_ends.push(else_end);
                k = nk;
            } else if self.tok_is(k + 1, "{") {
                if let Some(ec) = self.file.matching_brace(k + 1) {
                    arm_ends.push(self.braced_region(k + 1, ec, cur));
                    k = ec + 1;
                } else {
                    has_else = false;
                }
            } else {
                has_else = false;
            }
        }
        let live: Vec<BlockId> = arm_ends.into_iter().flatten().collect();
        if live.is_empty() && has_else {
            return (None, k);
        }
        let join = self.new_block();
        if !has_else {
            self.edge(cur, join); // the condition may be false
        }
        for b in live {
            self.edge(b, join);
        }
        (Some(join), k)
    }

    /// `match scrutinee { pat => body, … }` starting at `i`.
    fn match_expr(&mut self, i: usize, hi: usize, cur: BlockId) -> (Option<BlockId>, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi) else {
            self.push_stmt(cur, StmtKind::Plain, i, hi);
            return (Some(cur), hi);
        };
        let Some(close) = self.file.matching_brace(open) else {
            self.push_stmt(cur, StmtKind::Plain, i, hi);
            return (Some(cur), hi);
        };
        // The scrutinee (with its `match`) runs in the current block.
        self.push_stmt(cur, StmtKind::Plain, i, open);
        let mut arm_ends: Vec<Option<BlockId>> = Vec::new();
        let mut k = open + 1;
        while k < close {
            if self.tok_is(k, ",") || self.tok_is(k, ";") {
                k += 1;
                continue;
            }
            // Pattern (+ optional guard) up to `=>`.
            let pat_start = k;
            let mut depth = 0i32;
            let mut arrow = None;
            let mut p = k;
            while p < close {
                let t = &self.file.tokens[p];
                if t.is("(") || t.is("[") {
                    depth += 1;
                } else if t.is(")") || t.is("]") {
                    depth -= 1;
                } else if t.is("{") {
                    match self.file.matching_brace(p) {
                        Some(c) => p = c,
                        None => break,
                    }
                } else if depth == 0 && t.is("=") && self.tok_is(p + 1, ">") {
                    arrow = Some(p);
                    break;
                }
                p += 1;
            }
            let Some(arrow) = arrow else { break };
            let arm = self.new_block();
            self.edge(cur, arm);
            self.push_stmt(arm, StmtKind::Plain, pat_start, arrow);
            k = arrow + 2;
            if self.tok_is(k, "{") {
                if let Some(bc) = self.file.matching_brace(k) {
                    arm_ends.push(self.braced_region(k, bc, arm));
                    k = bc + 1;
                    continue;
                }
            }
            // Expression arm: runs until `,` at depth 0 or the match end.
            let expr_start = k;
            let mut depth = 0i32;
            let mut e = k;
            while e < close {
                let t = &self.file.tokens[e];
                if t.is("(") || t.is("[") {
                    depth += 1;
                } else if t.is(")") || t.is("]") {
                    depth -= 1;
                } else if t.is("{") {
                    match self.file.matching_brace(e) {
                        Some(c) => e = c,
                        None => break,
                    }
                } else if depth == 0 && t.is(",") {
                    break;
                }
                e += 1;
            }
            let diverges = self.tok_is(expr_start, "return")
                || self.tok_is(expr_start, "break")
                || self.tok_is(expr_start, "continue");
            let mut end = self.region(expr_start, e, arm);
            if diverges {
                end = None;
            }
            arm_ends.push(end);
            k = e + 1;
        }
        let live: Vec<BlockId> = arm_ends.iter().copied().flatten().collect();
        if live.is_empty() && !arm_ends.is_empty() {
            return (None, close + 1);
        }
        let join = self.new_block();
        if arm_ends.is_empty() {
            self.edge(cur, join); // empty match (uninhabited scrutinee)
        }
        for b in live {
            self.edge(b, join);
        }
        (Some(join), close + 1)
    }

    /// `loop { … }`, `while cond { … }`, `for pat in iter { … }`.
    fn loop_stmt(&mut self, i: usize, hi: usize, cur: BlockId) -> (Option<BlockId>, usize) {
        let Some(open) = self.find_body_brace(i + 1, hi) else {
            self.push_stmt(cur, StmtKind::Plain, i, hi);
            return (Some(cur), hi);
        };
        let Some(close) = self.file.matching_brace(open) else {
            self.push_stmt(cur, StmtKind::Plain, i, hi);
            return (Some(cur), hi);
        };
        let header = self.new_block();
        self.edge(cur, header);
        // The condition / iterator expression runs in the header.
        self.push_stmt(header, StmtKind::Plain, i, open);
        let after = self.new_block();
        // Conservative: every loop may exit (a `while` whose condition is
        // false, a `loop` whose body breaks before we model it).
        self.edge(header, after);
        self.loops.push((header, after));
        let body_entry = self.new_block();
        self.edge(header, body_entry);
        let end = self.region(open + 1, close, body_entry);
        self.loops.pop();
        if let Some(e) = end {
            self.push_stmt(e, StmtKind::ScopeExit, open, close);
            self.edge(e, header); // back edge
        }
        (Some(after), close + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(body: &str) -> (SourceFile, Cfg) {
        let src = format!("fn f() {{ {body} }}");
        let file = SourceFile::parse("x.rs", &src);
        let f = file.fn_named("f").expect("fn f").clone();
        let cfg = Cfg::build(&file, &f);
        (file, cfg)
    }

    /// Number of `Plain` statements across all blocks.
    fn plain_count(cfg: &Cfg) -> usize {
        cfg.blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter(|s| s.kind == StmtKind::Plain)
            .count()
    }

    /// All blocks that contain statements are reachable from entry.
    fn assert_reachable(cfg: &Cfg) {
        let seen = cfg.reachable();
        for (i, b) in cfg.blocks.iter().enumerate() {
            if !b.stmts.is_empty() {
                assert!(
                    seen[i],
                    "block {i} with {} stmts unreachable",
                    b.stmts.len()
                );
            }
        }
        assert!(seen[cfg.exit], "exit unreachable");
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = cfg_for("let a = 1; let b = a; g(b);");
        assert_eq!(plain_count(&cfg), 3);
        assert_reachable(&cfg);
        // Entry flows straight to exit.
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_splits_and_joins() {
        let (_, cfg) = cfg_for("let a = 1; if a > 0 { g(a); } else { h(a); } k();");
        assert_reachable(&cfg);
        // Entry block: let + cond, two branch successors.
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
        assert_eq!(plain_count(&cfg), 5);
    }

    #[test]
    fn if_without_else_has_skip_edge() {
        let (_, cfg) = cfg_for("if a { g(); } k();");
        assert_reachable(&cfg);
        let entry_succs = &cfg.blocks[cfg.entry].succs;
        assert_eq!(entry_succs.len(), 2, "then-branch and skip edge");
    }

    #[test]
    fn match_arms_each_get_a_block() {
        let (_, cfg) = cfg_for("match x { A => g(), B { y } => h(y), _ => {} } k();");
        assert_reachable(&cfg);
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 3, "three arms");
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let (_, cfg) = cfg_for("let a = g()?; h(a);");
        assert_reachable(&cfg);
        assert!(
            cfg.blocks[cfg.entry].succs.contains(&cfg.exit),
            "error path of `?` reaches exit: {:?}",
            cfg.blocks[cfg.entry].succs
        );
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn return_diverges() {
        let (_, cfg) = cfg_for("if a { return 1; } g();");
        assert_reachable(&cfg);
        // The then-branch ends at exit, not at the join.
        let then_entry = cfg.blocks[cfg.entry].succs[0];
        assert!(cfg.blocks[then_entry].succs.contains(&cfg.exit));
    }

    #[test]
    fn loops_have_back_edges_and_exits() {
        let (_, cfg) = cfg_for("while a { g(); } for x in xs { h(x); } loop { break; } k();");
        assert_reachable(&cfg);
        // Some block has a back edge to a block with a smaller id.
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s < i && s != cfg.exit));
        assert!(has_back_edge, "loop back edge missing");
    }

    #[test]
    fn break_targets_loop_after_block() {
        let (_, cfg) = cfg_for("loop { if done { break; } step(); } k();");
        assert_reachable(&cfg);
    }

    #[test]
    fn scope_exit_markers_emitted() {
        let (_, cfg) = cfg_for("{ let g = m.lock(); g.touch(); } io();");
        let scope_exits = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter(|s| s.kind == StmtKind::ScopeExit)
            .count();
        assert_eq!(scope_exits, 1);
        assert_reachable(&cfg);
    }

    #[test]
    fn let_else_models_divergence() {
        let (_, cfg) = cfg_for("let Some(x) = y else { return; }; g(x);");
        assert_reachable(&cfg);
    }

    #[test]
    fn nested_items_are_skipped() {
        let (_, cfg) = cfg_for("fn nested() { body(); } g();");
        // Only `g()` is a statement of the outer fn.
        assert_eq!(plain_count(&cfg), 1);
        assert_reachable(&cfg);
    }

    #[test]
    fn rhs_if_expression_splits() {
        let (_, cfg) = cfg_for("let x = if c { 1 } else { 2 }; g(x);");
        assert_reachable(&cfg);
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn labelled_loops_parse() {
        let (_, cfg) = cfg_for("'outer: loop { if a { break; } continue; } g();");
        assert_reachable(&cfg);
    }

    #[test]
    fn struct_literals_and_closures_stay_inline() {
        let (_, cfg) =
            cfg_for("let s = Foo { a: 1, b: 2 }; let f = xs.iter().map(|x| { x + 1 }); g(s, f);");
        assert_eq!(plain_count(&cfg), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }
}
