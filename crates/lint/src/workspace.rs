//! Workspace driver: locates the repo root, loads the target files for
//! each rule, runs the catalog — lexical and dataflow rules in one pass
//! — and applies `lint.allow`. Every rule is timed individually
//! (`dlog-lint --timing`) so the tier-1 gate's latency budget is
//! observable per rule.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::allow::Allowlist;
use crate::callgraph::CallGraph;
use crate::dataflow::{self, DataflowRule};
use crate::report::{Report, RuleTiming, Violation};
use crate::rules::{self, Rule};
use crate::source::SourceFile;
use crate::summary::{self, Summaries};
use crate::threadsafe;

/// Crates whose `src/` trees must be panic-free (rule `panic-freedom`).
/// `archive` runs in the server idle loop (`archive_tick`), so it is a
/// hot-path crate too.
pub const HOT_PATH_CRATES: &[&str] = &[
    "crates/server/src",
    "crates/net/src",
    "crates/storage/src",
    "crates/append-forest/src",
    "crates/obs/src",
    "crates/mc/src",
    "crates/archive/src",
];

/// Files scanned for `.lock()` acquisition ordering (rule `lock-order`).
/// Directories contribute every `.rs` file beneath them.
pub const LOCK_ORDER_TARGETS: &[&str] = &[
    "crates/net/src/mem.rs",
    "crates/storage/src/nvram.rs",
    "crates/archive/src/object_store.rs",
    "crates/server/src",
];

/// Directories scanned for the §4.2 write-before-ack heuristic.
pub const ACK_AFTER_FORCE_TARGETS: &[&str] = &["crates/server/src", "crates/storage/src"];

/// Crates swept by the thread-safety layer (`shared-field-lockset`,
/// `atomics-ordering`): the PR 8 concurrency surface — mem.rs inbox /
/// sleeper state, pool.rs checkout, the runner stop flag, udp.rs
/// promiscuous mode — plus everything the sharded server loop touches.
/// Only already-loaded files are consulted, so fixture workspaces
/// without all of these crates still lint.
pub const THREADSAFE_TARGETS: &[&str] = &[
    "crates/server/src",
    "crates/net/src",
    "crates/storage/src",
    "crates/obs/src",
    "crates/alloc/src",
];

/// Walk up from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
///
/// # Errors
/// Returns a message when no ancestor is a workspace root.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml with [workspace]) above {}",
                start.display()
            ));
        }
    }
}

/// Loaded and parsed source files, keyed by workspace-relative path.
struct Loader<'a> {
    root: &'a Path,
    files: BTreeMap<String, SourceFile>,
}

impl<'a> Loader<'a> {
    fn new(root: &'a Path) -> Loader<'a> {
        Loader {
            root,
            files: BTreeMap::new(),
        }
    }

    fn load(&mut self, rel: &str) -> Result<&SourceFile, String> {
        if !self.files.contains_key(rel) {
            let text = fs::read_to_string(self.root.join(rel))
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            self.files
                .insert(rel.to_string(), SourceFile::parse(rel, &text));
        }
        Ok(&self.files[rel])
    }

    /// Every `.rs` file under `rel` (or `rel` itself), sorted.
    fn expand(&self, rel: &str) -> Result<Vec<String>, String> {
        let abs = self.root.join(rel);
        if abs.is_file() {
            return Ok(vec![rel.to_string()]);
        }
        let mut out = Vec::new();
        walk_rs(&abs, &mut out).map_err(|e| format!("cannot walk {rel}: {e}"))?;
        let prefix = self.root.to_path_buf();
        let mut rels: Vec<String> = out
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&prefix)
                    .ok()
                    .map(|r| r.to_string_lossy().replace('\\', "/"))
            })
            .collect();
        rels.sort();
        Ok(rels)
    }

    /// Expand, dedup, and load a list of target prefixes.
    fn load_targets(&mut self, targets: &[&str]) -> Result<Vec<String>, String> {
        let mut files = Vec::new();
        for target in targets {
            files.extend(self.expand(target)?);
        }
        files.sort();
        files.dedup();
        for rel in &files {
            self.load(rel)?;
        }
        Ok(files)
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The flow-sensitive rules, run on the CFG/dataflow engine.
fn dataflow_rules() -> [&'static dyn DataflowRule; 4] {
    [
        &rules::blocking_under_lock::BlockingUnderLock,
        &rules::lsn_checked_arith::LsnCheckedArith,
        &rules::seal_typestate::SealTypestate,
        &rules::result_swallow::ResultSwallow,
    ]
}

/// The lexical per-file rules (see [`Rule`]).
fn lexical_rules() -> [&'static dyn Rule; 2] {
    [&rules::PanicFreedom, &rules::AckAfterForce]
}

/// Load every `crates/*/src` tree, compute the crate dependency
/// closure from the workspace manifests, and build the call graph plus
/// bottom-up summaries over it.
fn interprocedural_pass(
    root: &Path,
    loader: &mut Loader<'_>,
    allows: &Allowlist,
) -> Result<(CallGraph, Summaries), String> {
    let mut targets: Vec<String> = Vec::new();
    for entry in
        fs::read_dir(root.join("crates")).map_err(|e| format!("cannot list crates/: {e}"))?
    {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().join("src").is_dir() {
            targets.push(format!(
                "crates/{}/src",
                entry.file_name().to_string_lossy()
            ));
        }
    }
    targets.sort();
    let target_refs: Vec<&str> = targets.iter().map(String::as_str).collect();
    let rels = loader.load_targets(&target_refs)?;
    let files: Vec<&SourceFile> = rels.iter().map(|r| &loader.files[r.as_str()]).collect();
    let deps = dep_closure(root)?;
    let graph = CallGraph::build(&files, &deps);
    let summaries = summary::compute(&graph, &files, allows);
    Ok((graph, summaries))
}

/// The already-loaded files under [`THREADSAFE_TARGETS`], in path order.
fn threadsafe_files<'a>(loader: &'a Loader<'_>) -> Vec<&'a SourceFile> {
    loader
        .files
        .iter()
        .filter(|(rel, _)| THREADSAFE_TARGETS.iter().any(|t| rel.starts_with(t)))
        .map(|(_, f)| f)
        .collect()
}

/// Build the thread-safety access map alone — the `--race-report`
/// subcommand's entry point. `deep` lifts the interprocedural
/// entry-lockset round cap.
///
/// # Errors
/// Returns a message when sources or manifests cannot be read or
/// `lint.allow` is malformed.
pub fn build_race_report(root: &Path, deep: bool) -> Result<String, String> {
    let allow_text = fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allows = Allowlist::parse(&allow_text)?;
    let mut loader = Loader::new(root);
    let (graph, _) = interprocedural_pass(root, &mut loader, &allows)?;
    let rounds = if deep {
        None
    } else {
        Some(threadsafe::DEFAULT_ROUNDS)
    };
    let ts = threadsafe::analyze(&threadsafe_files(&loader), &graph, rounds);
    Ok(ts.race_report_json())
}

/// Build the interprocedural structures alone — the `--callgraph`
/// subcommand's entry point.
///
/// # Errors
/// Returns a message when sources or manifests cannot be read or
/// `lint.allow` is malformed.
pub fn build_callgraph(root: &Path) -> Result<(CallGraph, Summaries), String> {
    let allow_text = fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allows = Allowlist::parse(&allow_text)?;
    let mut loader = Loader::new(root);
    interprocedural_pass(root, &mut loader, &allows)
}

/// Per-crate dependency closure (crate *directory* names, including the
/// crate itself), parsed from each `crates/*/Cargo.toml` — package
/// names under `[package]`, direct deps under `[dependencies]`, then a
/// transitive closure. Crates without a manifest (fixture workspaces)
/// are simply absent, which the call graph treats as "may call any".
fn dep_closure(root: &Path) -> Result<BTreeMap<String, BTreeSet<String>>, String> {
    let mut manifests: BTreeMap<String, String> = BTreeMap::new();
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    for entry in
        fs::read_dir(root.join("crates")).map_err(|e| format!("cannot list crates/: {e}"))?
    {
        let entry = entry.map_err(|e| e.to_string())?;
        let dir = entry.file_name().to_string_lossy().to_string();
        let Ok(text) = fs::read_to_string(entry.path().join("Cargo.toml")) else {
            continue;
        };
        let mut section = "";
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                section = line;
            } else if section == "[package]" && line.starts_with("name") {
                if let Some(name) = line.split('"').nth(1) {
                    pkg_to_dir.insert(name.to_string(), dir.clone());
                }
            }
        }
        manifests.insert(dir, text);
    }
    let mut closure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (dir, text) in &manifests {
        let mut deps: BTreeSet<String> = BTreeSet::new();
        deps.insert(dir.clone());
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
            } else if in_deps && !line.is_empty() && !line.starts_with('#') {
                if let Some(name) = line.split(['=', ' ', '\t', '.']).next() {
                    if let Some(d) = pkg_to_dir.get(name.trim()) {
                        deps.insert(d.clone());
                    }
                }
            }
        }
        closure.insert(dir.clone(), deps);
    }
    // Transitive closure to a fixpoint (the graph is tiny).
    loop {
        let mut changed = false;
        let dirs: Vec<String> = closure.keys().cloned().collect();
        for dir in &dirs {
            let cur = closure[dir].clone();
            let mut next = cur.clone();
            for d in &cur {
                if let Some(dd) = closure.get(d) {
                    next.extend(dd.iter().cloned());
                }
            }
            if next.len() != cur.len() {
                closure.insert(dir.clone(), next);
                changed = true;
            }
        }
        if !changed {
            return Ok(closure);
        }
    }
}

/// Run the full rule catalog — lexical and dataflow — on the workspace
/// at `root`, in one pass.
///
/// # Errors
/// Returns a message when a target file cannot be read or `lint.allow`
/// is malformed (including entries naming unknown rules); rule findings
/// are *not* errors — they land in the returned [`Report`].
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_with(root, false)
}

/// [`lint_workspace`] with the interprocedural depth of the
/// thread-safety layer selectable: `deep` lifts the entry-lockset
/// fixpoint round cap (the nightly lane's `--deep`).
///
/// # Errors
/// Same as [`lint_workspace`].
pub fn lint_workspace_with(root: &Path, deep: bool) -> Result<Report, String> {
    let allow_text = fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allows = Allowlist::parse(&allow_text)?;
    for e in allows.entries() {
        if !rules::ALL_RULES.contains(&e.rule.as_str()) {
            return Err(format!(
                "lint.allow:{}: unknown rule `{}` (known: {})",
                e.line,
                e.rule,
                rules::ALL_RULES.join(", ")
            ));
        }
    }
    let mut loader = Loader::new(root);
    let mut raw: Vec<Violation> = Vec::new();
    let mut timings: Vec<RuleTiming> = Vec::new();

    // Rule 1: wire exhaustiveness.
    let t0 = Instant::now();
    loader.load("crates/net/src/wire.rs")?;
    loader.load("crates/net/tests/wire_props.rs")?;
    raw.extend(rules::wire_exhaustive::check(
        &loader.files["crates/net/src/wire.rs"],
        &loader.files["crates/net/tests/wire_props.rs"],
    ));
    timings.push(RuleTiming::since(rules::wire_exhaustive::RULE, t0));

    // Rule 2: lock ordering (cross-file acquisition graph).
    let t0 = Instant::now();
    let lock_files = loader.load_targets(LOCK_ORDER_TARGETS)?;
    let lock_sources: Vec<&SourceFile> = lock_files.iter().map(|r| &loader.files[r]).collect();
    raw.extend(rules::lock_order::check(&lock_sources));
    timings.push(RuleTiming::since(rules::lock_order::RULE, t0));

    // Lexical per-file rules: panic-freedom, ack-after-force.
    for rule in lexical_rules() {
        let t0 = Instant::now();
        for rel in loader.load_targets(rule.targets())? {
            raw.extend(rule.check_file(&loader.files[rel.as_str()]));
        }
        timings.push(RuleTiming::since(rule.name(), t0));
    }

    // Rule 5: Status / PROTOCOL.md parity.
    let t0 = Instant::now();
    let doc_rel = "docs/PROTOCOL.md";
    let doc_text = fs::read_to_string(root.join(doc_rel))
        .map_err(|e| format!("cannot read {doc_rel}: {e}"))?;
    raw.extend(rules::status_parity::check(
        &loader.files["crates/net/src/wire.rs"],
        doc_rel,
        &doc_text,
    ));
    timings.push(RuleTiming::since(rules::status_parity::RULE, t0));

    // Rule 6: #![forbid(unsafe_code)] on every first-party crate root.
    let t0 = Instant::now();
    let mut crate_roots = Vec::new();
    for entry in
        fs::read_dir(root.join("crates")).map_err(|e| format!("cannot list crates/: {e}"))?
    {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().join("src/lib.rs").is_file() {
            crate_roots.push(format!(
                "crates/{}/src/lib.rs",
                entry.file_name().to_string_lossy()
            ));
        }
    }
    crate_roots.sort();
    for rel in &crate_roots {
        loader.load(rel)?;
        raw.extend(rules::forbid_unsafe::check(&loader.files[rel.as_str()]));
    }
    timings.push(RuleTiming::since(rules::forbid_unsafe::RULE, t0));

    // Flow-sensitive rules on the dataflow engine, one timed pass each.
    for rule in dataflow_rules() {
        let t0 = Instant::now();
        for rel in loader.load_targets(rule.targets())? {
            raw.extend(dataflow::run_rule(rule, &loader.files[rel.as_str()]));
        }
        timings.push(RuleTiming::since(rule.rule(), t0));
    }

    // Interprocedural layer: workspace call graph + bottom-up summaries
    // (see `callgraph`/`summary`), then the promoted rules and the two
    // summary-based rules.
    let t0 = Instant::now();
    let (graph, summaries) = interprocedural_pass(root, &mut loader, &allows)?;
    timings.push(RuleTiming::since("callgraph", t0));

    let t0 = Instant::now();
    raw.extend(rules::panic_freedom::check_ipa(
        &graph,
        &summaries,
        HOT_PATH_CRATES,
    ));
    timings.push(RuleTiming::since("panic-freedom (interprocedural)", t0));

    let t0 = Instant::now();
    let ipa = rules::blocking_under_lock::BlockingUnderLockIpa::new(&graph, &summaries);
    for rel in loader.load_targets(ipa.targets())? {
        raw.extend(dataflow::run_rule(&ipa, &loader.files[rel.as_str()]));
    }
    timings.push(RuleTiming::since(
        "blocking-under-lock (interprocedural)",
        t0,
    ));

    let t0 = Instant::now();
    raw.extend(rules::hot_path_alloc::check(
        &graph,
        &summaries,
        rules::hot_path_alloc::HOT_ALLOC_ROOTS,
    ));
    timings.push(RuleTiming::since(rules::hot_path_alloc::RULE, t0));

    let t0 = Instant::now();
    raw.extend(rules::unbounded_recursion::check(&graph, HOT_PATH_CRATES));
    timings.push(RuleTiming::since(rules::unbounded_recursion::RULE, t0));

    // Thread-safety layer (see `threadsafe`): struct/field discovery,
    // lockset must-analysis, and atomic roles over the concurrency
    // surface. Reuses the interprocedurally loaded files — no new I/O.
    let rounds = if deep {
        None
    } else {
        Some(threadsafe::DEFAULT_ROUNDS)
    };
    let t0 = Instant::now();
    let ts = threadsafe::analyze(&threadsafe_files(&loader), &graph, rounds);
    raw.extend(rules::shared_field_lockset::check(&ts));
    timings.push(RuleTiming::since(rules::shared_field_lockset::RULE, t0));

    let t0 = Instant::now();
    raw.extend(rules::atomics_ordering::check(&ts));
    timings.push(RuleTiming::since(rules::atomics_ordering::RULE, t0));

    let t0 = Instant::now();
    let ve = rules::view_escape::ViewEscape;
    for rel in loader.load_targets(DataflowRule::targets(&ve))? {
        raw.extend(dataflow::run_rule(&ve, &loader.files[rel.as_str()]));
    }
    timings.push(RuleTiming::since(rules::view_escape::RULE, t0));

    let files_scanned = loader.files.len() + 1; // + PROTOCOL.md
    let pre_used: Vec<usize> = summaries.used_allows.iter().copied().collect();
    let mut report = Report::build_with_used(raw, &allows, files_scanned, &pre_used);
    report.timings = timings;
    Ok(report)
}
