//! Workspace driver: locates the repo root, loads the target files for
//! each rule, runs the catalog — lexical and dataflow rules in one pass
//! — and applies `lint.allow`. Every rule is timed individually
//! (`dlog-lint --timing`) so the tier-1 gate's latency budget is
//! observable per rule.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::allow::Allowlist;
use crate::dataflow::{self, DataflowRule};
use crate::report::{Report, RuleTiming, Violation};
use crate::rules::{self, Rule};
use crate::source::SourceFile;

/// Crates whose `src/` trees must be panic-free (rule `panic-freedom`).
pub const HOT_PATH_CRATES: &[&str] = &[
    "crates/server/src",
    "crates/net/src",
    "crates/storage/src",
    "crates/append-forest/src",
    "crates/obs/src",
    "crates/mc/src",
];

/// Files scanned for `.lock()` acquisition ordering (rule `lock-order`).
/// Directories contribute every `.rs` file beneath them.
pub const LOCK_ORDER_TARGETS: &[&str] = &[
    "crates/net/src/mem.rs",
    "crates/storage/src/nvram.rs",
    "crates/archive/src/object_store.rs",
    "crates/server/src",
];

/// Directories scanned for the §4.2 write-before-ack heuristic.
pub const ACK_AFTER_FORCE_TARGETS: &[&str] = &["crates/server/src", "crates/storage/src"];

/// Walk up from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
///
/// # Errors
/// Returns a message when no ancestor is a workspace root.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml with [workspace]) above {}",
                start.display()
            ));
        }
    }
}

/// Loaded and parsed source files, keyed by workspace-relative path.
struct Loader<'a> {
    root: &'a Path,
    files: BTreeMap<String, SourceFile>,
}

impl<'a> Loader<'a> {
    fn new(root: &'a Path) -> Loader<'a> {
        Loader {
            root,
            files: BTreeMap::new(),
        }
    }

    fn load(&mut self, rel: &str) -> Result<&SourceFile, String> {
        if !self.files.contains_key(rel) {
            let text = fs::read_to_string(self.root.join(rel))
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            self.files
                .insert(rel.to_string(), SourceFile::parse(rel, &text));
        }
        Ok(&self.files[rel])
    }

    /// Every `.rs` file under `rel` (or `rel` itself), sorted.
    fn expand(&self, rel: &str) -> Result<Vec<String>, String> {
        let abs = self.root.join(rel);
        if abs.is_file() {
            return Ok(vec![rel.to_string()]);
        }
        let mut out = Vec::new();
        walk_rs(&abs, &mut out).map_err(|e| format!("cannot walk {rel}: {e}"))?;
        let prefix = self.root.to_path_buf();
        let mut rels: Vec<String> = out
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&prefix)
                    .ok()
                    .map(|r| r.to_string_lossy().replace('\\', "/"))
            })
            .collect();
        rels.sort();
        Ok(rels)
    }

    /// Expand, dedup, and load a list of target prefixes.
    fn load_targets(&mut self, targets: &[&str]) -> Result<Vec<String>, String> {
        let mut files = Vec::new();
        for target in targets {
            files.extend(self.expand(target)?);
        }
        files.sort();
        files.dedup();
        for rel in &files {
            self.load(rel)?;
        }
        Ok(files)
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The flow-sensitive rules, run on the CFG/dataflow engine.
fn dataflow_rules() -> [&'static dyn DataflowRule; 4] {
    [
        &rules::blocking_under_lock::BlockingUnderLock,
        &rules::lsn_checked_arith::LsnCheckedArith,
        &rules::seal_typestate::SealTypestate,
        &rules::result_swallow::ResultSwallow,
    ]
}

/// The lexical per-file rules (see [`Rule`]).
fn lexical_rules() -> [&'static dyn Rule; 2] {
    [&rules::PanicFreedom, &rules::AckAfterForce]
}

/// Run the full rule catalog — lexical and dataflow — on the workspace
/// at `root`, in one pass.
///
/// # Errors
/// Returns a message when a target file cannot be read or `lint.allow`
/// is malformed (including entries naming unknown rules); rule findings
/// are *not* errors — they land in the returned [`Report`].
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let allow_text = fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allows = Allowlist::parse(&allow_text)?;
    for e in allows.entries() {
        if !rules::ALL_RULES.contains(&e.rule.as_str()) {
            return Err(format!(
                "lint.allow:{}: unknown rule `{}` (known: {})",
                e.line,
                e.rule,
                rules::ALL_RULES.join(", ")
            ));
        }
    }
    let mut loader = Loader::new(root);
    let mut raw: Vec<Violation> = Vec::new();
    let mut timings: Vec<RuleTiming> = Vec::new();

    // Rule 1: wire exhaustiveness.
    let t0 = Instant::now();
    loader.load("crates/net/src/wire.rs")?;
    loader.load("crates/net/tests/wire_props.rs")?;
    raw.extend(rules::wire_exhaustive::check(
        &loader.files["crates/net/src/wire.rs"],
        &loader.files["crates/net/tests/wire_props.rs"],
    ));
    timings.push(RuleTiming::since(rules::wire_exhaustive::RULE, t0));

    // Rule 2: lock ordering (cross-file acquisition graph).
    let t0 = Instant::now();
    let lock_files = loader.load_targets(LOCK_ORDER_TARGETS)?;
    let lock_sources: Vec<&SourceFile> = lock_files.iter().map(|r| &loader.files[r]).collect();
    raw.extend(rules::lock_order::check(&lock_sources));
    timings.push(RuleTiming::since(rules::lock_order::RULE, t0));

    // Lexical per-file rules: panic-freedom, ack-after-force.
    for rule in lexical_rules() {
        let t0 = Instant::now();
        for rel in loader.load_targets(rule.targets())? {
            raw.extend(rule.check_file(&loader.files[rel.as_str()]));
        }
        timings.push(RuleTiming::since(rule.name(), t0));
    }

    // Rule 5: Status / PROTOCOL.md parity.
    let t0 = Instant::now();
    let doc_rel = "docs/PROTOCOL.md";
    let doc_text = fs::read_to_string(root.join(doc_rel))
        .map_err(|e| format!("cannot read {doc_rel}: {e}"))?;
    raw.extend(rules::status_parity::check(
        &loader.files["crates/net/src/wire.rs"],
        doc_rel,
        &doc_text,
    ));
    timings.push(RuleTiming::since(rules::status_parity::RULE, t0));

    // Rule 6: #![forbid(unsafe_code)] on every first-party crate root.
    let t0 = Instant::now();
    let mut crate_roots = Vec::new();
    for entry in fs::read_dir(root.join("crates"))
        .map_err(|e| format!("cannot list crates/: {e}"))?
    {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().join("src/lib.rs").is_file() {
            crate_roots.push(format!(
                "crates/{}/src/lib.rs",
                entry.file_name().to_string_lossy()
            ));
        }
    }
    crate_roots.sort();
    for rel in &crate_roots {
        loader.load(rel)?;
        raw.extend(rules::forbid_unsafe::check(&loader.files[rel.as_str()]));
    }
    timings.push(RuleTiming::since(rules::forbid_unsafe::RULE, t0));

    // Flow-sensitive rules on the dataflow engine, one timed pass each.
    for rule in dataflow_rules() {
        let t0 = Instant::now();
        for rel in loader.load_targets(rule.targets())? {
            raw.extend(dataflow::run_rule(rule, &loader.files[rel.as_str()]));
        }
        timings.push(RuleTiming::since(rule.rule(), t0));
    }

    let files_scanned = loader.files.len() + 1; // + PROTOCOL.md
    let mut report = Report::build(raw, &allows, files_scanned);
    report.timings = timings;
    Ok(report)
}
