//! Workspace driver: locates the repo root, loads the target files for
//! each rule, runs the catalog, and applies `lint.allow`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::allow::Allowlist;
use crate::report::{Report, Violation};
use crate::rules;
use crate::source::SourceFile;

/// Crates whose `src/` trees must be panic-free (rule `panic-freedom`).
pub const HOT_PATH_CRATES: &[&str] = &[
    "crates/server/src",
    "crates/net/src",
    "crates/storage/src",
    "crates/append-forest/src",
    "crates/obs/src",
];

/// Files scanned for `.lock()` acquisition ordering (rule `lock-order`).
/// Directories contribute every `.rs` file beneath them.
pub const LOCK_ORDER_TARGETS: &[&str] = &[
    "crates/net/src/mem.rs",
    "crates/storage/src/nvram.rs",
    "crates/archive/src/object_store.rs",
    "crates/server/src",
];

/// Directories scanned for the §4.2 write-before-ack heuristic.
pub const ACK_AFTER_FORCE_TARGETS: &[&str] = &["crates/server/src", "crates/storage/src"];

/// Walk up from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
///
/// # Errors
/// Returns a message when no ancestor is a workspace root.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml with [workspace]) above {}",
                start.display()
            ));
        }
    }
}

/// Loaded and parsed source files, keyed by workspace-relative path.
struct Loader<'a> {
    root: &'a Path,
    files: BTreeMap<String, SourceFile>,
}

impl<'a> Loader<'a> {
    fn new(root: &'a Path) -> Loader<'a> {
        Loader {
            root,
            files: BTreeMap::new(),
        }
    }

    fn load(&mut self, rel: &str) -> Result<&SourceFile, String> {
        if !self.files.contains_key(rel) {
            let text = fs::read_to_string(self.root.join(rel))
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            self.files
                .insert(rel.to_string(), SourceFile::parse(rel, &text));
        }
        Ok(&self.files[rel])
    }

    /// Every `.rs` file under `rel` (or `rel` itself), sorted.
    fn expand(&self, rel: &str) -> Result<Vec<String>, String> {
        let abs = self.root.join(rel);
        if abs.is_file() {
            return Ok(vec![rel.to_string()]);
        }
        let mut out = Vec::new();
        walk_rs(&abs, &mut out).map_err(|e| format!("cannot walk {rel}: {e}"))?;
        let prefix = self.root.to_path_buf();
        let mut rels: Vec<String> = out
            .into_iter()
            .filter_map(|p| {
                p.strip_prefix(&prefix)
                    .ok()
                    .map(|r| r.to_string_lossy().replace('\\', "/"))
            })
            .collect();
        rels.sort();
        Ok(rels)
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full rule catalog on the workspace at `root`.
///
/// # Errors
/// Returns a message when a target file cannot be read or `lint.allow`
/// is malformed; rule findings are *not* errors — they land in the
/// returned [`Report`].
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let allow_text = fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allows = Allowlist::parse(&allow_text)?;
    let mut loader = Loader::new(root);
    let mut raw: Vec<Violation> = Vec::new();

    // Rule 1: wire exhaustiveness.
    loader.load("crates/net/src/wire.rs")?;
    loader.load("crates/net/tests/wire_props.rs")?;
    raw.extend(rules::wire_exhaustive::check(
        &loader.files["crates/net/src/wire.rs"],
        &loader.files["crates/net/tests/wire_props.rs"],
    ));

    // Rule 2: lock ordering.
    let mut lock_files = Vec::new();
    for target in LOCK_ORDER_TARGETS {
        lock_files.extend(loader.expand(target)?);
    }
    lock_files.sort();
    lock_files.dedup();
    for rel in &lock_files {
        loader.load(rel)?;
    }
    let lock_sources: Vec<&SourceFile> = lock_files.iter().map(|r| &loader.files[r]).collect();
    raw.extend(rules::lock_order::check(&lock_sources));

    // Rule 3: panic freedom on the hot path.
    let mut panic_files = Vec::new();
    for target in HOT_PATH_CRATES {
        panic_files.extend(loader.expand(target)?);
    }
    panic_files.sort();
    panic_files.dedup();
    for rel in &panic_files {
        loader.load(rel)?;
        raw.extend(rules::panic_freedom::check(&loader.files[rel.as_str()]));
    }

    // Rule 4: ack-after-force.
    let mut ack_files = Vec::new();
    for target in ACK_AFTER_FORCE_TARGETS {
        ack_files.extend(loader.expand(target)?);
    }
    ack_files.sort();
    ack_files.dedup();
    for rel in &ack_files {
        loader.load(rel)?;
        raw.extend(rules::ack_after_force::check(&loader.files[rel.as_str()]));
    }

    // Rule 5: Status / PROTOCOL.md parity.
    let doc_rel = "docs/PROTOCOL.md";
    let doc_text = fs::read_to_string(root.join(doc_rel))
        .map_err(|e| format!("cannot read {doc_rel}: {e}"))?;
    raw.extend(rules::status_parity::check(
        &loader.files["crates/net/src/wire.rs"],
        doc_rel,
        &doc_text,
    ));

    // Rule 6: #![forbid(unsafe_code)] on every first-party crate root.
    let mut crate_roots = Vec::new();
    for entry in fs::read_dir(root.join("crates"))
        .map_err(|e| format!("cannot list crates/: {e}"))?
    {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().join("src/lib.rs").is_file() {
            crate_roots.push(format!(
                "crates/{}/src/lib.rs",
                entry.file_name().to_string_lossy()
            ));
        }
    }
    crate_roots.sort();
    for rel in &crate_roots {
        loader.load(rel)?;
        raw.extend(rules::forbid_unsafe::check(&loader.files[rel.as_str()]));
    }

    let files_scanned = loader.files.len() + 1; // + PROTOCOL.md
    Ok(Report::build(raw, &allows, files_scanned))
}
