//! `dlog-lint` binary: run the workspace rule catalog.
//!
//! ```text
//! cargo run -p dlog-lint              # human-readable report
//! cargo run -p dlog-lint -- --json    # machine-readable report
//! cargo run -p dlog-lint -- --timing  # append per-rule wall time
//! cargo run -p dlog-lint -- --root /path/to/workspace
//! cargo run -p dlog-lint -- --callgraph          # resolved call graph
//! cargo run -p dlog-lint -- --callgraph --dot    # Graphviz rendering
//! cargo run -p dlog-lint -- --callgraph --json   # per-fn summaries
//! cargo run -p dlog-lint -- --race-report        # thread-safety access map
//! cargo run -p dlog-lint -- --race-report --deep # unbounded interprocedural depth
//! ```
//!
//! Exit status: 0 when clean (modulo `lint.allow`), 1 on violations,
//! 2 on usage or I/O errors. With `--json --timing` the timing table
//! goes to stderr so stdout stays valid JSON. `--callgraph` dumps the
//! interprocedural engine's view of the workspace and always exits 0
//! on success (it reports structure, not findings). `--race-report`
//! dumps the thread-safety layer's per-field access map with locksets
//! (`race-report.json` in CI); `--deep` lifts the interprocedural
//! entry-lockset round cap for either mode (the nightly lane).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut timing = false;
    let mut callgraph = false;
    let mut dot = false;
    let mut race_report = false;
    let mut deep = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--timing" => timing = true,
            "--callgraph" => callgraph = true,
            "--dot" => dot = true,
            "--race-report" => race_report = true,
            "--deep" => deep = true,
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: dlog-lint [--json] [--timing] [--deep] [--root PATH] \
                     [--callgraph [--dot]] [--race-report]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if dot && !callgraph {
        eprintln!("error: --dot requires --callgraph");
        return ExitCode::from(2);
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match dlog_lint::find_root(&cwd) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    if race_report {
        return match dlog_lint::workspace::build_race_report(&root, deep) {
            Ok(json) => {
                print!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    if callgraph {
        return match dlog_lint::workspace::build_callgraph(&root) {
            Ok((graph, summaries)) => {
                if dot {
                    print!("{}", dlog_lint::summary::render_callgraph_dot(&graph));
                } else if json {
                    print!(
                        "{}",
                        dlog_lint::summary::render_callgraph_json(&graph, &summaries)
                    );
                } else {
                    print!(
                        "{}",
                        dlog_lint::summary::render_callgraph_text(&graph, &summaries)
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    match dlog_lint::workspace::lint_workspace_with(&root, deep) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
                if timing {
                    eprint!("{}", report.timing_table());
                }
            } else {
                print!("{}", report.to_text());
                if timing {
                    print!("{}", report.timing_table());
                }
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
