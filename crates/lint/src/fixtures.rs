//! Fixture-drift verification: every rule must fire on its failing
//! fixture (with the pinned violation count) and stay silent on its
//! passing one. `crates/lint/tests/rules.rs` runs this in the crate's
//! own suite, and the tier-1 gate (`tests/lint_gate.rs`) runs it again
//! from outside — so a rule edit that silently changes what the catalog
//! catches fails the gate even if the workspace sweep still looks clean.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::allow::Allowlist;
use crate::callgraph::CallGraph;
use crate::dataflow::{run_rule, DataflowRule};
use crate::report::Violation;
use crate::rules;
use crate::source::SourceFile;
use crate::summary::{self, Summaries};
use crate::threadsafe;

/// How many findings a fixture run must produce.
enum Expect {
    /// Zero findings (a passing fixture).
    Clean,
    /// Exactly this many findings (a failing fixture).
    Exactly(usize),
}

/// One fixture check outcome accumulator.
struct Drift {
    checked: usize,
    problems: Vec<String>,
}

impl Drift {
    fn record(&mut self, label: &str, rule: &str, vs: &[Violation], want: &Expect) {
        self.checked += 1;
        if let Some(bad) = vs.iter().find(|v| v.rule != rule) {
            self.problems.push(format!(
                "{label}: finding tagged `{}` from a `{rule}` run",
                bad.rule
            ));
        }
        match want {
            Expect::Clean if !vs.is_empty() => self.problems.push(format!(
                "{label}: passing fixture produced {} finding(s): {}",
                vs.len(),
                vs.iter()
                    .map(|v| v.message.as_str())
                    .collect::<Vec<_>>()
                    .join("; ")
            )),
            Expect::Exactly(n) if vs.len() != *n => self.problems.push(format!(
                "{label}: expected {n} finding(s), got {}: {:?}",
                vs.len(),
                vs.iter().map(|v| &v.message).collect::<Vec<_>>()
            )),
            _ => {}
        }
    }
}

fn read(dir: &Path, name: &str) -> Result<String, String> {
    fs::read_to_string(dir.join(name)).map_err(|e| format!("cannot read fixture {name}: {e}"))
}

/// Parse a fixture under a synthetic hot-path label so path-gated rules
/// treat it as in-scope.
fn parse(dir: &Path, name: &str) -> Result<SourceFile, String> {
    Ok(SourceFile::parse(
        &format!("crates/storage/src/{name}"),
        &read(dir, name)?,
    ))
}

/// Build the interprocedural state for one single-file fixture: the
/// call graph over just that file (all in-file calls resolve same-file,
/// so an empty dependency map suffices) plus its summaries with no
/// allowlist.
fn interprocedural(file: &SourceFile) -> (CallGraph, Summaries) {
    let files = [file];
    let graph = CallGraph::build(&files, &BTreeMap::new());
    let summaries = summary::compute(&graph, &files, &Allowlist::default());
    (graph, summaries)
}

fn run_dataflow(
    drift: &mut Drift,
    dir: &Path,
    rule: &dyn DataflowRule,
    fail_expect: usize,
) -> Result<(), String> {
    let base = rule.rule().replace('-', "_");
    let fail = parse(dir, &format!("{base}_fail.rs"))?;
    drift.record(
        &format!("{base}_fail.rs"),
        rule.rule(),
        &run_rule(rule, &fail),
        &Expect::Exactly(fail_expect),
    );
    let pass = parse(dir, &format!("{base}_pass.rs"))?;
    drift.record(
        &format!("{base}_pass.rs"),
        rule.rule(),
        &run_rule(rule, &pass),
        &Expect::Clean,
    );
    Ok(())
}

/// Verify every rule's fixtures under `dir`
/// (`crates/lint/tests/fixtures`). Returns the number of fixture runs
/// checked.
///
/// # Errors
/// Returns a message listing every drifted fixture, or an I/O error
/// when a fixture file is missing — a deleted fixture is drift too.
pub fn verify_fixtures(dir: &Path) -> Result<usize, String> {
    let mut drift = Drift {
        checked: 0,
        problems: Vec::new(),
    };

    // Lexical rules.
    drift.record(
        "panic_freedom_fail.rs",
        rules::panic_freedom::RULE,
        &rules::panic_freedom::check(&parse(dir, "panic_freedom_fail.rs")?),
        &Expect::Exactly(4),
    );
    drift.record(
        "panic_freedom_pass.rs",
        rules::panic_freedom::RULE,
        &rules::panic_freedom::check(&parse(dir, "panic_freedom_pass.rs")?),
        &Expect::Clean,
    );
    drift.record(
        "lock_order_fail.rs",
        rules::lock_order::RULE,
        &rules::lock_order::check(&[&parse(dir, "lock_order_fail.rs")?]),
        &Expect::Exactly(1),
    );
    drift.record(
        "lock_order_pass.rs",
        rules::lock_order::RULE,
        &rules::lock_order::check(&[&parse(dir, "lock_order_pass.rs")?]),
        &Expect::Clean,
    );
    drift.record(
        "ack_after_force_fail.rs",
        rules::ack_after_force::RULE,
        &rules::ack_after_force::check(&parse(dir, "ack_after_force_fail.rs")?),
        &Expect::Exactly(1),
    );
    drift.record(
        "ack_after_force_pass.rs",
        rules::ack_after_force::RULE,
        &rules::ack_after_force::check(&parse(dir, "ack_after_force_pass.rs")?),
        &Expect::Clean,
    );
    drift.record(
        "wire_fail.rs",
        rules::wire_exhaustive::RULE,
        &rules::wire_exhaustive::check(
            &parse(dir, "wire_fail.rs")?,
            &parse(dir, "wire_props_fail.rs")?,
        ),
        &Expect::Exactly(3),
    );
    drift.record(
        "status_doc_fail.md",
        rules::status_parity::RULE,
        &rules::status_parity::check(
            &parse(dir, "status_wire.rs")?,
            "fixtures/status_doc_fail.md",
            &read(dir, "status_doc_fail.md")?,
        ),
        &Expect::Exactly(2),
    );
    drift.record(
        "stats_doc_fail.md",
        rules::status_parity::RULE,
        &rules::status_parity::check(
            &parse(dir, "status_wire.rs")?,
            "fixtures/stats_doc_fail.md",
            &read(dir, "stats_doc_fail.md")?,
        ),
        &Expect::Exactly(2),
    );
    drift.record(
        "status_doc_pass.md",
        rules::status_parity::RULE,
        &rules::status_parity::check(
            &parse(dir, "status_wire.rs")?,
            "fixtures/status_doc_pass.md",
            &read(dir, "status_doc_pass.md")?,
        ),
        &Expect::Clean,
    );
    drift.record(
        "forbid_unsafe_fail.rs",
        rules::forbid_unsafe::RULE,
        &rules::forbid_unsafe::check(&parse(dir, "forbid_unsafe_fail.rs")?),
        &Expect::Exactly(1),
    );
    drift.record(
        "forbid_unsafe_pass.rs",
        rules::forbid_unsafe::RULE,
        &rules::forbid_unsafe::check(&parse(dir, "forbid_unsafe_pass.rs")?),
        &Expect::Clean,
    );

    // Flow-sensitive rules.
    run_dataflow(
        &mut drift,
        dir,
        &rules::blocking_under_lock::BlockingUnderLock,
        2,
    )?;
    run_dataflow(
        &mut drift,
        dir,
        &rules::lsn_checked_arith::LsnCheckedArith,
        3,
    )?;
    run_dataflow(&mut drift, dir, &rules::seal_typestate::SealTypestate, 2)?;
    run_dataflow(&mut drift, dir, &rules::result_swallow::ResultSwallow, 3)?;
    run_dataflow(&mut drift, dir, &rules::view_escape::ViewEscape, 2)?;

    // Thread-safety rules: run the threadsafe pass per fixture file.
    {
        let fail = parse(dir, "shared_field_lockset_fail.rs")?;
        let (graph, _) = interprocedural(&fail);
        let ts = threadsafe::analyze(&[&fail], &graph, Some(threadsafe::DEFAULT_ROUNDS));
        drift.record(
            "shared_field_lockset_fail.rs",
            rules::shared_field_lockset::RULE,
            &rules::shared_field_lockset::check(&ts),
            &Expect::Exactly(1),
        );
        let pass = parse(dir, "shared_field_lockset_pass.rs")?;
        let (graph, _) = interprocedural(&pass);
        let ts = threadsafe::analyze(&[&pass], &graph, Some(threadsafe::DEFAULT_ROUNDS));
        drift.record(
            "shared_field_lockset_pass.rs",
            rules::shared_field_lockset::RULE,
            &rules::shared_field_lockset::check(&ts),
            &Expect::Clean,
        );
    }
    {
        let fail = parse(dir, "atomics_ordering_fail.rs")?;
        let (graph, _) = interprocedural(&fail);
        let ts = threadsafe::analyze(&[&fail], &graph, Some(threadsafe::DEFAULT_ROUNDS));
        drift.record(
            "atomics_ordering_fail.rs",
            rules::atomics_ordering::RULE,
            &rules::atomics_ordering::check(&ts),
            &Expect::Exactly(1),
        );
        let pass = parse(dir, "atomics_ordering_pass.rs")?;
        let (graph, _) = interprocedural(&pass);
        let ts = threadsafe::analyze(&[&pass], &graph, Some(threadsafe::DEFAULT_ROUNDS));
        drift.record(
            "atomics_ordering_pass.rs",
            rules::atomics_ordering::RULE,
            &rules::atomics_ordering::check(&ts),
            &Expect::Clean,
        );
    }

    // Interprocedural rules: graph + summaries per fixture file.
    {
        let fail = parse(dir, "hot_path_alloc_fail.rs")?;
        let (graph, summaries) = interprocedural(&fail);
        drift.record(
            "hot_path_alloc_fail.rs",
            rules::hot_path_alloc::RULE,
            &rules::hot_path_alloc::check(
                &graph,
                &summaries,
                &[("crates/storage/src/hot_path_alloc_fail.rs", "handle")],
            ),
            &Expect::Exactly(2),
        );
        let pass = parse(dir, "hot_path_alloc_pass.rs")?;
        let (graph, summaries) = interprocedural(&pass);
        drift.record(
            "hot_path_alloc_pass.rs",
            rules::hot_path_alloc::RULE,
            &rules::hot_path_alloc::check(
                &graph,
                &summaries,
                &[("crates/storage/src/hot_path_alloc_pass.rs", "handle")],
            ),
            &Expect::Clean,
        );
    }
    {
        let fail = parse(dir, "unbounded_recursion_fail.rs")?;
        let (graph, _) = interprocedural(&fail);
        drift.record(
            "unbounded_recursion_fail.rs",
            rules::unbounded_recursion::RULE,
            &rules::unbounded_recursion::check(&graph, &["crates/storage/src"]),
            &Expect::Exactly(1),
        );
        let pass = parse(dir, "unbounded_recursion_pass.rs")?;
        let (graph, _) = interprocedural(&pass);
        drift.record(
            "unbounded_recursion_pass.rs",
            rules::unbounded_recursion::RULE,
            &rules::unbounded_recursion::check(&graph, &["crates/storage/src"]),
            &Expect::Clean,
        );
    }

    if drift.problems.is_empty() {
        Ok(drift.checked)
    } else {
        Err(format!(
            "fixture drift ({} problem(s)):\n  {}",
            drift.problems.len(),
            drift.problems.join("\n  ")
        ))
    }
}
