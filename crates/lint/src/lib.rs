//! `dlog-lint` — workspace protocol-invariant static analysis.
//!
//! The paper's correctness story rests on ordering invariants the Rust
//! compiler cannot see: acks must never be sent before the records they
//! cover are forced to stable storage (§4.2), the wire message set must
//! stay in lock-step with its codec and property coverage, and a log
//! server must not panic on hostile bytes. This crate walks the
//! workspace sources with a hand-rolled lexer (no external parser — it
//! must build offline against the vendored stubs) and enforces twelve
//! repo-specific rules, gated in tier-1 via `tests/lint_gate.rs`.
//!
//! Six rules are *lexical* — token-stream scans:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wire-exhaustiveness` | every `Message`/`Request`/`Response` variant has encode + decode arms and property coverage |
//! | `lock-order` | the `.lock()` acquisition graph is acyclic |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/indexing in hot-path non-test code |
//! | `ack-after-force` | `NewHighLsn` construction lexically follows `.force()` (§4.2) |
//! | `status-parity` | `Response::Status` fields match the `docs/PROTOCOL.md` gauge table |
//! | `forbid-unsafe` | every first-party crate root carries `#![forbid(unsafe_code)]` |
//!
//! Four rules are *flow-sensitive*: [`mod@cfg`] builds a statement-level
//! control-flow graph per function body, and [`dataflow`] runs a
//! forward may-analysis over it to a fixpoint, so these rules see
//! *paths*, not just token order:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `blocking-under-lock` | no blocking I/O / channel op while a `MutexGuard` is live (§4.1 latency) |
//! | `lsn-checked-arith` | LSN/epoch/sequence arithmetic uses `checked_*`/`saturating_*` (§3.1.2 monotonicity) |
//! | `seal-typestate` | no `append`/`write_at` on a segment after `.seal()` (archive CRC immutability) |
//! | `result-swallow` | the `Result` of force/flush/upload is consumed on every path (§4.2 ack-after-force) |
//!
//! Two rules are *interprocedural*: [`callgraph`] resolves every call
//! token against a workspace-wide function index (SCC-condensed), and
//! [`summary`] computes bottom-up effect summaries to a fixpoint, so
//! findings carry full call-chain witnesses. The same machinery also
//! promotes `panic-freedom` and `blocking-under-lock` to whole-program
//! analyses:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hot-path-alloc` | allocation sites reachable from the request-path roots are inventoried (ROADMAP item 3 zero-copy worklist) |
//! | `unbounded-recursion` | no confident call cycle touches the hot-path crates (input-controlled stack depth = crashable by input) |
//!
//! Audited exceptions live in `lint.allow` (rule, file, function scope,
//! mandatory justification). See `docs/LINT.md` for the full catalog,
//! the allowlist workflow, and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod fixtures;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod summary;
pub mod threadsafe;
pub mod workspace;

pub use report::{Report, Violation};
pub use source::SourceFile;
pub use workspace::{find_root, lint_workspace};
