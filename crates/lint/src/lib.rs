//! `dlog-lint` — workspace protocol-invariant static analysis.
//!
//! The paper's correctness story rests on ordering invariants the Rust
//! compiler cannot see: acks must never be sent before the records they
//! cover are forced to stable storage (§4.2), the wire message set must
//! stay in lock-step with its codec and property coverage, and a log
//! server must not panic on hostile bytes. This crate walks the
//! workspace sources with a hand-rolled lexer (no external parser — it
//! must build offline against the vendored stubs) and enforces six
//! repo-specific rules, gated in tier-1 via `tests/lint_gate.rs`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wire-exhaustiveness` | every `Message`/`Request`/`Response` variant has encode + decode arms and property coverage |
//! | `lock-order` | the `.lock()` acquisition graph is acyclic |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/indexing in hot-path non-test code |
//! | `ack-after-force` | `NewHighLsn` construction lexically follows `.force()` (§4.2) |
//! | `status-parity` | `Response::Status` fields match the `docs/PROTOCOL.md` gauge table |
//! | `forbid-unsafe` | every first-party crate root carries `#![forbid(unsafe_code)]` |
//!
//! Audited exceptions live in `lint.allow` (rule, file, function scope,
//! mandatory justification). See `docs/LINT.md` for the full catalog,
//! the allowlist workflow, and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

pub use report::{Report, Violation};
pub use source::SourceFile;
pub use workspace::{find_root, lint_workspace};
