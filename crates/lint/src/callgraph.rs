//! Workspace-wide call graph over the lexer/[`SourceFile`] model.
//!
//! Every intraprocedural rule stops at function boundaries: a hot-path
//! handler that calls a helper which panics, blocks under a lock, or
//! allocates per record is invisible to the gate. This module builds
//! the structure the interprocedural rules (see [`crate::summary`])
//! need: a function-definition index keyed by crate/file/name, call-site
//! resolution from the token stream, and an SCC condensation of the
//! resulting graph so summaries can be computed bottom-up.
//!
//! Resolution is deliberately heuristic — there is no type information —
//! and errs toward *more* edges, the safe direction for a may-analysis:
//!
//! * a free call `foo(…)` (including `Qual::foo(…)`) resolves to
//!   definitions named `foo`, preferring the same file, then the same
//!   crate, then any definition in the caller's dependency closure;
//! * a method call `.foo(…)` resolves to **every** definition named
//!   `foo` in the caller's dependency closure (the conservative
//!   any-match fallback — receivers are untyped tokens);
//! * a call that matches no workspace definition is *extern*
//!   (`Vec::push`, `std::…`) and carries no edge.
//!
//! Each edge records whether it is *confident* — a free call resolved
//!   within the caller's file or crate, or a `self.foo(…)` call resolved
//! in the caller's crate. The `unbounded-recursion` rule only trusts
//! confident edges, because any-match method fallback would invent
//! cycles between unrelated functions that happen to share a name.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Index of a function definition in [`CallGraph::defs`].
pub type FnId = usize;

/// One function definition discovered in the workspace.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index of the defining file in the slice passed to [`CallGraph::build`].
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate directory name (`server` for `crates/server/src/…`), or
    /// `""` when the path is not under `crates/`.
    pub krate: String,
    /// Function name.
    pub name: String,
    /// Token index of the body's opening `{` in the defining file.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
    /// 1-based line of the function body.
    pub line: u32,
}

/// How a call site was written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` or `Qual::foo(…)`.
    Free,
    /// `.foo(…)`.
    Method,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Token index of the callee name in the caller's file.
    pub token: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Free call vs. method call.
    pub kind: CallKind,
    /// Resolved candidate definitions; empty means *extern*.
    pub callees: Vec<FnId>,
    /// True when the resolution is trustworthy enough for cycle
    /// detection (same-file/same-crate free call, or `self.foo(…)`
    /// resolved in the caller's crate).
    pub confident: bool,
}

/// The workspace call graph: definitions, per-function call sites, and
/// the SCC condensation (callees-first order).
pub struct CallGraph {
    /// All function definitions, in (file, token) order.
    pub defs: Vec<FnDef>,
    /// `calls[f]` are the call sites inside `defs[f]`, in token order.
    pub calls: Vec<Vec<CallSite>>,
    /// Strongly connected components over *all* resolved edges, in
    /// reverse topological order of the condensation: every SCC appears
    /// after the SCCs it calls into, so iterating front-to-back visits
    /// callees before callers (bottom-up).
    pub sccs: Vec<Vec<FnId>>,
    /// `scc_of[f]` is the index into [`CallGraph::sccs`] holding `f`.
    pub scc_of: Vec<usize>,
}

/// Identifiers that look like calls but are control flow or bindings.
const NOT_A_CALL: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "fn", "let",
    "mut", "ref", "box", "yield", "await", "unsafe", "impl", "where", "dyn",
];

impl CallGraph {
    /// Build the graph over `files`. `deps` maps a crate directory name
    /// to its dependency closure (crate names it may call into,
    /// including itself); a crate absent from the map may call any
    /// crate — fixtures and tests use an empty map.
    #[must_use]
    pub fn build(files: &[&SourceFile], deps: &BTreeMap<String, BTreeSet<String>>) -> CallGraph {
        let mut defs: Vec<FnDef> = Vec::new();
        // Definition collection: every non-test fn body in every file.
        for (fi, file) in files.iter().enumerate() {
            for f in &file.fns {
                if file.test[f.open] {
                    continue;
                }
                defs.push(FnDef {
                    file: fi,
                    path: file.path.clone(),
                    krate: crate_of(&file.path),
                    name: f.name.clone(),
                    open: f.open,
                    close: f.close,
                    line: file.tokens[f.open].line,
                });
            }
        }
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, d) in defs.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(id);
        }

        // Innermost-definition map per file: `inner[fi][tok]` is the
        // def whose body most tightly encloses the token. `fns` lists
        // nested definitions after their parents, so later writes win.
        let mut inner: Vec<Vec<Option<FnId>>> =
            files.iter().map(|f| vec![None; f.tokens.len()]).collect();
        for (id, d) in defs.iter().enumerate() {
            for slot in &mut inner[d.file][d.open..=d.close] {
                *slot = Some(id);
            }
        }

        // Call-site detection and resolution.
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); defs.len()];
        for (fi, file) in files.iter().enumerate() {
            let toks = &file.tokens;
            let mut i = 0usize;
            while i < toks.len() {
                // Skip attribute contents (`#[derive(Debug)]` is not a call).
                if toks[i].is("#")
                    && (matches!(toks.get(i + 1), Some(t) if t.is("["))
                        || (matches!(toks.get(i + 1), Some(t) if t.is("!"))
                            && matches!(toks.get(i + 2), Some(t) if t.is("["))))
                {
                    let open = if toks[i + 1].is("[") { i + 1 } else { i + 2 };
                    let mut depth = 0i32;
                    let mut j = open;
                    while j < toks.len() {
                        if toks[j].is("[") {
                            depth += 1;
                        } else if toks[j].is("]") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
                let is_call = toks[i].kind == TokenKind::Ident
                    && !file.test[i]
                    && toks.get(i + 1).is_some_and(|t| t.is("("))
                    && !NOT_A_CALL.contains(&toks[i].text.as_str())
                    && !(i > 0 && toks[i - 1].is("fn"));
                if !is_call {
                    i += 1;
                    continue;
                }
                let Some(caller) = inner[fi][i] else {
                    i += 1;
                    continue;
                };
                let kind = if i > 0 && toks[i - 1].is(".") {
                    CallKind::Method
                } else {
                    CallKind::Free
                };
                let name = toks[i].text.as_str();
                let caller_krate = defs[caller].krate.clone();
                let closure = deps.get(&caller_krate);
                let in_closure = |id: &FnId| closure.is_none_or(|c| c.contains(&defs[*id].krate));
                let candidates: Vec<FnId> = by_name
                    .get(name)
                    .map(|v| v.iter().copied().filter(in_closure).collect())
                    .unwrap_or_default();
                let same_file: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| defs[c].file == fi && c != caller)
                    .collect();
                let same_crate: Vec<FnId> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| defs[c].krate == caller_krate)
                    .collect();
                let self_recv = kind == CallKind::Method && i >= 2 && toks[i - 2].is("self");
                // `Qual::name(…)` — the qualifier is untyped, so the
                // bare-name match may land on an unrelated impl
                // (`Vec::new(…)` inside `fn new` is not recursion).
                // Keep the may-edges, but never call them confident.
                let qualified = i >= 2 && toks[i - 1].is(":") && toks[i - 2].is(":");
                let (callees, confident) = match kind {
                    CallKind::Free => {
                        if !same_file.is_empty() {
                            (same_file, !qualified)
                        } else if !same_crate.is_empty() {
                            (same_crate, !qualified)
                        } else {
                            (candidates, false)
                        }
                    }
                    CallKind::Method => {
                        if self_recv && !same_crate.is_empty() {
                            (same_crate, true)
                        } else {
                            (candidates, false)
                        }
                    }
                };
                calls[caller].push(CallSite {
                    token: i,
                    line: toks[i].line,
                    name: name.to_string(),
                    kind,
                    callees,
                    confident,
                });
                i += 1;
            }
        }

        let adj: Vec<Vec<FnId>> = calls
            .iter()
            .map(|sites| {
                let mut out: Vec<FnId> = sites.iter().flat_map(|s| s.callees.clone()).collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        let (sccs, scc_of) = sccs_of(&adj);
        CallGraph {
            defs,
            calls,
            sccs,
            scc_of,
        }
    }

    /// Adjacency restricted to confident edges (for cycle detection).
    #[must_use]
    pub fn confident_adj(&self) -> Vec<Vec<FnId>> {
        self.calls
            .iter()
            .map(|sites| {
                let mut out: Vec<FnId> = sites
                    .iter()
                    .filter(|s| s.confident)
                    .flat_map(|s| s.callees.clone())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect()
    }

    /// Definitions matching `(path, name)` exactly.
    #[must_use]
    pub fn defs_named(&self, path: &str, name: &str) -> Vec<FnId> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.path == path && d.name == name)
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS over all resolved edges from `roots`. Returns, per function,
    /// `Some((parent, call_line))` for reached functions — roots map to
    /// `Some((themselves, 0))` — and `None` for unreached ones.
    #[must_use]
    pub fn reach_from(&self, roots: &[FnId]) -> Vec<Option<(FnId, u32)>> {
        let mut parent: Vec<Option<(FnId, u32)>> = vec![None; self.defs.len()];
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some((r, 0));
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for site in &self.calls[f] {
                for &c in &site.callees {
                    if parent[c].is_none() {
                        parent[c] = Some((f, site.line));
                        queue.push_back(c);
                    }
                }
            }
        }
        parent
    }

    /// The call path `root → … → f` implied by a [`CallGraph::reach_from`]
    /// parent map, as function names.
    #[must_use]
    pub fn path_to(&self, parent: &[Option<(FnId, u32)>], f: FnId) -> Vec<String> {
        let mut chain = vec![self.defs[f].name.clone()];
        let mut cur = f;
        let mut hops = 0usize;
        while let Some((p, _)) = parent[cur] {
            if p == cur || hops > self.defs.len() {
                break;
            }
            chain.push(self.defs[p].name.clone());
            cur = p;
            hops += 1;
        }
        chain.reverse();
        chain
    }

    /// Check that the SCC condensation over all edges is acyclic and in
    /// callees-first order: every cross-SCC edge must point from a
    /// later SCC to an earlier one. Used by the property tests.
    #[must_use]
    pub fn condensation_is_acyclic(&self) -> bool {
        self.calls.iter().enumerate().all(|(f, sites)| {
            sites
                .iter()
                .flat_map(|s| &s.callees)
                .all(|&c| self.scc_of[f] >= self.scc_of[c])
        })
    }
}

/// Crate directory name for a workspace-relative path.
#[must_use]
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Iterative Tarjan SCC. Returns the components in reverse topological
/// order (callees first) plus the component index of each node.
#[must_use]
pub fn sccs_of(adj: &[Vec<usize>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![0usize; n];

    // Explicit DFS frames: (node, next-child position).
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if index[v] == UNSET {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == UNSET {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                for &w in &comp {
                    scc_of[w] = sccs.len();
                }
                sccs.push(comp);
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect();
        let refs: Vec<&SourceFile> = files.iter().collect();
        let g = CallGraph::build(&refs, &BTreeMap::new());
        (files, g)
    }

    #[test]
    fn free_calls_prefer_same_file_then_crate() {
        let (_, g) = graph(&[
            (
                "crates/server/src/lib.rs",
                "fn helper() {} fn entry() { helper(); }",
            ),
            ("crates/types/src/lib.rs", "fn helper() {}"),
        ]);
        let entry = g.defs_named("crates/server/src/lib.rs", "entry")[0];
        let site = &g.calls[entry][0];
        assert_eq!(site.callees.len(), 1, "{site:?}");
        assert_eq!(g.defs[site.callees[0]].path, "crates/server/src/lib.rs");
        assert!(site.confident);
    }

    #[test]
    fn method_calls_any_match_and_extern() {
        let (_, g) = graph(&[
            (
                "crates/server/src/lib.rs",
                "fn entry(&self) { self.helper(); x.helper(); x.push(1); }",
            ),
            ("crates/types/src/lib.rs", "fn helper() {}"),
        ]);
        let entry = g.defs_named("crates/server/src/lib.rs", "entry")[0];
        let sites = &g.calls[entry];
        assert_eq!(sites.len(), 3);
        // `self.helper()`: no same-crate def, falls back to any-match.
        assert_eq!(sites[0].callees.len(), 1);
        assert!(
            !sites[0].confident,
            "cross-crate self call is not confident"
        );
        // `x.helper()`: any-match, not confident.
        assert_eq!(sites[1].callees.len(), 1);
        assert!(!sites[1].confident);
        // `x.push(…)`: extern.
        assert!(sites[2].callees.is_empty());
    }

    #[test]
    fn dep_closure_restricts_candidates() {
        let mut deps = BTreeMap::new();
        deps.insert(
            "server".to_string(),
            ["server".to_string(), "types".to_string()]
                .into_iter()
                .collect(),
        );
        let files = [
            ("crates/server/src/lib.rs", "fn entry() { x.helper(); }"),
            ("crates/workload/src/lib.rs", "fn helper() {}"),
        ];
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let refs: Vec<&SourceFile> = parsed.iter().collect();
        let g = CallGraph::build(&refs, &deps);
        let entry = g.defs_named("crates/server/src/lib.rs", "entry")[0];
        assert!(
            g.calls[entry][0].callees.is_empty(),
            "workload is not in server's dep closure"
        );
    }

    #[test]
    fn recursion_forms_an_scc() {
        let (_, g) = graph(&[(
            "crates/server/src/lib.rs",
            "fn a() { b(); } fn b() { a(); } fn c() { a(); }",
        )]);
        let a = g.defs_named("crates/server/src/lib.rs", "a")[0];
        let b = g.defs_named("crates/server/src/lib.rs", "b")[0];
        let c = g.defs_named("crates/server/src/lib.rs", "c")[0];
        assert_eq!(g.scc_of[a], g.scc_of[b]);
        assert_ne!(g.scc_of[a], g.scc_of[c]);
        // Callees-first: the {a,b} SCC precedes c's.
        assert!(g.scc_of[a] < g.scc_of[c]);
        assert!(g.condensation_is_acyclic());
    }

    #[test]
    fn test_code_and_attributes_are_skipped() {
        let (_, g) = graph(&[(
            "crates/server/src/lib.rs",
            "#[derive(Debug)] struct S; fn live() { go(); }\n\
             #[cfg(test)] mod t { fn dead() { live(); } }\n fn go() {}",
        )]);
        assert_eq!(g.defs.len(), 2, "test fn is not a def");
        let live = g.defs_named("crates/server/src/lib.rs", "live")[0];
        assert_eq!(g.calls[live].len(), 1);
        assert_eq!(g.calls[live][0].name, "go");
    }

    #[test]
    fn reachability_and_witness_path() {
        let (_, g) = graph(&[(
            "crates/server/src/lib.rs",
            "fn handle() { mid(); } fn mid() { leaf(); } fn leaf() {} fn island() {}",
        )]);
        let handle = g.defs_named("crates/server/src/lib.rs", "handle")[0];
        let leaf = g.defs_named("crates/server/src/lib.rs", "leaf")[0];
        let island = g.defs_named("crates/server/src/lib.rs", "island")[0];
        let parent = g.reach_from(&[handle]);
        assert!(parent[leaf].is_some());
        assert!(parent[island].is_none());
        assert_eq!(g.path_to(&parent, leaf), vec!["handle", "mid", "leaf"]);
    }
}
