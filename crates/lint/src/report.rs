//! Findings, allowlist application, and the human/JSON renderings.

use crate::allow::Allowlist;

/// One rule finding at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule identifier (e.g. `panic-freedom`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Enclosing function name, or `<file>` for file-level findings.
    pub scope: String,
    /// Human-readable description.
    pub message: String,
}

/// Wall time of one rule pass (for `dlog-lint --timing`).
#[derive(Clone, Debug)]
pub struct RuleTiming {
    /// Rule identifier.
    pub rule: &'static str,
    /// Wall time of the pass in microseconds (includes file loading
    /// done on the rule's behalf — first loader touch pays parse cost).
    pub micros: u128,
}

impl RuleTiming {
    /// Timing entry for `rule`, measured from `t0` to now.
    #[must_use]
    pub fn since(rule: &'static str, t0: std::time::Instant) -> RuleTiming {
        RuleTiming {
            rule,
            micros: t0.elapsed().as_micros(),
        }
    }
}

/// Outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by `lint.allow` — these fail the gate.
    pub violations: Vec<Violation>,
    /// Findings covered by an allowlist entry (audited exceptions).
    pub allowed: Vec<Violation>,
    /// `lint.allow` entries that matched nothing (stale — warn).
    pub unused_allows: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-rule wall time, in catalog order. Not part of the JSON
    /// output: the `--json` schema stays deterministic for snapshots.
    pub timings: Vec<RuleTiming>,
}

impl Report {
    /// Partition raw findings against the allowlist.
    #[must_use]
    pub fn build(raw: Vec<Violation>, allows: &Allowlist, files_scanned: usize) -> Report {
        Report::build_with_used(raw, allows, files_scanned, &[])
    }

    /// [`Report::build`] with entry indices already consumed elsewhere
    /// (e.g. interprocedural seed suppression, see [`crate::summary`]) —
    /// they are excluded from the stale-entry warning.
    #[must_use]
    pub fn build_with_used(
        mut raw: Vec<Violation>,
        allows: &Allowlist,
        files_scanned: usize,
        pre_used: &[usize],
    ) -> Report {
        raw.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        let mut used = vec![false; allows.len()];
        for &idx in pre_used {
            if idx < used.len() {
                used[idx] = true;
            }
        }
        let mut violations = Vec::new();
        let mut allowed = Vec::new();
        for v in raw {
            match allows.matches(v.rule, &v.file, &v.scope) {
                Some(idx) => {
                    used[idx] = true;
                    allowed.push(v);
                }
                None => violations.push(v),
            }
        }
        let unused_allows = allows
            .entries()
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.display())
            .collect();
        Report {
            violations,
            allowed,
            unused_allows,
            files_scanned,
            timings: Vec::new(),
        }
    }

    /// True when the workspace is clean modulo the allowlist.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render as stable machine-readable JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"ok\": {},\n", self.ok()));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"allowed\": {},\n", self.allowed.len()));
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"scope\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.scope),
                json_str(&v.message)
            ));
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"unused_allow_entries\": [");
        for (i, e) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(e));
        }
        s.push_str("]\n}\n");
        s
    }

    /// Render as human-readable lines (one per finding).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            s.push_str(&format!(
                "{}:{}: [{}] ({}) {}\n",
                v.file, v.line, v.rule, v.scope, v.message
            ));
        }
        for e in &self.unused_allows {
            s.push_str(&format!("warning: unused lint.allow entry: {e}\n"));
        }
        s.push_str(&format!(
            "{} file(s) scanned, {} violation(s), {} allowlisted\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len()
        ));
        s
    }

    /// Render the per-rule timing table (for `--timing`).
    #[must_use]
    pub fn timing_table(&self) -> String {
        let width = self.timings.iter().map(|t| t.rule.len()).max().unwrap_or(0);
        let mut s = String::from("per-rule wall time:\n");
        let mut total: u128 = 0;
        for t in &self.timings {
            total += t.micros;
            s.push_str(&format!(
                "  {:width$}  {:>9.3} ms\n",
                t.rule,
                t.micros as f64 / 1000.0,
            ));
        }
        s.push_str(&format!(
            "  {:width$}  {:>9.3} ms\n",
            "total",
            total as f64 / 1000.0,
        ));
        s
    }
}

/// Escape a string for JSON output.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::Allowlist;

    fn v(rule: &'static str, file: &str, scope: &str) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line: 1,
            scope: scope.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn allowlist_partitions_and_tracks_usage() {
        let allows = Allowlist::parse(
            "panic-freedom crates/a.rs f # fine\nlock-order crates/b.rs * # stale\n",
        )
        .unwrap();
        let raw = vec![
            v("panic-freedom", "crates/a.rs", "f"),
            v("panic-freedom", "crates/a.rs", "g"),
        ];
        let r = Report::build(raw, &allows, 2);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.unused_allows.len(), 1);
        assert!(!r.ok());
    }

    #[test]
    fn json_is_escaped() {
        let raw = vec![Violation {
            rule: "x",
            file: "a\"b.rs".into(),
            line: 3,
            scope: "s".into(),
            message: "line1\nline2".into(),
        }];
        let r = Report::build(raw, &Allowlist::default(), 1);
        let j = r.to_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"ok\": false"));
    }
}
