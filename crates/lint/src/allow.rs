//! `lint.allow` — the audited-exception list.
//!
//! One entry per line: `rule path scope # justification`. The scope is
//! the enclosing function name (or `<file>` for file-level findings);
//! `*` matches any scope in the file. The justification comment is
//! mandatory: an exception nobody can explain is not an exception.
//!
//! Entries that match no finding are reported as warnings so the list
//! cannot silently rot as violations get fixed.

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule identifier the entry silences.
    pub rule: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Function scope, or `*` for the whole file.
    pub scope: String,
    /// 1-based line in `lint.allow`.
    pub line: u32,
}

impl AllowEntry {
    /// Human-readable rendering for warnings.
    #[must_use]
    pub fn display(&self) -> String {
        format!(
            "lint.allow:{}: {} {} {}",
            self.line, self.rule, self.path, self.scope
        )
    }
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse allowlist text.
    ///
    /// # Errors
    /// Returns a message naming the first malformed line: every
    /// non-comment line needs exactly `rule path scope` before the `#`,
    /// and a non-empty justification after it.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i as u32 + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (spec, justification) = match trimmed.split_once('#') {
                Some((s, j)) => (s.trim(), j.trim()),
                None => (trimmed, ""),
            };
            if justification.is_empty() {
                return Err(format!(
                    "lint.allow:{line}: entry lacks a `# justification` comment"
                ));
            }
            let fields: Vec<&str> = spec.split_whitespace().collect();
            let [rule, path, scope] = fields[..] else {
                return Err(format!(
                    "lint.allow:{line}: expected `rule path scope # justification`, got `{spec}`"
                ));
            };
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                scope: scope.to_string(),
                line,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in file order.
    #[must_use]
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// Index of the first entry covering `(rule, path, scope)`.
    #[must_use]
    pub fn matches(&self, rule: &str, path: &str, scope: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.rule == rule && e.path == path && (e.scope == "*" || e.scope == scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# header comment\n\n\
             panic-freedom crates/x.rs ingest # fatal invariant\n\
             lock-order crates/y.rs * # single mutex\n",
        )
        .unwrap();
        assert_eq!(a.len(), 2);
        assert!(a
            .matches("panic-freedom", "crates/x.rs", "ingest")
            .is_some());
        assert!(a.matches("panic-freedom", "crates/x.rs", "other").is_none());
        assert!(a.matches("lock-order", "crates/y.rs", "anything").is_some());
    }

    #[test]
    fn rejects_missing_justification() {
        assert!(Allowlist::parse("panic-freedom crates/x.rs f\n").is_err());
        assert!(Allowlist::parse("panic-freedom crates/x.rs f #   \n").is_err());
    }

    #[test]
    fn rejects_wrong_field_count() {
        assert!(Allowlist::parse("panic-freedom crates/x.rs # why\n").is_err());
        assert!(Allowlist::parse("a b c d # why\n").is_err());
    }
}
