//! Bottom-up function summaries over the call-graph condensation.
//!
//! For every workspace function the analysis computes a small effect
//! summary — *may panic*, *may block*, *forces*, *acquired locks*,
//! *direct allocation sites* — seeded from the same token heuristics
//! the intraprocedural rules already use, then propagated caller-ward
//! to a fixpoint over the SCC condensation ([`CallGraph::sccs`] is in
//! callees-first order, so one inner fixpoint per SCC suffices).
//!
//! Panic seeds honor `lint.allow`: a deliberately-kept `panic!` (the
//! server's §3.1 fail-stop in `ingest`, the CRC table's masked
//! indexing) does not taint every transitive caller — the allowlist
//! entry already audited it.
//!
//! Each propagated property carries a [`Cause`] chain, so a violation
//! can print the full call-chain witness:
//! `ingest → append_frame → `unwrap()` (crates/…/frame.rs:41)`.

use std::collections::BTreeSet;

use crate::allow::Allowlist;
use crate::callgraph::{CallGraph, FnId};
use crate::rules::{blocking_under_lock, panic_freedom};
use crate::source::SourceFile;

/// Why a propagated property holds for a function.
#[derive(Clone, Debug)]
pub enum Cause {
    /// The function itself contains the effect.
    Direct {
        /// Short description of the site (`` `unwrap()` ``, `` `.force()` ``).
        what: String,
        /// 1-based line of the site in the function's file.
        line: u32,
    },
    /// The effect flows in from a callee.
    Call {
        /// The callee the effect was inherited from.
        callee: FnId,
        /// 1-based line of the call site.
        line: u32,
    },
}

/// One direct allocation site inside a function body.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Allocation kind (`Vec::new`, `clone`, `format!`, …).
    pub kind: &'static str,
    /// 1-based line.
    pub line: u32,
}

/// The effect summary of one function.
#[derive(Clone, Debug, Default)]
pub struct FnSummary {
    /// The function may panic (directly or transitively), and why.
    pub may_panic: Option<Cause>,
    /// The function may block on a device or peer, and why.
    pub may_block: Option<Cause>,
    /// The function (transitively) calls `.force(…)`/`.force_batch(…)`.
    pub forces: bool,
    /// Lock receiver paths (transitively) acquired via `.lock()`.
    pub locks: BTreeSet<String>,
    /// Direct allocation sites (not propagated — reachability over the
    /// call graph recovers the transitive picture without
    /// double-counting shared helpers).
    pub allocs: Vec<AllocSite>,
}

/// Summaries for every function in a [`CallGraph`], plus the fixpoint
/// pass count (property-tested against its bound).
pub struct Summaries {
    /// `fns[f]` is the summary of `graph.defs[f]`.
    pub fns: Vec<FnSummary>,
    /// Total inner fixpoint passes across all SCCs.
    pub passes: usize,
    /// Indices of `lint.allow` entries consumed while suppressing
    /// seeds — they must count as *used* in the report, or auditing a
    /// fail-stop in a non-hot-path crate would trip the stale-entry
    /// check.
    pub used_allows: BTreeSet<usize>,
}

/// Allocation-kind token patterns: `Type::method(` pairs.
const ALLOC_QUALIFIED: &[(&str, &str, &str)] = &[
    ("Vec", "new", "Vec::new"),
    ("Vec", "with_capacity", "Vec::with_capacity"),
    ("Box", "new", "Box::new"),
    ("String", "from", "String::from"),
    ("String", "with_capacity", "String::with_capacity"),
];

/// Allocation-kind method names: `.name(` sites.
const ALLOC_METHODS: &[(&str, &str)] = &[
    ("to_vec", "to_vec"),
    ("clone", "clone"),
    ("to_string", "to_string"),
    ("to_owned", "to_owned"),
];

/// Allocation-kind macros: `name!` sites.
const ALLOC_MACROS: &[(&str, &str)] = &[("format", "format!"), ("vec", "vec!")];

impl Summaries {
    /// Render the call-chain witness for a property of `f`, e.g.
    /// `handle → append_frame → `unwrap()` (crates/storage/src/frame.rs:41)`.
    /// `pick` selects which property's cause chain to follow.
    #[must_use]
    pub fn chain(
        &self,
        graph: &CallGraph,
        f: FnId,
        pick: impl Fn(&FnSummary) -> Option<&Cause>,
    ) -> String {
        let mut parts = vec![graph.defs[f].name.clone()];
        let mut cur = f;
        let mut seen = BTreeSet::new();
        seen.insert(f);
        loop {
            match pick(&self.fns[cur]) {
                Some(Cause::Direct { what, line }) => {
                    parts.push(format!("{what} ({}:{line})", graph.defs[cur].path));
                    break;
                }
                Some(Cause::Call { callee, line: _ }) => {
                    if !seen.insert(*callee) {
                        parts.push("…".to_string()); // recursion in the chain
                        break;
                    }
                    parts.push(graph.defs[*callee].name.clone());
                    cur = *callee;
                }
                None => break,
            }
        }
        parts.join(" → ")
    }

    /// Witness chain for `may_panic`.
    #[must_use]
    pub fn panic_chain(&self, graph: &CallGraph, f: FnId) -> String {
        self.chain(graph, f, |s| s.may_panic.as_ref())
    }

    /// Witness chain for `may_block`.
    #[must_use]
    pub fn block_chain(&self, graph: &CallGraph, f: FnId) -> String {
        self.chain(graph, f, |s| s.may_block.as_ref())
    }
}

/// Render the call graph and summaries as human-readable text (the
/// `--callgraph` subcommand): one block per function with its effect
/// flags, then each call site with its resolution.
#[must_use]
pub fn render_callgraph_text(graph: &CallGraph, s: &Summaries) -> String {
    let mut out = String::new();
    for (f, def) in graph.defs.iter().enumerate() {
        let sum = &s.fns[f];
        let mut flags = Vec::new();
        if sum.may_panic.is_some() {
            flags.push("panics".to_string());
        }
        if sum.may_block.is_some() {
            flags.push("blocks".to_string());
        }
        if sum.forces {
            flags.push("forces".to_string());
        }
        if !sum.locks.is_empty() {
            flags.push(format!("locks={}", sum.locks.len()));
        }
        if !sum.allocs.is_empty() {
            flags.push(format!("allocs={}", sum.allocs.len()));
        }
        let flags = if flags.is_empty() {
            String::new()
        } else {
            format!(" [{}]", flags.join(" "))
        };
        out.push_str(&format!(
            "{}::{} (line {}, scc {}){flags}\n",
            def.path, def.name, def.line, graph.scc_of[f]
        ));
        for site in &graph.calls[f] {
            let res = if site.callees.is_empty() {
                "extern".to_string()
            } else {
                format!(
                    "{} candidate(s){}",
                    site.callees.len(),
                    if site.confident { "" } else { ", any-match" }
                )
            };
            out.push_str(&format!("  -> {} (line {}, {res})\n", site.name, site.line));
        }
    }
    out.push_str(&format!(
        "{} fn(s), {} scc(s), {} summary pass(es)\n",
        graph.defs.len(),
        graph.sccs.len(),
        s.passes
    ));
    out
}

/// Render the resolved call graph as Graphviz dot (`--callgraph --dot`).
#[must_use]
pub fn render_callgraph_dot(graph: &CallGraph) -> String {
    let label = |f: FnId| {
        format!(
            "{}::{}",
            graph.defs[f].path.trim_start_matches("crates/"),
            graph.defs[f].name
        )
    };
    let mut out = String::from("digraph dlog_callgraph {\n  rankdir=LR;\n");
    for f in 0..graph.defs.len() {
        out.push_str(&format!("  \"{}\";\n", label(f)));
    }
    for (f, sites) in graph.calls.iter().enumerate() {
        let mut seen = BTreeSet::new();
        for site in sites {
            for &c in &site.callees {
                if seen.insert(c) {
                    out.push_str(&format!(
                        "  \"{}\" -> \"{}\"{};\n",
                        label(f),
                        label(c),
                        if site.confident {
                            ""
                        } else {
                            " [style=dashed]"
                        }
                    ));
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Render the call graph plus per-fn summaries as JSON
/// (`--callgraph --json`). Schema is stable for CI artifacts: a `fns`
/// array in definition order.
#[must_use]
pub fn render_callgraph_json(graph: &CallGraph, s: &Summaries) -> String {
    use crate::report::json_str;
    let mut out = String::from("{\n  \"fns\": [");
    for (f, def) in graph.defs.iter().enumerate() {
        let sum = &s.fns[f];
        if f > 0 {
            out.push(',');
        }
        let locks = sum
            .locks
            .iter()
            .map(|l| json_str(l))
            .collect::<Vec<_>>()
            .join(", ");
        let calls = graph.calls[f]
            .iter()
            .map(|site| {
                format!(
                    "{{\"name\": {}, \"line\": {}, \"resolved\": {}, \"confident\": {}}}",
                    json_str(&site.name),
                    site.line,
                    site.callees.len(),
                    site.confident
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"name\": {}, \"line\": {}, \"scc\": {}, \
             \"may_panic\": {}, \"may_block\": {}, \"forces\": {}, \
             \"locks\": [{locks}], \"alloc_sites\": {}, \"calls\": [{calls}]}}",
            json_str(&def.path),
            json_str(&def.name),
            def.line,
            graph.scc_of[f],
            sum.may_panic.is_some(),
            sum.may_block.is_some(),
            sum.forces,
            sum.allocs.len()
        ));
    }
    if !graph.defs.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"sccs\": {},\n  \"summary_passes\": {}\n}}\n",
        graph.sccs.len(),
        s.passes
    ));
    out
}

/// Compute summaries for every function of `graph` (built over `files`).
/// Panic seeds covered by a `lint.allow` entry are excluded — they are
/// audited exceptions, not latent hazards to propagate.
#[must_use]
pub fn compute(graph: &CallGraph, files: &[&SourceFile], allow: &Allowlist) -> Summaries {
    let mut fns: Vec<FnSummary> = vec![FnSummary::default(); graph.defs.len()];
    let mut used_allows = BTreeSet::new();

    // --- Seeds: direct effects per function body. ---
    for (fi, file) in files.iter().enumerate() {
        // Innermost-def attribution for this file.
        let defs_here: Vec<FnId> = (0..graph.defs.len())
            .filter(|&d| graph.defs[d].file == fi)
            .collect();
        let innermost = |tok: usize| -> Option<FnId> {
            defs_here
                .iter()
                .copied()
                .filter(|&d| graph.defs[d].open <= tok && tok <= graph.defs[d].close)
                .min_by_key(|&d| graph.defs[d].close - graph.defs[d].open)
        };
        // Panic seeds ride the intraprocedural heuristics, minus
        // allowlisted sites.
        for site in panic_freedom::panic_sites(file) {
            let Some(d) = innermost(site.token) else {
                continue;
            };
            let scope = file.scope_at(site.token);
            if let Some(idx) = allow.matches(panic_freedom::RULE, &file.path, &scope) {
                used_allows.insert(idx);
                continue;
            }
            if fns[d].may_panic.is_none() {
                fns[d].may_panic = Some(Cause::Direct {
                    what: site.kind.label().to_string(),
                    line: file.tokens[site.token].line,
                });
            }
        }
        // Blocking, lock, force, and allocation seeds from the tokens.
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.test[i] {
                continue;
            }
            let Some(d) = innermost(i) else { continue };
            let line = toks[i].line;
            let is_method =
                i > 0 && toks[i - 1].is(".") && toks.get(i + 1).is_some_and(|t| t.is("("));
            if is_method {
                let name = toks[i].text.as_str();
                if blocking_under_lock::BLOCKING_CALLS.contains(&name) && fns[d].may_block.is_none()
                {
                    fns[d].may_block = Some(Cause::Direct {
                        what: format!("`.{name}()`"),
                        line,
                    });
                }
                if name == "force" || name == "force_batch" {
                    fns[d].forces = true;
                }
                if name == "lock" {
                    let recv = (i >= 2)
                        .then(|| crate::dataflow::receiver_path(file, i - 2))
                        .flatten()
                        .unwrap_or_else(|| "<expr>".to_string());
                    fns[d].locks.insert(recv);
                }
                if let Some(&(_, kind)) = ALLOC_METHODS.iter().find(|(m, _)| *m == name) {
                    fns[d].allocs.push(AllocSite { kind, line });
                }
            }
            // `File::open(` / `File::create(` block on the device.
            if toks[i].is("File")
                && toks.get(i + 1).is_some_and(|t| t.is(":"))
                && toks.get(i + 2).is_some_and(|t| t.is(":"))
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.is("open") || t.is("create"))
                && fns[d].may_block.is_none()
            {
                fns[d].may_block = Some(Cause::Direct {
                    what: format!("`File::{}`", toks[i + 3].text),
                    line,
                });
            }
            // `Type::alloc_fn(` allocation sites.
            for &(ty, m, kind) in ALLOC_QUALIFIED {
                if toks[i].is(ty)
                    && toks.get(i + 1).is_some_and(|t| t.is(":"))
                    && toks.get(i + 2).is_some_and(|t| t.is(":"))
                    && toks.get(i + 3).is_some_and(|t| t.is(m))
                    && toks.get(i + 4).is_some_and(|t| t.is("("))
                {
                    fns[d].allocs.push(AllocSite { kind, line });
                }
            }
            // `format!` / `vec!` allocation macros.
            for &(mac, kind) in ALLOC_MACROS {
                if toks[i].is(mac) && toks.get(i + 1).is_some_and(|t| t.is("!")) {
                    fns[d].allocs.push(AllocSite { kind, line });
                }
            }
        }
    }

    // --- Propagation: bottom-up over the condensation. ---
    let mut passes = 0usize;
    let backstop = 4 * graph.defs.len() + graph.sccs.len() + 8;
    for scc in &graph.sccs {
        loop {
            let mut changed = false;
            for &f in scc {
                for site in &graph.calls[f] {
                    for &c in &site.callees {
                        if c == f {
                            continue;
                        }
                        let callee_panics = fns[c].may_panic.is_some();
                        let callee_blocks = fns[c].may_block.is_some();
                        let callee_forces = fns[c].forces;
                        let lock_gap = !fns[c].locks.is_subset(&fns[f].locks);
                        let s_panics = fns[f].may_panic.is_some();
                        let s_blocks = fns[f].may_block.is_some();
                        if callee_panics && !s_panics {
                            fns[f].may_panic = Some(Cause::Call {
                                callee: c,
                                line: site.line,
                            });
                            changed = true;
                        }
                        if callee_blocks && !s_blocks {
                            fns[f].may_block = Some(Cause::Call {
                                callee: c,
                                line: site.line,
                            });
                            changed = true;
                        }
                        if callee_forces && !fns[f].forces {
                            fns[f].forces = true;
                            changed = true;
                        }
                        if lock_gap {
                            let extra: Vec<String> = fns[c].locks.iter().cloned().collect();
                            fns[f].locks.extend(extra);
                            changed = true;
                        }
                    }
                }
            }
            passes += 1;
            if !changed || passes > backstop {
                break;
            }
        }
    }

    Summaries {
        fns,
        passes,
        used_allows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn setup(sources: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect();
        let refs: Vec<&SourceFile> = files.iter().collect();
        let g = CallGraph::build(&refs, &BTreeMap::new());
        (files, g)
    }

    fn summarize(files: &[SourceFile], g: &CallGraph, allow: &str) -> Summaries {
        let refs: Vec<&SourceFile> = files.iter().collect();
        compute(g, &refs, &Allowlist::parse(allow).unwrap())
    }

    #[test]
    fn panic_propagates_with_chain() {
        let (files, g) = setup(&[(
            "crates/types/src/lib.rs",
            "fn leaf(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn mid(x: Option<u8>) -> u8 { leaf(x) }\n\
             fn top(x: Option<u8>) -> u8 { mid(x) }\n\
             fn safe(x: Option<u8>) -> u8 { x.unwrap_or(0) }",
        )]);
        let s = summarize(&files, &g, "");
        let top = g.defs_named("crates/types/src/lib.rs", "top")[0];
        let safe = g.defs_named("crates/types/src/lib.rs", "safe")[0];
        assert!(s.fns[top].may_panic.is_some());
        assert!(s.fns[safe].may_panic.is_none());
        let chain = s.panic_chain(&g, top);
        assert!(
            chain.starts_with("top → mid → leaf → `unwrap()`"),
            "{chain}"
        );
    }

    #[test]
    fn allowlisted_panic_does_not_taint_callers() {
        let (files, g) = setup(&[(
            "crates/server/src/lib.rs",
            "fn ingest() { panic!(\"fail-stop\"); }\nfn caller() { ingest(); }",
        )]);
        let s = summarize(
            &files,
            &g,
            "panic-freedom crates/server/src/lib.rs ingest # deliberate fail-stop\n",
        );
        let caller = g.defs_named("crates/server/src/lib.rs", "caller")[0];
        assert!(s.fns[caller].may_panic.is_none());
    }

    #[test]
    fn blocking_locks_forces_and_allocs_seed() {
        let (files, g) = setup(&[(
            "crates/storage/src/x.rs",
            "fn io(&mut self) { self.dev.force(c); }\n\
             fn guard(&self) { let g = self.state.lock(); drop(g); }\n\
             fn alloc(&self) -> Vec<u8> { let mut v = Vec::new(); v.extend(self.b.to_vec()); \
             let s = format!(\"x\"); drop(s); v }",
        )]);
        let s = summarize(&files, &g, "");
        let io = g.defs_named("crates/storage/src/x.rs", "io")[0];
        let guard = g.defs_named("crates/storage/src/x.rs", "guard")[0];
        let alloc = g.defs_named("crates/storage/src/x.rs", "alloc")[0];
        assert!(s.fns[io].may_block.is_some());
        assert!(s.fns[io].forces);
        assert!(s.fns[guard].locks.contains("self.state"));
        let kinds: Vec<&str> = s.fns[alloc].allocs.iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec!["Vec::new", "to_vec", "format!"]);
    }

    #[test]
    fn recursive_scc_reaches_fixpoint() {
        let (files, g) = setup(&[(
            "crates/server/src/lib.rs",
            "fn a(d: u32) { if d > 0 { b(d); } }\n\
             fn b(d: u32) { a(d - 1); sink.unwrap(); }",
        )]);
        let s = summarize(&files, &g, "");
        let a = g.defs_named("crates/server/src/lib.rs", "a")[0];
        assert!(s.fns[a].may_panic.is_some(), "panic flows around the cycle");
        assert!(s.passes <= 4 * g.defs.len() + g.sccs.len() + 8);
    }
}
