//! A hand-rolled Rust lexer: just enough tokenization for invariant
//! scanning — identifiers, punctuation, literals, lifetimes — with
//! comments and string contents stripped so rule matching never trips
//! over `unwrap()` mentioned in a doc comment or a panic message.
//!
//! The lexer is deliberately forgiving: on malformed input it degrades to
//! single-character punctuation tokens rather than failing, because a
//! lint that cannot parse a file must still not crash the gate.

/// What a token is, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`self`, `fn`, `unwrap`, …).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String/char/numeric literal; the text of string literals is
    /// replaced by `""` so their contents cannot match rule patterns.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Token text (empty-string placeholder for string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is exactly the identifier or punctuation `s`.
    #[must_use]
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenize `text`. Never fails; unterminated constructs consume to EOF.
#[must_use]
pub fn lex(text: &str) -> Vec<Token> {
    let bytes: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let mut depth = 1;
            let start = i;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(&bytes[start..i]);
            continue;
        }
        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // br#".."#, b"..", rb is not valid Rust so it is not handled.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (skip_b, j) = if c == 'b' && bytes[i + 1] == 'r' {
                (true, i + 2)
            } else {
                (false, i + 1)
            };
            let j0 = if skip_b { j } else { i + 1 };
            // Count '#' marks of a raw string opener.
            let mut hashes = 0usize;
            let mut k = j0;
            if c == 'r' || skip_b {
                while k < n && bytes[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
            }
            let is_raw_string = (c == 'r' || skip_b) && k < n && bytes[k] == '"';
            let is_raw_ident = c == 'r' && hashes == 1 && k < n && is_ident_start(bytes[k]);
            if is_raw_string {
                let start = i;
                i = k + 1;
                // Scan for closing quote followed by `hashes` hashes.
                'scan: while i < n {
                    if bytes[i] == '"' {
                        let mut h = 0;
                        while h < hashes && i + 1 + h < n && bytes[i + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            i += 1 + hashes;
                            break 'scan;
                        }
                    }
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"\"".to_string(),
                    line,
                });
                line += count_lines(&bytes[start..i]);
                continue;
            }
            if is_raw_ident {
                let start = k;
                let mut e = k;
                while e < n && is_ident_continue(bytes[e]) {
                    e += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: bytes[start..e].iter().collect(),
                    line,
                });
                i = e;
                continue;
            }
            // Plain byte string b"…".
            if c == 'b' && bytes[i + 1] == '"' {
                let start = i;
                i += 2;
                while i < n && bytes[i] != '"' {
                    if bytes[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"\"".to_string(),
                    line,
                });
                line += count_lines(&bytes[start..i]);
                continue;
            }
            // Byte char b'…'.
            if c == 'b' && bytes[i + 1] == '\'' {
                let start = i;
                i += 2;
                while i < n && bytes[i] != '\'' {
                    if bytes[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: "''".to_string(),
                    line,
                });
                line += count_lines(&bytes[start..i]);
                continue;
            }
            // Fall through: ordinary identifier starting with r/b.
        }
        // String literal.
        if c == '"' {
            let start = i;
            i += 1;
            while i < n && bytes[i] != '"' {
                if bytes[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            out.push(Token {
                kind: TokenKind::Literal,
                text: "\"\"".to_string(),
                line,
            });
            line += count_lines(&bytes[start..i]);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = bytes.get(i + 1).copied();
            let after = bytes.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(ch) if is_ident_start(ch) || ch.is_ascii_digit() => after == Some('\''),
                Some(_) => true, // e.g. '(' — not a valid lifetime start
                None => false,
            };
            if is_char {
                i += 1;
                while i < n && bytes[i] != '\'' {
                    if bytes[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: "''".to_string(),
                    line,
                });
            } else {
                // Lifetime (or loop label): 'name
                let start = i;
                i += 1;
                while i < n && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text: bytes[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(bytes[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number: digits plus alphanumerics (hex, suffixes); `.` is left
        // as punctuation so ranges like `0..4` lex unambiguously.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && is_ident_continue(bytes[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Literal,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: one punctuation character per token.
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = texts("a // unwrap()\n/* panic! /* nested */ */ b \"x.unwrap()\" 'c'");
        assert_eq!(toks, vec!["a", "b", "\"\"", "''"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_and_idents() {
        let toks = texts("r#\"has \"quotes\" inside\"# r#fn b\"bytes\"");
        assert_eq!(toks, vec!["\"\"", "fn", "\"\""]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = texts("buf[0..4] 0xD10C 1_000u64");
        assert_eq!(
            toks,
            vec!["buf", "[", "0", ".", ".", "4", "]", "0xD10C", "1_000u64"]
        );
    }
}
