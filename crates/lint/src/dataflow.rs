//! Forward may-analysis over the statement-level CFG, to a fixpoint.
//!
//! A [`DataflowRule`] tracks per-binding facts (strings like `guard:g`
//! or `sealed:self.active`) through every path of a function body. The
//! engine computes, for each basic block, the union of facts flowing in
//! over all predecessors (a *may* analysis: a fact holds at a point if
//! it holds on **some** path there), iterating until nothing changes.
//! Transfer functions are gen/kill over finite fact sets drawn from the
//! function's own tokens, so the fixpoint terminates; a generous
//! iteration cap backstops the proof obligation.
//!
//! Scope lifetimes are handled by the engine itself: facts carry the
//! token index of the `let` that declared their binding, and the
//! synthetic [`StmtKind::ScopeExit`] statements the CFG builder emits
//! kill every fact whose declaration lies inside the closing scope.

use std::collections::BTreeSet;

use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::source::{FnSpan, SourceFile};

/// One tracked fact at a program point.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fact {
    /// Rule-specific meaning, conventionally `kind:binding`.
    pub key: String,
    /// Token index of the `let` declaring the underlying binding, if it
    /// is a local; used for end-of-scope kills. `None` (fields, params)
    /// means the fact survives every inner scope.
    pub decl: Option<usize>,
    /// Token index where the fact was generated, for diagnostics.
    pub origin: usize,
}

/// The set of facts flowing through a program point.
pub type FactSet = BTreeSet<Fact>;

/// Context handed to a rule for one CFG statement.
pub struct StmtCx<'a> {
    /// The file being analyzed.
    pub file: &'a SourceFile,
    /// The enclosing function.
    pub func: &'a FnSpan,
    /// The statement itself.
    pub stmt: Stmt,
}

impl<'a> StmtCx<'a> {
    /// The statement's tokens.
    #[must_use]
    pub fn tokens(&self) -> &'a [Token] {
        &self.file.tokens[self.stmt.lo..self.stmt.hi.min(self.file.tokens.len())]
    }

    /// Build a violation anchored at statement-relative token `rel`.
    #[must_use]
    pub fn violation(&self, rule: &'static str, rel: usize, message: String) -> Violation {
        let i = (self.stmt.lo + rel).min(self.file.tokens.len().saturating_sub(1));
        Violation {
            rule,
            file: self.file.path.clone(),
            line: self.file.tokens[i].line,
            scope: self.func.name.clone(),
            message,
        }
    }
}

/// A flow-sensitive rule: gen/kill facts per statement, report hazards.
pub trait DataflowRule {
    /// Rule identifier (e.g. `blocking-under-lock`).
    fn rule(&self) -> &'static str;

    /// Workspace-relative path prefixes this rule scans.
    fn targets(&self) -> &'static [&'static str];

    /// Update `facts` across `stmt` (gen/kill). Must be deterministic in
    /// `(stmt, facts)` and monotone in `facts` for the fixpoint to hold.
    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet);

    /// Report violations for `stmt` given the facts flowing *into* it.
    fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>);

    /// Called once per function with the facts reaching the exit block
    /// (for rules about facts that must *not* survive the function).
    fn at_exit(&self, file: &SourceFile, func: &FnSpan, facts: &FactSet, out: &mut Vec<Violation>) {
        let _ = (file, func, facts, out);
    }
}

/// True when `path` falls under one of the rule's target prefixes.
#[must_use]
pub fn in_targets(rule: &dyn DataflowRule, path: &str) -> bool {
    rule.targets().iter().any(|t| path.starts_with(t))
}

/// Iteration cap: fixpoints are guaranteed by monotonicity, but a buggy
/// transfer must degrade to "stop iterating", never to a spin.
const MAX_PASSES: usize = 512;

/// Run one rule over every non-test function of `file`.
#[must_use]
pub fn run_rule(rule: &dyn DataflowRule, file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &file.fns {
        if file.test[f.open] {
            continue;
        }
        analyze_fn(rule, file, f, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.message.as_str()).cmp(&(b.line, b.message.as_str())));
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message && a.scope == b.scope);
    out
}

/// Apply one statement to a fact set: scope-exit kills are handled by
/// the engine, everything else by the rule's transfer function.
fn apply(rule: &dyn DataflowRule, cx: &StmtCx<'_>, facts: &mut FactSet) {
    match cx.stmt.kind {
        StmtKind::ScopeExit => {
            let (lo, hi) = (cx.stmt.lo, cx.stmt.hi);
            facts.retain(|f| !f.decl.is_some_and(|d| d > lo && d < hi));
        }
        StmtKind::Plain => rule.transfer(cx, facts),
    }
}

fn analyze_fn(rule: &dyn DataflowRule, file: &SourceFile, f: &FnSpan, out: &mut Vec<Violation>) {
    let cfg = Cfg::build(file, f);
    let n = cfg.blocks.len();
    let mut inn: Vec<FactSet> = vec![FactSet::new(); n];
    let mut dirty = vec![true; n];

    // Round-robin worklist to the fixpoint.
    let mut passes = 0usize;
    loop {
        let mut changed = false;
        for b in 0..n {
            if !dirty[b] {
                continue;
            }
            dirty[b] = false;
            let mut facts = inn[b].clone();
            for &stmt in &cfg.blocks[b].stmts {
                let cx = StmtCx {
                    file,
                    func: f,
                    stmt,
                };
                apply(rule, &cx, &mut facts);
            }
            for &s in &cfg.blocks[b].succs {
                // in[s] ∪= out[b]
                let before = inn[s].len();
                inn[s].extend(facts.iter().cloned());
                if inn[s].len() != before {
                    dirty[s] = true;
                    changed = true;
                }
            }
        }
        passes += 1;
        if !changed || passes >= MAX_PASSES {
            break;
        }
    }

    // Reporting pass: replay each block once with its stable in-set.
    let reachable = cfg.reachable();
    for b in 0..n {
        if !reachable[b] {
            continue;
        }
        let mut facts = inn[b].clone();
        for &stmt in &cfg.blocks[b].stmts {
            let cx = StmtCx {
                file,
                func: f,
                stmt,
            };
            if stmt.kind == StmtKind::Plain {
                rule.check(&cx, &facts, out);
            }
            apply(rule, &cx, &mut facts);
        }
    }
    rule.at_exit(file, f, &inn[cfg.exit], out);
}

// ---------------------------------------------------------------------------
// Token helpers shared by the dataflow rules.
// ---------------------------------------------------------------------------

/// Names bound by a `let` statement: `(absolute_token_idx, name)` pairs.
/// Handles `let x`, `let mut x`, tuple/struct patterns, and stops
/// collecting at a top-level `:` (type ascription) or `=`.
#[must_use]
pub fn let_bindings(cx: &StmtCx<'_>) -> Vec<(usize, String)> {
    let toks = cx.tokens();
    if !toks.first().is_some_and(|t| t.is("let")) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(1) {
        if t.is("(") || t.is("[") || t.is("{") || t.is("<") {
            depth += 1;
        } else if t.is(")") || t.is("]") || t.is("}") || t.is(">") {
            depth -= 1;
        } else if depth == 0 && (t.is(":") || t.is("=")) {
            break;
        } else if t.kind == TokenKind::Ident
            && !matches!(t.text.as_str(), "let" | "mut" | "ref" | "_" | "box")
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
        {
            out.push((cx.stmt.lo + i, t.text.clone()));
        }
    }
    out
}

/// The dotted receiver path whose last segment ends at token `end`
/// (inclusive), walking back over `ident (. ident|literal)*`:
/// for `self.state.lock()` with `end` at `state`, returns `self.state`.
/// Returns `None` when the receiver is not a simple path (e.g. `foo()`).
#[must_use]
pub fn receiver_path(file: &SourceFile, end: usize) -> Option<String> {
    let toks = &file.tokens;
    let last = toks.get(end)?;
    if last.kind != TokenKind::Ident && last.kind != TokenKind::Literal {
        return None;
    }
    let mut parts = vec![last.text.clone()];
    let mut i = end;
    while i >= 2 && toks[i - 1].is(".") {
        let prev = &toks[i - 2];
        if prev.kind == TokenKind::Ident || prev.kind == TokenKind::Literal {
            parts.push(prev.text.clone());
            i -= 2;
        } else {
            break;
        }
    }
    // A `.` immediately before the path head means the head itself hangs
    // off a non-path expression (`foo().bar`): reject.
    if i >= 1 && toks[i - 1].is(".") {
        return None;
    }
    parts.reverse();
    Some(parts.join("."))
}

/// Statement-relative indices of method-call names: for every
/// `. name (` in the statement, yields the index of `name`.
#[must_use]
pub fn method_calls(cx: &StmtCx<'_>) -> Vec<usize> {
    let toks = cx.tokens();
    (1..toks.len().saturating_sub(1))
        .filter(|&i| toks[i - 1].is(".") && toks[i].kind == TokenKind::Ident && toks[i + 1].is("("))
        .collect()
}

/// True when the statement mentions identifier `name` anywhere.
#[must_use]
pub fn mentions(cx: &StmtCx<'_>, name: &str) -> bool {
    cx.tokens()
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == name)
}

/// Kill every fact whose key is exactly `key` or a dotted extension of
/// it (`sealed:seg` also kills `sealed:seg.inner`).
pub fn kill_key_prefix(facts: &mut FactSet, key: &str) {
    facts.retain(|f| f.key != key && !f.key.starts_with(&format!("{key}.")));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy rule: `let g = …taint()…` gens `t:g`; `clear(g)` kills it;
    /// any statement calling `.sink(` with a live fact is a violation.
    struct Toy;
    impl DataflowRule for Toy {
        fn rule(&self) -> &'static str {
            "toy"
        }
        fn targets(&self) -> &'static [&'static str] {
            &[""]
        }
        fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
            let binds = let_bindings(cx);
            if cx.tokens().iter().any(|t| t.is("taint")) {
                for (decl, name) in &binds {
                    facts.insert(Fact {
                        key: format!("t:{name}"),
                        decl: Some(*decl),
                        origin: *decl,
                    });
                }
            }
            let toks = cx.tokens();
            for i in 0..toks.len() {
                if toks[i].is("clear")
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    kill_key_prefix(facts, &format!("t:{}", toks[i + 2].text));
                }
            }
        }
        fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>) {
            if cx.tokens().iter().any(|t| t.is("sink")) && !facts.is_empty() {
                out.push(cx.violation(self.rule(), 0, "tainted sink".to_string()));
            }
        }
    }

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("fn f() {{ {body} }}");
        let file = SourceFile::parse("x.rs", &src);
        run_rule(&Toy, &file)
    }

    #[test]
    fn straight_line_flow() {
        assert_eq!(run("let g = taint(); x.sink();").len(), 1);
        assert!(run("x.sink(); let g = taint();").is_empty());
        assert!(run("let g = taint(); clear(g); x.sink();").is_empty());
    }

    #[test]
    fn may_analysis_joins_branches() {
        // Fact gen'd on one branch only still reaches the sink (may).
        assert_eq!(
            run("if c { let g = taint(); } else { pure(); } x.sink();").len(),
            0
        );
        // …unless its scope ended: the branch-local binding dies at `}`.
        // A fact on a binding declared *before* the branch survives.
        assert_eq!(
            run("let g = 0; if c { let g = taint(); } x.sink();").len(),
            0
        );
    }

    #[test]
    fn scope_exit_kills_branch_local_facts() {
        // Binding declared inside a bare block dies at the block end.
        assert!(run("{ let g = taint(); } x.sink();").is_empty());
        // Same binding used inside the block is still flagged.
        assert_eq!(run("{ let g = taint(); x.sink(); }").len(), 1);
    }

    #[test]
    fn loop_fixpoint_carries_facts_around() {
        // Fact gen'd on iteration 1 must reach the sink on iteration 2
        // (fact flows around the back edge: binding declared outside).
        let vs = run("loop { x.sink(); let q = 1; taint_free(); if c { break; } }");
        assert!(vs.is_empty());
        let vs = run("let mut g = 0; loop { x.sink(); g = taint_marker(); if c { break; } }");
        // `taint_marker` does not gen (gen needs a `let` + `taint`);
        // rewrite with an inner let whose scope is the loop body:
        assert!(vs.is_empty());
        let vs = run("loop { let g = taint(); x.sink(); if c { break; } }");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn early_return_paths_do_not_leak() {
        assert!(run("if c { return; } x.sink();").is_empty());
        assert_eq!(run("let g = taint(); if c { return; } x.sink();").len(), 1);
    }

    #[test]
    fn helper_let_bindings() {
        let file = SourceFile::parse("x.rs", "fn f() { let (a, b) = p; }");
        let f = file.fn_named("f").unwrap().clone();
        let cfg = Cfg::build(&file, &f);
        let stmt = cfg.blocks[cfg.entry].stmts[0];
        let cx = StmtCx {
            file: &file,
            func: &f,
            stmt,
        };
        let names: Vec<String> = let_bindings(&cx).into_iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn helper_receiver_path() {
        let file = SourceFile::parse("x.rs", "fn f() { self.state.lock(); foo().lock(); }");
        let lock1 = file.tokens.iter().position(|t| t.is("lock")).unwrap();
        assert_eq!(
            receiver_path(&file, lock1 - 2),
            Some("self.state".to_string())
        );
        let lock2 = file
            .tokens
            .iter()
            .enumerate()
            .skip(lock1 + 1)
            .find(|(_, t)| t.is("lock"))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(
            receiver_path(&file, lock2 - 2),
            None,
            "call-result receiver"
        );
    }
}
