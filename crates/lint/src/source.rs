//! Token-stream model of one `.rs` file: brace matching, `#[cfg(test)]`
//! / `#[test]` region masking, and function-span extraction. Rules work
//! on this model instead of raw text.

use crate::lexer::{lex, Token, TokenKind};

/// Span of a `fn` body in token indices (`open`/`close` are the braces).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the matching `}`.
    pub close: usize,
}

/// A lexed source file plus the structural facts rules need.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The token stream (comments and string contents already stripped).
    pub tokens: Vec<Token>,
    /// `test[i]` is true when token `i` is inside a `#[cfg(test)]` item
    /// or a `#[test]` function — rules skip those tokens.
    pub test: Vec<bool>,
    /// All function bodies, outermost first in source order.
    pub fns: Vec<FnSpan>,
    /// `close_brace[i]` maps an opening `{` at token `i` to its `}`.
    close_brace: Vec<Option<usize>>,
}

impl SourceFile {
    /// Lex and analyze `text` as the file at `path`.
    #[must_use]
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let close_brace = match_braces(&tokens);
        let test = test_mask(&tokens, &close_brace);
        let fns = fn_spans(&tokens, &close_brace);
        SourceFile {
            path: path.to_string(),
            tokens,
            test,
            fns,
            close_brace,
        }
    }

    /// The matching `}` for an opening `{` at token index `i`.
    #[must_use]
    pub fn matching_brace(&self, i: usize) -> Option<usize> {
        self.close_brace.get(i).copied().flatten()
    }

    /// Innermost function body containing token `i`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.open <= i && i <= f.close)
            .min_by_key(|f| f.close - f.open)
    }

    /// Scope label for reporting/allowlisting: the enclosing function
    /// name, or `<file>` for file-level findings.
    #[must_use]
    pub fn scope_at(&self, i: usize) -> String {
        self.enclosing_fn(i)
            .map_or_else(|| "<file>".to_string(), |f| f.name.clone())
    }

    /// The body span of the function named `name`, if present.
    #[must_use]
    pub fn fn_named(&self, name: &str) -> Option<&FnSpan> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// First token index at or after `from` where the token texts
    /// `pat` appear consecutively.
    #[must_use]
    pub fn find_seq(&self, from: usize, to: usize, pat: &[&str]) -> Option<usize> {
        let to = to.min(self.tokens.len());
        if pat.is_empty() || from >= to {
            return None;
        }
        (from..to.saturating_sub(pat.len() - 1)).find(|&i| {
            pat.iter()
                .enumerate()
                .all(|(k, p)| self.tokens[i + k].is(p))
        })
    }
}

fn match_braces(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut close = vec![None; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            if t.is("{") {
                stack.push(i);
            } else if t.is("}") {
                if let Some(open) = stack.pop() {
                    close[open] = Some(i);
                }
            }
        }
    }
    close
}

/// True when the attribute token slice (the tokens strictly between `[`
/// and `]`) marks test-only code: `test`, `cfg(test)`, `cfg(all(test,…))`.
fn is_test_attr(attr: &[Token]) -> bool {
    match attr.first() {
        Some(t) if t.is("test") && attr.len() == 1 => true,
        // `cfg(test)` / `cfg(all(test, …))` are test-only; `cfg(not(test))`
        // is live code.
        Some(t) if t.is("cfg") => {
            attr.iter().any(|t| t.is("test")) && !attr.iter().any(|t| t.is("not"))
        }
        _ => false,
    }
}

/// End of the attribute starting at `#` token `i`: index just past `]`.
fn attr_end(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    // Accepts both `#[...]` and `#![...]`.
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is("[")) {
        return None;
    }
    let open = j;
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is("[") {
            depth += 1;
        } else if t.is("]") {
            depth -= 1;
            if depth == 0 {
                return Some((open + 1, k)); // attr content range, exclusive
            }
        }
    }
    None
}

/// End (inclusive) of the item starting at token `i`: the matching `}`
/// of its first top-level `{`, or the first top-level `;`.
fn item_end(tokens: &[Token], close_brace: &[Option<usize>], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is("(") || t.is("[") {
            depth += 1;
        } else if t.is(")") || t.is("]") {
            depth -= 1;
        } else if depth == 0 && t.is("{") {
            return close_brace[j].unwrap_or(tokens.len() - 1);
        } else if depth == 0 && t.is(";") {
            return j;
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

fn test_mask(tokens: &[Token], close_brace: &[Option<usize>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is("#") {
            if let Some((lo, hi)) = attr_end(tokens, i) {
                if is_test_attr(&tokens[lo..hi]) {
                    // Skip any further attributes between this one and
                    // the item itself.
                    let mut j = hi + 1;
                    while j < tokens.len() && tokens[j].is("#") {
                        match attr_end(tokens, j) {
                            Some((_, h)) => j = h + 1,
                            None => break,
                        }
                    }
                    let end = item_end(tokens, close_brace, j);
                    for m in &mut mask[i..=end.min(tokens.len() - 1)] {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = hi + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn fn_spans(tokens: &[Token], close_brace: &[Option<usize>]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !(tokens[i].kind == TokenKind::Ident && tokens[i].is("fn")) {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(` in a function-pointer type
        }
        // Find the body `{` (or `;` for a bodyless trait method) at
        // paren/bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if depth == 0 && t.is(";") {
                break; // declaration without a body
            } else if depth == 0 && t.is("{") {
                if let Some(close) = close_brace[j] {
                    out.push(FnSpan {
                        name: name_tok.text.clone(),
                        open: j,
                        close,
                    });
                }
                break;
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        fn hot(x: &[u8]) -> u8 { x[0] }

        #[cfg(test)]
        mod tests {
            #[test]
            fn cold() { panic!("fine in tests"); }
        }

        #[test]
        fn also_cold() { None::<u8>.unwrap(); }
    "#;

    #[test]
    fn test_regions_are_masked() {
        let f = SourceFile::parse("x.rs", SRC);
        let panic_idx = f.tokens.iter().position(|t| t.is("panic")).unwrap();
        let unwrap_idx = f.tokens.iter().position(|t| t.is("unwrap")).unwrap();
        let hot_idx = f.tokens.iter().position(|t| t.is("hot")).unwrap();
        assert!(f.test[panic_idx]);
        assert!(f.test[unwrap_idx]);
        assert!(!f.test[hot_idx]);
    }

    #[test]
    fn fn_spans_and_scopes() {
        let f = SourceFile::parse("x.rs", SRC);
        assert!(f.fn_named("hot").is_some());
        assert!(f.fn_named("cold").is_some());
        let x_idx = f
            .tokens
            .iter()
            .enumerate()
            .position(|(i, t)| t.is("x") && f.tokens.get(i + 1).is_some_and(|n| n.is("[")))
            .unwrap();
        assert_eq!(f.scope_at(x_idx), "hot");
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse foo::bar;\nfn live() { bar(); }");
        let live = f.tokens.iter().position(|t| t.is("live")).unwrap();
        assert!(!f.test[live]);
        assert!(f.test[0]);
    }
}
