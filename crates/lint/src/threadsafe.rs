//! Static thread-safety analysis: struct/field discovery, thread-escape
//! roots, per-field access maps with locksets, and atomic-ordering roles.
//!
//! This is the third analysis layer of dlog-lint (after the lexical rules
//! and the CFG/dataflow engine): a whole-workspace pass that answers
//! "which state is thread-shared, which lock protects each field, and
//! which atomics carry cross-thread protocol meaning" — the machine-checked
//! precondition for sharding the server event loop (ROADMAP item 3).
//!
//! The pass is deliberately conservative in what it *tracks* (only structs
//! that provably escape to another thread: Arc payloads, statics, structs
//! with sync interior, and anything reachable from those through field
//! types) and in what it *flags* (a field must have a write access outside
//! `&mut self`/owned-`self` methods and an empty intersection of locksets
//! across all shared accesses).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnId};
use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::dataflow::{let_bindings, receiver_path, StmtCx};
use crate::lexer::TokenKind;
use crate::source::{FnSpan, SourceFile};

/// Default bound on interprocedural entry-lockset fixpoint rounds.
/// `--deep` (nightly lane) lifts this to an effectively unbounded value.
pub const DEFAULT_ROUNDS: usize = 64;

/// Atomic integer/bool/ptr type names from `std::sync::atomic`. A fixed
/// list so project structs like `AtomicNetStats` don't misclassify.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Method names that mutate a container or cell in place.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "insert",
    "remove",
    "take",
    "replace",
    "clear",
    "extend",
    "truncate",
    "resize",
    "drain",
    "retain",
    "append",
    "get_mut",
    "entry",
    "sort",
    "sort_unstable",
    "swap",
    "push_str",
    "set",
];

/// Concurrency role of a struct field, from its declared type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// A std atomic (possibly behind `Arc<...>`).
    Atomic,
    /// `Mutex<...>` or `RwLock<...>`.
    Lock,
    /// `Condvar`.
    Condvar,
    /// Anything else — the kind `shared-field-lockset` polices.
    Plain,
}

/// One parsed struct field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name (tuple fields are "0", "1", …).
    pub name: String,
    /// Concurrency role from the declared type.
    pub kind: FieldKind,
    /// Type tokens joined for diagnostics.
    pub ty: String,
    /// For `Lock` fields: the protected struct name, when it names a
    /// struct we track (`Mutex<Inbox>` → `Some("Inbox")`).
    pub content: Option<String>,
    /// 1-based line of the field declaration.
    pub line: u32,
}

/// One parsed struct definition plus its thread-escape status.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name (the synthetic struct "static" holds static items).
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Declared fields, in order.
    pub fields: Vec<FieldInfo>,
    /// Why this struct is considered thread-shared, if it is.
    /// `"arc" | "static" | "sync-interior" | "via <S>"`.
    pub escape: Option<String>,
}

impl StructInfo {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldInfo> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// One syntactic access to a tracked struct's field.
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// Owning struct name.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// Workspace-relative path of the accessing file.
    pub file: String,
    /// 1-based line of the access.
    pub line: u32,
    /// Enclosing function name.
    pub func: String,
    /// Token index of the field name in the file's token stream.
    pub token: usize,
    /// The access mutates the field (assignment, compound assignment,
    /// in-place mutating method, or `&mut` borrow).
    pub write: bool,
    /// Access happens through `&mut self` or owned `self` — the borrow
    /// checker already serialises these, so they don't race.
    pub exclusive: bool,
    /// Lock ids ("Struct.field" / "static.NAME") held at the access,
    /// local facts plus the interprocedural entry lockset.
    pub lockset: BTreeSet<String>,
}

/// One call of an atomic method.
#[derive(Debug, Clone)]
pub struct AtomicAccess {
    /// Workspace-relative path of the accessing file.
    pub file: String,
    /// 1-based line of the access.
    pub line: u32,
    /// Enclosing function name.
    pub func: String,
    /// Token index of the method name.
    pub token: usize,
    /// Atomic method called (`load`, `store`, `fetch_add`, …).
    pub method: String,
    /// Memory ordering argument (`Relaxed`, …, or "default").
    pub ordering: String,
    /// For loads used as a branch condition: the token span of the
    /// guarded body (absolute indices into the file's token stream).
    pub guard_span: Option<(usize, usize)>,
}

/// All discovered accesses to one atomic, keyed by its identity.
#[derive(Debug, Clone, Default)]
pub struct AtomicInfo {
    /// "Struct.field", "static.NAME", or "local.fn.name".
    pub id: String,
    /// Every atomic-method call resolved to this identity.
    pub accesses: Vec<AtomicAccess>,
}

impl AtomicInfo {
    /// "handoff" if any load of this atomic guards a branch, else "counter".
    pub fn role(&self) -> &'static str {
        if self.accesses.iter().any(|a| a.guard_span.is_some()) {
            "handoff"
        } else {
            "counter"
        }
    }
}

/// Result of the whole-workspace thread-safety analysis.
pub struct ThreadSafety {
    /// All parsed structs, escaped or not, by name.
    pub structs: BTreeMap<String, StructInfo>,
    /// All shared-field accesses, sorted by (struct, field, file, token).
    pub accesses: Vec<AccessSite>,
    /// All atomics with at least one access, by identity.
    pub atomics: BTreeMap<String, AtomicInfo>,
    /// fn path -> (entry lockset, witness call chain rendered as a string).
    pub entry_chains: BTreeMap<String, (BTreeSet<String>, String)>,
    /// Functions that spawn threads (`thread::spawn` / `.spawn(`).
    pub thread_roots: Vec<String>,
}

impl ThreadSafety {
    /// Every recorded access to `strukt.field`.
    pub fn field_sites(&self, strukt: &str, field: &str) -> Vec<&AccessSite> {
        self.accesses
            .iter()
            .filter(|a| a.strukt == strukt && a.field == field)
            .collect()
    }

    /// Render the full access map as deterministic JSON — the
    /// `race-report.json` artifact (`dlog-lint --race-report`).
    #[must_use]
    pub fn race_report_json(&self) -> String {
        use crate::report::json_str;
        let set_json = |s: &BTreeSet<String>| -> String {
            let items: Vec<String> = s.iter().map(|l| json_str(l)).collect();
            format!("[{}]", items.join(","))
        };
        let mut structs = Vec::new();
        for (name, s) in &self.structs {
            if s.escape.is_none() {
                continue;
            }
            let mut fields = Vec::new();
            for fi in &s.fields {
                let kind = match fi.kind {
                    FieldKind::Atomic => "atomic",
                    FieldKind::Lock => "lock",
                    FieldKind::Condvar => "condvar",
                    FieldKind::Plain => "plain",
                };
                let common = self
                    .common_lockset(name, &fi.name)
                    .map_or("null".to_string(), |c| set_json(&c));
                let mut sites = Vec::new();
                for a in self.field_sites(name, &fi.name) {
                    sites.push(format!(
                        "{{\"file\":{},\"line\":{},\"fn\":{},\"write\":{},\"exclusive\":{},\"lockset\":{}}}",
                        json_str(&a.file),
                        a.line,
                        json_str(&a.func),
                        a.write,
                        a.exclusive,
                        set_json(&a.lockset)
                    ));
                }
                fields.push(format!(
                    "{{\"name\":{},\"kind\":{},\"common_lockset\":{},\"accesses\":[{}]}}",
                    json_str(&fi.name),
                    json_str(kind),
                    common,
                    sites.join(",")
                ));
            }
            structs.push(format!(
                "{{\"name\":{},\"file\":{},\"escape\":{},\"fields\":[{}]}}",
                json_str(name),
                json_str(&s.file),
                json_str(s.escape.as_deref().unwrap_or("")),
                fields.join(",")
            ));
        }
        let mut atomics = Vec::new();
        for (id, info) in &self.atomics {
            let mut sites = Vec::new();
            for a in &info.accesses {
                sites.push(format!(
                    "{{\"file\":{},\"line\":{},\"fn\":{},\"method\":{},\"ordering\":{},\"guarding\":{}}}",
                    json_str(&a.file),
                    a.line,
                    json_str(&a.func),
                    json_str(&a.method),
                    json_str(&a.ordering),
                    a.guard_span.is_some()
                ));
            }
            atomics.push(format!(
                "{{\"id\":{},\"role\":{},\"accesses\":[{}]}}",
                json_str(id),
                json_str(info.role()),
                sites.join(",")
            ));
        }
        let mut entries = Vec::new();
        for (f, (locks, chain)) in &self.entry_chains {
            entries.push(format!(
                "{{\"fn\":{},\"locks\":{},\"chain\":{}}}",
                json_str(f),
                set_json(locks),
                json_str(chain)
            ));
        }
        let roots: Vec<String> = self.thread_roots.iter().map(|r| json_str(r)).collect();
        format!(
            "{{\n  \"structs\": [{}],\n  \"atomics\": [{}],\n  \"entry_locksets\": [{}],\n  \"thread_roots\": [{}]\n}}\n",
            structs.join(","),
            atomics.join(","),
            entries.join(","),
            roots.join(",")
        )
    }

    /// Intersection of locksets over all non-exclusive accesses to a field.
    /// `None` when the field has no shared accesses.
    pub fn common_lockset(&self, strukt: &str, field: &str) -> Option<BTreeSet<String>> {
        let mut out: Option<BTreeSet<String>> = None;
        for a in self.accesses.iter() {
            if a.strukt != strukt || a.field != field || a.exclusive {
                continue;
            }
            out = Some(match out {
                None => a.lockset.clone(),
                Some(cur) => cur.intersection(&a.lockset).cloned().collect(),
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Struct / static / field parsing
// ---------------------------------------------------------------------------

fn classify_type(ty_tokens: &[String]) -> (FieldKind, Option<String>) {
    let has = |n: &str| ty_tokens.iter().any(|t| t == n);
    if ATOMIC_TYPES.iter().any(|a| has(a)) {
        return (FieldKind::Atomic, None);
    }
    if has("Mutex") || has("RwLock") {
        // The protected type is the ident right after the lock's `<`.
        let mut content = None;
        for (i, t) in ty_tokens.iter().enumerate() {
            if (t == "Mutex" || t == "RwLock") && ty_tokens.get(i + 1).is_some_and(|n| n == "<") {
                content = ty_tokens.get(i + 2).cloned();
            }
        }
        return (FieldKind::Lock, content);
    }
    if has("Condvar") {
        return (FieldKind::Condvar, None);
    }
    (FieldKind::Plain, None)
}

/// Skip a generic parameter list starting at `<`; returns index past `>`.
/// Tolerates `->` inside (its `>` is preceded by `-`).
fn skip_generics(file: &SourceFile, mut i: usize) -> usize {
    let toks = &file.tokens;
    if !toks.get(i).is_some_and(|t| t.is("<")) {
        return i;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is("<") {
            depth += 1;
        } else if toks[i].is(">") && !(i > 0 && toks[i - 1].is("-")) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

fn parse_struct_fields(file: &SourceFile, body_open: usize) -> Vec<FieldInfo> {
    let toks = &file.tokens;
    let close = match file.matching_brace(body_open) {
        Some(c) => c,
        None => return Vec::new(),
    };
    let mut fields = Vec::new();
    let mut i = body_open + 1;
    while i < close {
        // Skip attributes on the field.
        while toks[i].is("#") {
            if toks.get(i + 1).is_some_and(|t| t.is("[")) {
                let mut d = 0usize;
                let mut j = i + 1;
                while j < close {
                    if toks[j].is("[") {
                        d += 1;
                    } else if toks[j].is("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }
        // Skip visibility.
        if toks.get(i).is_some_and(|t| t.is("pub")) {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is("(")) {
                let mut d = 0usize;
                while i < close {
                    if toks[i].is("(") {
                        d += 1;
                    } else if toks[i].is(")") {
                        d -= 1;
                        if d == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        // Field: Ident ':' type-tokens (until ',' at depth 0).
        if i + 1 < close && toks[i].kind == TokenKind::Ident && toks[i + 1].is(":") {
            let name = toks[i].text.clone();
            let line = toks[i].line;
            let mut j = i + 2;
            let mut depth = 0isize;
            let mut ty = Vec::new();
            while j < close {
                let t = &toks[j];
                if depth == 0 && t.is(",") {
                    break;
                }
                if t.is("<") || t.is("(") || t.is("[") {
                    depth += 1;
                } else if t.is(")") || t.is("]") || (t.is(">") && !toks[j - 1].is("-")) {
                    depth -= 1;
                }
                ty.push(t.text.clone());
                j += 1;
            }
            let (kind, content) = classify_type(&ty);
            fields.push(FieldInfo {
                name,
                kind,
                ty: ty.join(""),
                content,
                line,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    fields
}

fn parse_structs(file: &SourceFile, out: &mut BTreeMap<String, StructInfo>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if file.test[i] || !toks[i].is("struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut j = skip_generics(file, i + 2);
        // Skip a `where` clause: scan to `{` or `;` at angle depth 0.
        while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") && !toks[j].is("(") {
            j += 1;
        }
        let fields = if j < toks.len() && toks[j].is("{") {
            parse_struct_fields(file, j)
        } else if j < toks.len() && toks[j].is("(") {
            // Tuple struct: fields named "0", "1", ...
            let mut fields = Vec::new();
            let mut d = 0usize;
            let mut k = j;
            let mut start = j + 1;
            let mut idx = 0usize;
            while k < toks.len() {
                if toks[k].is("(") {
                    d += 1;
                } else if toks[k].is(")") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                } else if d == 1 && toks[k].is(",") {
                    let ty: Vec<String> = toks[start..k].iter().map(|t| t.text.clone()).collect();
                    if !ty.is_empty() {
                        let (kind, content) = classify_type(&ty);
                        fields.push(FieldInfo {
                            name: idx.to_string(),
                            kind,
                            ty: ty.join(""),
                            content,
                            line: toks[start].line,
                        });
                        idx += 1;
                    }
                    start = k + 1;
                }
                k += 1;
            }
            if start < k {
                let ty: Vec<String> = toks[start..k].iter().map(|t| t.text.clone()).collect();
                if !ty.is_empty() {
                    let (kind, content) = classify_type(&ty);
                    fields.push(FieldInfo {
                        name: idx.to_string(),
                        kind,
                        ty: ty.join(""),
                        content,
                        line: toks[start].line,
                    });
                }
            }
            fields
        } else {
            Vec::new()
        };
        // First definition wins; duplicate names across crates are rare
        // and the analysis is per-name.
        out.entry(name.clone()).or_insert(StructInfo {
            name,
            file: file.path.clone(),
            line,
            fields,
            escape: None,
        });
        i += 1;
    }
}

/// Parse `static NAME: Type = ...;` items into synthetic tracked state.
fn parse_statics(
    file: &SourceFile,
    structs: &mut BTreeMap<String, StructInfo>,
    escaped_structs: &mut Vec<(String, String)>,
) {
    let toks = &file.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if file.test[i] || !toks[i].is("static") || toks.get(i + 1).is_some_and(|t| t.is("mut")) {
            i += 1;
            continue;
        }
        let name_tok = &toks[i + 1];
        if name_tok.kind != TokenKind::Ident || !toks[i + 2].is(":") {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut j = i + 3;
        let mut ty = Vec::new();
        while j < toks.len() && !toks[j].is("=") && !toks[j].is(";") {
            ty.push(toks[j].text.clone());
            j += 1;
        }
        let (kind, content) = classify_type(&ty);
        match kind {
            FieldKind::Atomic | FieldKind::Lock => {
                let e = structs.entry("static".to_string()).or_insert(StructInfo {
                    name: "static".to_string(),
                    file: file.path.clone(),
                    line,
                    fields: Vec::new(),
                    escape: Some("static".to_string()),
                });
                if e.field(&name).is_none() {
                    e.fields.push(FieldInfo {
                        name: name.clone(),
                        kind,
                        ty: ty.join(""),
                        content,
                        line,
                    });
                }
            }
            _ => {
                // A static of a struct type marks that struct escaped.
                for t in &ty {
                    escaped_structs.push((t.clone(), "static".to_string()));
                }
            }
        }
        i = j;
    }
}

/// Mark structs as thread-escaped: Arc payloads, statics, sync interior,
/// and the transitive closure through field types.
fn discover_escapes(
    files: &[&SourceFile],
    structs: &mut BTreeMap<String, StructInfo>,
    static_escapes: &[(String, String)],
) {
    let names: BTreeSet<String> = structs.keys().cloned().collect();
    let mut mark: BTreeMap<String, String> = BTreeMap::new();
    // Arc payloads: `Arc < S` or `Arc :: new ( S`.
    for file in files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.test[i] || !toks[i].is("Arc") {
                continue;
            }
            if toks.get(i + 1).is_some_and(|t| t.is("<")) {
                if let Some(t) = toks.get(i + 2) {
                    if names.contains(&t.text) {
                        mark.entry(t.text.clone()).or_insert_with(|| "arc".into());
                    }
                }
            }
            if toks.get(i + 1).is_some_and(|t| t.is(":"))
                && toks.get(i + 2).is_some_and(|t| t.is(":"))
                && toks.get(i + 3).is_some_and(|t| t.is("new"))
                && toks.get(i + 4).is_some_and(|t| t.is("("))
            {
                if let Some(t) = toks.get(i + 5) {
                    if names.contains(&t.text) {
                        mark.entry(t.text.clone()).or_insert_with(|| "arc".into());
                    }
                }
            }
        }
    }
    for (name, why) in static_escapes {
        if names.contains(name) {
            mark.entry(name.clone()).or_insert_with(|| why.clone());
        }
    }
    // Sync interior: a struct holding a lock/atomic/condvar is designed
    // to be shared — track it even if we miss the Arc site.
    for (name, s) in structs.iter() {
        if name == "static" {
            continue;
        }
        if s.fields.iter().any(|f| f.kind != FieldKind::Plain) {
            mark.entry(name.clone())
                .or_insert_with(|| "sync-interior".into());
        }
    }
    // Transitive: escaped S's field types mentioning a known struct T
    // escape T ("via S"). Lock contents are the canonical case.
    loop {
        let mut added = false;
        let snapshot: Vec<(String, Vec<String>)> = structs
            .iter()
            .filter(|(n, _)| mark.contains_key(*n))
            .map(|(n, s)| {
                let mut tys = Vec::new();
                for f in &s.fields {
                    // A JoinHandle payload is handed to exactly one
                    // joiner — ownership transfer, not sharing.
                    if f.ty.contains("JoinHandle") {
                        continue;
                    }
                    if let Some(c) = &f.content {
                        tys.push(c.clone());
                    }
                    for part in names.iter() {
                        if f.ty.contains(part.as_str()) {
                            tys.push(part.clone());
                        }
                    }
                }
                (n.clone(), tys)
            })
            .collect();
        for (src, tys) in snapshot {
            for t in tys {
                if names.contains(&t) && !mark.contains_key(&t) {
                    mark.insert(t.clone(), format!("via {src}"));
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    for (name, why) in mark {
        if let Some(s) = structs.get_mut(&name) {
            s.escape = Some(why);
        }
    }
}

// ---------------------------------------------------------------------------
// Impl spans (for `self.field` resolution)
// ---------------------------------------------------------------------------

/// (open brace, close brace, struct name) for each `impl` block whose
/// subject is a tracked struct.
fn impl_spans(file: &SourceFile, names: &BTreeSet<String>) -> Vec<(usize, usize, String)> {
    let toks = &file.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is("impl") {
            i += 1;
            continue;
        }
        // Scan to the body `{`, remembering idents; subject is the first
        // tracked-struct ident after `for` when present, else the first
        // tracked-struct ident at all.
        let mut j = i + 1;
        let mut subject: Option<String> = None;
        let mut after_for = false;
        let mut saw_for = false;
        while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
            if toks[j].is("for") {
                saw_for = true;
                after_for = true;
                subject = None;
            } else if toks[j].kind == TokenKind::Ident
                && names.contains(&toks[j].text)
                && (subject.is_none() || (saw_for && after_for))
            {
                subject = Some(toks[j].text.clone());
                after_for = false;
            }
            j += 1;
        }
        if j < toks.len() && toks[j].is("{") {
            if let (Some(name), Some(close)) = (subject, file.matching_brace(j)) {
                spans.push((j, close, name));
            }
            i = j + 1;
        } else {
            i = j + 1;
        }
    }
    spans
}

fn impl_ctx(spans: &[(usize, usize, String)], tok: usize) -> Option<&str> {
    // Innermost (smallest) enclosing span wins.
    spans
        .iter()
        .filter(|(o, c, _)| *o < tok && tok < *c)
        .min_by_key(|(o, c, _)| c - o)
        .map(|(_, _, n)| n.as_str())
}

// ---------------------------------------------------------------------------
// Lockset must-analysis over one function body
// ---------------------------------------------------------------------------

/// A live lock guard binding: `let g = x.lock()…` at token `decl`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Guard {
    name: String,
    lock: String,
    decl: usize,
}

type Guards = BTreeSet<Guard>;

/// Iteration backstop for the per-function must-fixpoint.
const MAX_PASSES: usize = 512;

/// Lookup tables derived from the tracked structs.
struct Ctx<'a> {
    structs: &'a BTreeMap<String, StructInfo>,
    /// Lock field name → owning tracked structs (for unique fallback).
    lock_owner: BTreeMap<String, Vec<String>>,
    /// Plain field name → owning *escaped* structs.
    plain_owner: BTreeMap<String, Vec<String>>,
    /// Atomic field name → owning tracked structs.
    atomic_owner: BTreeMap<String, Vec<String>>,
}

impl<'a> Ctx<'a> {
    fn build(structs: &'a BTreeMap<String, StructInfo>) -> Ctx<'a> {
        let mut lock_owner: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut plain_owner: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut atomic_owner: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (name, s) in structs {
            for f in &s.fields {
                let slot = match f.kind {
                    FieldKind::Lock => &mut lock_owner,
                    FieldKind::Atomic => &mut atomic_owner,
                    FieldKind::Plain if s.escape.is_some() => &mut plain_owner,
                    _ => continue,
                };
                slot.entry(f.name.clone()).or_default().push(name.clone());
            }
        }
        Ctx {
            structs,
            lock_owner,
            plain_owner,
            atomic_owner,
        }
    }

    /// Step from struct `cur` through field `field` to the struct it
    /// holds (lock content or a tracked struct named in the field type).
    fn step(&self, cur: &str, field: &str) -> Option<String> {
        let s = self.structs.get(cur)?;
        let fi = s.field(field)?;
        if let Some(c) = &fi.content {
            if self.structs.contains_key(c) {
                return Some(c.clone());
            }
        }
        for name in self.structs.keys() {
            if name != "static" && name != cur && fi.ty.contains(name.as_str()) {
                return Some(name.clone());
            }
        }
        None
    }

    /// The struct a guard over `lock_id` ("S.f") dereferences to.
    fn lock_content(&self, lock_id: &str) -> Option<String> {
        let (s, f) = lock_id.split_once('.')?;
        let c = self.structs.get(s)?.field(f)?.content.clone()?;
        self.structs.contains_key(&c).then_some(c)
    }

    fn static_field_kind(&self, name: &str) -> Option<FieldKind> {
        Some(self.structs.get("static")?.field(name)?.kind)
    }
}

/// Resolve the struct owning the final segment of dotted `path`, walking
/// from `self` (impl context) or a live guard binding, with a
/// unique-field-name fallback over `owner_map`. Returns the owner name.
fn resolve_owner(
    ctx: &Ctx<'_>,
    path: &str,
    guards: &Guards,
    ictx: Option<&str>,
    local_binds: &BTreeSet<String>,
    owner_map: &BTreeMap<String, Vec<String>>,
) -> Option<String> {
    let segs: Vec<&str> = path.split('.').collect();
    let field = *segs.last()?;
    if segs.len() == 1 {
        if ctx.static_field_kind(field).is_some() {
            return Some("static".to_string());
        }
        return None;
    }
    let head = segs[0];
    if local_binds.contains(head) {
        // Bound to a function-local struct literal: not shared state.
        return None;
    }
    let mut cur: Option<String> = None;
    if head == "self" {
        cur = ictx.map(str::to_string);
    } else if let Some(g) = guards.iter().find(|g| g.name == head) {
        cur = ctx.lock_content(&g.lock);
    }
    if let Some(start) = cur {
        let mut c = start;
        let mut ok = true;
        for seg in &segs[1..segs.len() - 1] {
            match ctx.step(&c, seg) {
                Some(n) => c = n,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok
            && ctx
                .structs
                .get(&c)
                .is_some_and(|s| s.field(field).is_some())
        {
            return Some(c);
        }
    }
    match owner_map.get(field) {
        Some(owners) if owners.len() == 1 => Some(owners[0].clone()),
        _ => None,
    }
}

/// Lock identity ("Struct.field" / "static.NAME" / "?.field") for an
/// acquisition whose receiver path is `path`.
fn resolve_lock(
    ctx: &Ctx<'_>,
    path: Option<String>,
    guards: &Guards,
    ictx: Option<&str>,
    local_binds: &BTreeSet<String>,
) -> String {
    let Some(path) = path else {
        return "?.unknown".to_string();
    };
    let segs: Vec<&str> = path.split('.').collect();
    let field = segs.last().copied().unwrap_or("unknown");
    if segs.len() == 1 {
        if ctx.static_field_kind(field) == Some(FieldKind::Lock) {
            return format!("static.{field}");
        }
        if let Some(owners) = ctx.lock_owner.get(field) {
            if owners.len() == 1 {
                return format!("{}.{field}", owners[0]);
            }
        }
        return format!("?.{field}");
    }
    match resolve_owner(ctx, &path, guards, ictx, local_binds, &ctx.lock_owner) {
        Some(owner) => format!("{owner}.{field}"),
        None => format!("?.{field}"),
    }
}

/// Lock/RwLock acquisitions inside statement tokens `[lo, hi)`:
/// `(method token, lock id)` for `.lock()` / `.read()` / `.write()`
/// with empty argument lists. `read`/`write` additionally require the
/// receiver's final segment to name a known lock field, so trait methods
/// like `io::Read::read(buf)` never alias in.
fn stmt_acquisitions(
    file: &SourceFile,
    lo: usize,
    hi: usize,
    guards: &Guards,
    ictx: Option<&str>,
    ctx: &Ctx<'_>,
    local_binds: &BTreeSet<String>,
) -> Vec<(usize, String)> {
    let toks = &file.tokens;
    let hi = hi.min(toks.len());
    let mut out = Vec::new();
    for m in (lo + 1)..hi.saturating_sub(2) {
        if !toks[m - 1].is(".") || toks[m].kind != TokenKind::Ident {
            continue;
        }
        if !toks[m + 1].is("(") || !toks[m + 2].is(")") {
            continue;
        }
        let name = toks[m].text.as_str();
        if name != "lock" && name != "read" && name != "write" {
            continue;
        }
        let path = if m >= 2 {
            receiver_path(file, m - 2)
        } else {
            None
        };
        if name != "lock" {
            let Some(p) = &path else { continue };
            let last = p.rsplit('.').next().unwrap_or("");
            let known = ctx.lock_owner.contains_key(last)
                || ctx.static_field_kind(last) == Some(FieldKind::Lock);
            if !known {
                continue;
            }
        }
        let id = resolve_lock(ctx, path, guards, ictx, local_binds);
        out.push((m, id));
    }
    out
}

/// Function-local bindings initialized from a struct literal
/// (`let x = S { … }`): accesses through them are to local state.
fn local_struct_binds(file: &SourceFile, f: &FnSpan, ctx: &Ctx<'_>) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut out = BTreeSet::new();
    let mut i = f.open;
    while i + 4 < f.close {
        if toks[i].is("let") {
            let mut p = i + 1;
            if toks[p].is("mut") {
                p += 1;
            }
            if toks[p].kind == TokenKind::Ident
                && toks.get(p + 1).is_some_and(|t| t.is("="))
                && toks.get(p + 2).is_some_and(|t| {
                    t.kind == TokenKind::Ident && ctx.structs.contains_key(&t.text)
                })
                && (toks.get(p + 3).is_some_and(|t| t.is("{"))
                    // `let x = S::ctor(…)`: an owned value, not shared.
                    || (toks.get(p + 3).is_some_and(|t| t.is(":"))
                        && toks.get(p + 4).is_some_and(|t| t.is(":"))))
            {
                out.insert(toks[p].text.clone());
            }
        }
        i += 1;
    }
    out
}

/// Transfer one CFG statement across the guard set.
fn transfer(
    file: &SourceFile,
    func: &FnSpan,
    st: &Stmt,
    g: &mut Guards,
    ctx: &Ctx<'_>,
    ictx: Option<&str>,
    local_binds: &BTreeSet<String>,
) {
    match st.kind {
        StmtKind::ScopeExit => {
            g.retain(|gd| !(gd.decl > st.lo && gd.decl < st.hi));
        }
        StmtKind::Plain => {
            let toks = &file.tokens;
            let lo = st.lo;
            let hi = st.hi.min(toks.len());
            // Explicit `drop(g)` releases.
            for i in lo..hi.saturating_sub(3) {
                if toks[i].is("drop")
                    && toks[i + 1].is("(")
                    && toks[i + 2].kind == TokenKind::Ident
                    && toks[i + 3].is(")")
                {
                    let name = toks[i + 2].text.clone();
                    g.retain(|gd| gd.name != name);
                }
            }
            let cx = StmtCx {
                file,
                func,
                stmt: *st,
            };
            let binds = let_bindings(&cx);
            for (_, name) in &binds {
                g.retain(|gd| gd.name != *name);
            }
            let acqs = stmt_acquisitions(file, lo, hi, g, ictx, ctx, local_binds);
            if let (Some((decl, name)), Some((_, lock))) = (binds.first(), acqs.first()) {
                g.insert(Guard {
                    name: name.clone(),
                    lock: lock.clone(),
                    decl: *decl,
                });
            }
        }
    }
}

/// `(exclusive, is_pub)` from the function signature: exclusive means
/// the receiver is `&mut self` or owned `self`, so the borrow checker
/// already serializes the accesses inside.
fn fn_sig(file: &SourceFile, f: &FnSpan) -> (bool, bool) {
    let toks = &file.tokens;
    let mut fn_idx = None;
    let mut k = f.open;
    while k > 0 {
        k -= 1;
        if toks[k].is("fn") && toks.get(k + 1).is_some_and(|t| t.text == f.name) {
            fn_idx = Some(k);
            break;
        }
    }
    let Some(k) = fn_idx else {
        return (false, false);
    };
    let is_pub = (k.saturating_sub(4)..k).any(|i| toks[i].is("pub"));
    let mut j = k + 2;
    while j < f.open && !toks[j].is("(") {
        j += 1;
    }
    let mut p = j + 1;
    let mut saw_amp = false;
    let mut saw_mut = false;
    while p < f.open {
        let t = &toks[p];
        if t.is("&") {
            saw_amp = true;
        } else if t.kind == TokenKind::Lifetime {
            // skip
        } else if t.is("mut") {
            saw_mut = true;
        } else {
            break;
        }
        p += 1;
    }
    let exclusive = toks.get(p).is_some_and(|t| t.is("self")) && (!saw_amp || saw_mut);
    (exclusive, is_pub)
}

/// `(cond_lo, cond_hi, body_lo, body_hi)` for every `if`/`while`
/// condition in the file, token-index spans.
fn cond_spans(file: &SourceFile) -> Vec<(usize, usize, usize, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is("if") && !toks[i].is("while") {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut found = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth -= 1;
            } else if depth == 0 && t.is("{") {
                found = Some(j);
                break;
            } else if depth == 0 && (t.is(";") || t.is("}")) {
                break;
            }
            j += 1;
        }
        if let Some(open) = found {
            if let Some(close) = file.matching_brace(open) {
                out.push((i + 1, open, open, close));
            }
        }
    }
    out
}

/// Whether the field/tuple access ending at token `t` is a write:
/// assignment, compound assignment, in-place mutating method, or a
/// `&mut` borrow of the whole path.
fn is_write(file: &SourceFile, t: usize) -> bool {
    let toks = &file.tokens;
    let t1 = toks.get(t + 1);
    let t2 = toks.get(t + 2);
    let t3 = toks.get(t + 3);
    if t1.is_some_and(|x| x.is("=")) && !t2.is_some_and(|x| x.is("=") || x.is(">")) {
        return true;
    }
    const COMPOUND: &[&str] = &["+", "-", "*", "/", "%", "&", "|", "^"];
    if t1.is_some_and(|x| COMPOUND.iter().any(|op| x.is(op))) && t2.is_some_and(|x| x.is("=")) {
        return true;
    }
    // Shifts: `<<=` / `>>=` lex as three tokens.
    if t1.is_some_and(|x| x.is("<") || x.is(">"))
        && t2.is_some_and(|x| x.is("<") || x.is(">"))
        && t3.is_some_and(|x| x.is("="))
    {
        return true;
    }
    if t1.is_some_and(|x| x.is("."))
        && t2.is_some_and(|x| MUTATING_METHODS.contains(&x.text.as_str()))
        && t3.is_some_and(|x| x.is("("))
    {
        return true;
    }
    // `&mut path.field`: walk back to the path head.
    let mut i = t;
    while i >= 2
        && toks[i - 1].is(".")
        && (toks[i - 2].kind == TokenKind::Ident || toks[i - 2].kind == TokenKind::Literal)
    {
        i -= 2;
    }
    i >= 2 && toks[i - 1].is("mut") && toks[i - 2].is("&")
}

/// Per-function alias map: local binding name → atomic id. Resolves the
/// `let stop2 = stop.clone()` idiom by first attributing struct-literal
/// values (`ServerRunner { stop, … }` maps the local `stop` to
/// `ServerRunner.stop`) and then chasing `let a = b.clone()` /
/// `Arc::clone(&b)` / `let a = b;` chains.
fn atomic_aliases(file: &SourceFile, f: &FnSpan, ctx: &Ctx<'_>) -> BTreeMap<String, String> {
    let toks = &file.tokens;
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    // Pass 1: struct-literal attribution.
    let mut i = f.open;
    while i + 1 < f.close {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && toks[i + 1].is("{") {
            if let Some(s) = ctx.structs.get(&t.text) {
                if s.fields.iter().any(|fl| fl.kind == FieldKind::Atomic) {
                    if let Some(close) = file.matching_brace(i + 1) {
                        let mut d = 0usize;
                        let mut j = i + 1;
                        while j < close.min(f.close) {
                            if toks[j].is("{") {
                                d += 1;
                            } else if toks[j].is("}") {
                                d -= 1;
                            } else if d == 1
                                && toks[j].kind == TokenKind::Ident
                                && (toks[j - 1].is("{") || toks[j - 1].is(","))
                                && s.field(&toks[j].text)
                                    .is_some_and(|fl| fl.kind == FieldKind::Atomic)
                            {
                                let id = format!("{}.{}", s.name, toks[j].text);
                                if toks.get(j + 1).is_some_and(|x| x.is(":")) {
                                    // `field: value` — only a bare ident or
                                    // `ident.clone()` value is an alias.
                                    if toks.get(j + 2).is_some_and(|v| v.kind == TokenKind::Ident)
                                        && toks
                                            .get(j + 3)
                                            .is_some_and(|x| x.is(",") || x.is("}") || x.is("."))
                                    {
                                        map.insert(toks[j + 2].text.clone(), id);
                                    }
                                } else {
                                    // Shorthand `field,`.
                                    map.insert(toks[j].text.clone(), id);
                                }
                            }
                            j += 1;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    // Pass 2 (run to a small closure): `let a = b.clone()` etc.
    for _ in 0..3 {
        let mut j = f.open;
        while j + 3 < f.close {
            if toks[j].is("let") {
                let mut p = j + 1;
                if toks[p].is("mut") {
                    p += 1;
                }
                if toks[p].kind == TokenKind::Ident
                    && toks.get(p + 1).is_some_and(|t| t.is("="))
                    && !toks.get(p + 2).is_some_and(|t| t.is("="))
                {
                    let name = toks[p].text.clone();
                    let v = p + 2;
                    if let Some(vt) = toks.get(v) {
                        if vt.kind == TokenKind::Ident {
                            let src = vt.text.clone();
                            let tail_clone = toks.get(v + 1).is_some_and(|t| t.is("."))
                                && toks.get(v + 2).is_some_and(|t| t.is("clone"));
                            let tail_end = toks.get(v + 1).is_some_and(|t| t.is(";"));
                            // `Arc::clone(&b)`
                            let arc_clone = src == "Arc"
                                && toks.get(v + 3).is_some_and(|t| t.is("clone"))
                                && toks.get(v + 5).is_some_and(|t| t.is("&"))
                                && toks.get(v + 6).is_some_and(|t| t.kind == TokenKind::Ident);
                            if arc_clone {
                                if let Some(id) = map.get(&toks[v + 6].text).cloned() {
                                    map.insert(name, id);
                                }
                            } else if (tail_clone || tail_end) && src != name {
                                if let Some(id) = map.get(&src).cloned() {
                                    map.insert(name, id);
                                }
                            }
                        }
                    }
                }
            }
            j += 1;
        }
    }
    map
}

/// Atomic identity for an access whose receiver path is `path`.
fn resolve_atomic(
    ctx: &Ctx<'_>,
    path: Option<String>,
    guards: &Guards,
    ictx: Option<&str>,
    aliases: &BTreeMap<String, String>,
    fname: &str,
) -> String {
    let Some(path) = path else {
        return format!("local.{fname}.unknown");
    };
    let segs: Vec<&str> = path.split('.').collect();
    let field = segs.last().copied().unwrap_or("unknown");
    if segs.len() == 1 {
        if ctx.static_field_kind(field) == Some(FieldKind::Atomic) {
            return format!("static.{field}");
        }
        if let Some(id) = aliases.get(field) {
            return id.clone();
        }
        if let Some(owners) = ctx.atomic_owner.get(field) {
            if owners.len() == 1 {
                return format!("{}.{field}", owners[0]);
            }
        }
        return format!("local.{fname}.{field}");
    }
    let empty = BTreeSet::new();
    match resolve_owner(ctx, &path, guards, ictx, &empty, &ctx.atomic_owner) {
        Some(owner) => format!("{owner}.{field}"),
        None => format!("local.{fname}.{field}"),
    }
}

/// Mutable accumulator threaded through the per-function passes.
#[derive(Default)]
struct Acc {
    /// Access plus the id of the enclosing fn in the call graph.
    accesses: Vec<(AccessSite, Option<FnId>)>,
    atomics: BTreeMap<String, AtomicInfo>,
    /// (caller, callee, lockset at the call site).
    edges: Vec<(FnId, FnId, BTreeSet<String>)>,
    thread_roots: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn collect_stmt(
    file: &SourceFile,
    func: &FnSpan,
    st: &Stmt,
    g: &Guards,
    ctx: &Ctx<'_>,
    ictx: Option<&str>,
    local_binds: &BTreeSet<String>,
    aliases: &BTreeMap<String, String>,
    conds: &[(usize, usize, usize, usize)],
    fsites: &BTreeMap<usize, (FnId, usize)>,
    graph: &CallGraph,
    def_id: Option<FnId>,
    exclusive: bool,
    acc: &mut Acc,
) {
    let toks = &file.tokens;
    let lo = st.lo;
    let hi = st.hi.min(toks.len());
    let base: BTreeSet<String> = g.iter().map(|gd| gd.lock.clone()).collect();
    let acqs = stmt_acquisitions(file, lo, hi, g, ictx, ctx, local_binds);
    let cx = StmtCx {
        file,
        func,
        stmt: *st,
    };
    let binds = let_bindings(&cx);
    let lockset_at = |t: usize| -> BTreeSet<String> {
        let mut s = base.clone();
        for (m, id) in &acqs {
            if *m < t {
                s.insert(id.clone());
            }
        }
        s
    };
    for t in (lo + 1)..hi {
        // Confident call sites: record the caller's lockset for the
        // interprocedural entry-lockset fixpoint.
        if let (Some(caller), Some(&(cf, si))) = (def_id, fsites.get(&t)) {
            let site = &graph.calls[cf][si];
            if cf == caller {
                let ls = lockset_at(t);
                for &callee in &site.callees {
                    acc.edges.push((caller, callee, ls.clone()));
                }
            }
        }
        let tok = &toks[t];
        if (tok.kind != TokenKind::Ident && tok.kind != TokenKind::Literal) || !toks[t - 1].is(".")
        {
            continue;
        }
        let is_call = toks.get(t + 1).is_some_and(|x| x.is("("));
        if is_call {
            if ATOMIC_METHODS.contains(&tok.text.as_str()) {
                let path = if t >= 2 {
                    receiver_path(file, t - 2)
                } else {
                    None
                };
                let id = resolve_atomic(ctx, path, g, ictx, aliases, &func.name);
                // Ordering: first Ordering ident inside the arg parens.
                let mut ordering = "default".to_string();
                let mut d = 0i32;
                let mut j = t + 1;
                while j < toks.len() {
                    if toks[j].is("(") {
                        d += 1;
                    } else if toks[j].is(")") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    } else if toks[j].kind == TokenKind::Ident
                        && ORDERINGS.contains(&toks[j].text.as_str())
                    {
                        ordering = toks[j].text.clone();
                        break;
                    }
                    j += 1;
                }
                // Does this load guard a branch?
                let mut guard_span = None;
                if tok.text == "load" {
                    for &(clo, chi, blo, bhi) in conds {
                        if clo <= t && t < chi {
                            guard_span = Some((blo, bhi));
                            break;
                        }
                    }
                    if guard_span.is_none() {
                        // One level of `let v = x.load(..);  if v { … }`.
                        if let Some((_, var)) = binds.first() {
                            for &(clo, chi, blo, bhi) in conds {
                                if clo > t
                                    && toks[clo..chi]
                                        .iter()
                                        .any(|x| x.kind == TokenKind::Ident && x.text == *var)
                                {
                                    guard_span = Some((blo, bhi));
                                    break;
                                }
                            }
                        }
                    }
                }
                acc.atomics
                    .entry(id.clone())
                    .or_insert_with(|| AtomicInfo {
                        id,
                        accesses: Vec::new(),
                    })
                    .accesses
                    .push(AtomicAccess {
                        file: file.path.clone(),
                        line: tok.line,
                        func: func.name.clone(),
                        token: t,
                        method: tok.text.clone(),
                        ordering,
                        guard_span,
                    });
            }
            continue;
        }
        // Field access.
        let path = receiver_path(file, t);
        let owner = match &path {
            Some(p) => resolve_owner(ctx, p, g, ictx, local_binds, &ctx.plain_owner),
            None => match ctx.plain_owner.get(&tok.text) {
                // Receiver hangs off a call result (`….read().unwrap().f`):
                // fall back to the unique owner of the field name.
                Some(owners) if owners.len() == 1 => Some(owners[0].clone()),
                _ => None,
            },
        };
        let Some(owner) = owner else { continue };
        let Some(s) = ctx.structs.get(&owner) else {
            continue;
        };
        if s.escape.is_none() {
            continue;
        }
        let Some(fi) = s.field(&tok.text) else {
            continue;
        };
        if fi.kind != FieldKind::Plain {
            continue;
        }
        // A method call on a field whose type is itself a tracked struct
        // (`core.trace.push(…)` where `trace: TraceLog`) mutates *inside*
        // that struct — its own fields are analyzed on their own terms,
        // so don't book it as a raw write of the outer field.
        if toks.get(t + 1).is_some_and(|x| x.is("."))
            && toks.get(t + 3).is_some_and(|x| x.is("("))
            && ctx.step(&owner, &tok.text).is_some()
        {
            continue;
        }
        acc.accesses.push((
            AccessSite {
                strukt: owner,
                field: tok.text.clone(),
                file: file.path.clone(),
                line: tok.line,
                func: func.name.clone(),
                token: t,
                write: is_write(file, t),
                exclusive,
                lockset: lockset_at(t),
            },
            def_id,
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_fn(
    file: &SourceFile,
    f: &FnSpan,
    ctx: &Ctx<'_>,
    impls: &[(usize, usize, String)],
    conds: &[(usize, usize, usize, usize)],
    fsites: &BTreeMap<usize, (FnId, usize)>,
    graph: &CallGraph,
    def_id: Option<FnId>,
    acc: &mut Acc,
) {
    let ictx = impl_ctx(impls, f.open);
    let (exclusive, _) = fn_sig(file, f);
    let aliases = atomic_aliases(file, f, ctx);
    let local_binds = local_struct_binds(file, f, ctx);
    let cfg = Cfg::build(file, f);
    let n = cfg.blocks.len();
    // Must-analysis fixpoint: in[b] = ∩ over preds; None is ⊤.
    let mut inn: Vec<Option<Guards>> = vec![None; n];
    inn[cfg.entry] = Some(Guards::new());
    let mut work = vec![cfg.entry];
    let mut passes = 0usize;
    while let Some(b) = work.pop() {
        passes += 1;
        if passes > MAX_PASSES * n.max(1) {
            break;
        }
        let Some(mut g) = inn[b].clone() else {
            continue;
        };
        for st in &cfg.blocks[b].stmts {
            transfer(file, f, st, &mut g, ctx, ictx, &local_binds);
        }
        for &s in &cfg.blocks[b].succs {
            let new: Guards = match &inn[s] {
                None => g.clone(),
                Some(cur) => cur.intersection(&g).cloned().collect(),
            };
            if inn[s].as_ref() != Some(&new) {
                inn[s] = Some(new);
                work.push(s);
            }
        }
    }
    // Reporting pass over the stable in-sets.
    let reach = cfg.reachable();
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        let Some(mut g) = inn[bi].clone() else {
            continue;
        };
        for st in &block.stmts {
            if st.kind == StmtKind::Plain {
                collect_stmt(
                    file,
                    f,
                    st,
                    &g,
                    ctx,
                    ictx,
                    &local_binds,
                    &aliases,
                    conds,
                    fsites,
                    graph,
                    def_id,
                    exclusive,
                    acc,
                );
            }
            transfer(file, f, st, &mut g, ctx, ictx, &local_binds);
        }
    }
    // Thread-spawn roots (reporting only).
    let toks = &file.tokens;
    let mut spawns = false;
    for i in f.open..f.close.min(toks.len()) {
        if toks[i].is("spawn")
            && toks.get(i + 1).is_some_and(|t| t.is("("))
            && i >= 1
            && (toks[i - 1].is(".") || toks[i - 1].is(":"))
        {
            spawns = true;
            break;
        }
    }
    if spawns {
        acc.thread_roots.push(format!("{}::{}", file.path, f.name));
    }
}

// ---------------------------------------------------------------------------
// Whole-workspace analysis
// ---------------------------------------------------------------------------

/// Is `defs[i]` declared `pub`? Pub functions may be entered without any
/// caller we can see, so their entry lockset is pinned to ∅.
fn is_pub_def(files: &[&SourceFile], graph: &CallGraph, i: FnId) -> bool {
    let d = &graph.defs[i];
    let Some(file) = files.iter().find(|f| f.path == d.path) else {
        return true; // unknown file: be conservative
    };
    file.fns
        .iter()
        .find(|f| f.open == d.open)
        .map(|f| fn_sig(file, f).1)
        .unwrap_or(true)
}

/// Run the thread-safety analysis over `files`. `rounds` bounds the
/// interprocedural entry-lockset fixpoint (`None` = effectively
/// unbounded, the `--deep` nightly mode).
#[must_use]
pub fn analyze(files: &[&SourceFile], graph: &CallGraph, rounds: Option<usize>) -> ThreadSafety {
    let mut structs = BTreeMap::new();
    for f in files {
        parse_structs(f, &mut structs);
    }
    let mut static_escapes = Vec::new();
    for f in files {
        parse_statics(f, &mut structs, &mut static_escapes);
    }
    discover_escapes(files, &mut structs, &static_escapes);
    let ctx = Ctx::build(&structs);
    let names: BTreeSet<String> = structs.keys().cloned().collect();

    let mut def_of: BTreeMap<(&str, usize), FnId> = BTreeMap::new();
    for (i, d) in graph.defs.iter().enumerate() {
        def_of.insert((d.path.as_str(), d.open), i);
    }
    let mut sites_by_file: BTreeMap<&str, BTreeMap<usize, (FnId, usize)>> = BTreeMap::new();
    for (fi, calls) in graph.calls.iter().enumerate() {
        for (si, site) in calls.iter().enumerate() {
            if site.confident && !site.callees.is_empty() {
                sites_by_file
                    .entry(graph.defs[fi].path.as_str())
                    .or_default()
                    .insert(site.token, (fi, si));
            }
        }
    }

    let mut acc = Acc::default();
    let empty_sites = BTreeMap::new();
    for file in files {
        let impls = impl_spans(file, &names);
        let conds = cond_spans(file);
        let fsites = sites_by_file
            .get(file.path.as_str())
            .unwrap_or(&empty_sites);
        for f in &file.fns {
            if file.test[f.open] {
                continue;
            }
            let did = def_of.get(&(file.path.as_str(), f.open)).copied();
            analyze_fn(file, f, &ctx, &impls, &conds, fsites, graph, did, &mut acc);
        }
    }

    // Interprocedural entry-lockset fixpoint over confident call edges:
    // entry(callee) = ∩ over call sites of (entry(caller) ∪ site lockset),
    // with pub fns and fns without incoming confident edges pinned to ∅
    // (they may be entered lock-free from anywhere).
    let n = graph.defs.len();
    let mut incoming: Vec<Vec<(FnId, &BTreeSet<String>)>> = vec![Vec::new(); n];
    for (caller, callee, set) in &acc.edges {
        incoming[*callee].push((*caller, set));
    }
    let forced: Vec<bool> = (0..n)
        .map(|i| incoming[i].is_empty() || is_pub_def(files, graph, i))
        .collect();
    let mut entry: Vec<Option<BTreeSet<String>>> =
        (0..n).map(|i| forced[i].then(BTreeSet::new)).collect();
    let mut parent: Vec<Option<FnId>> = vec![None; n];
    let max_rounds = rounds.unwrap_or(1_000_000).max(1);
    for _ in 0..max_rounds {
        let mut changed = false;
        for callee in 0..n {
            if forced[callee] {
                continue;
            }
            let mut meet: Option<BTreeSet<String>> = None;
            let mut who: Option<FnId> = None;
            for (caller, set) in &incoming[callee] {
                let Some(ce) = &entry[*caller] else { continue };
                let mut contrib: BTreeSet<String> = ce.clone();
                contrib.extend(set.iter().cloned());
                meet = Some(match meet {
                    None => {
                        who = Some(*caller);
                        contrib
                    }
                    Some(cur) => cur.intersection(&contrib).cloned().collect(),
                });
            }
            if meet.is_some() && entry[callee] != meet {
                entry[callee] = meet;
                parent[callee] = who;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Fold entry locksets into the recorded accesses; render witness
    // chains for functions that inherit a non-empty lockset.
    let mut entry_chains = BTreeMap::new();
    for (i, slot) in entry.iter().enumerate().take(n) {
        let Some(e) = slot else { continue };
        if e.is_empty() {
            continue;
        }
        let mut chain = vec![graph.defs[i].name.clone()];
        let mut cur = i;
        for _ in 0..8 {
            match parent[cur] {
                Some(p) if p != cur => {
                    chain.push(graph.defs[p].name.clone());
                    cur = p;
                }
                _ => break,
            }
        }
        let key = format!("{}::{}", graph.defs[i].path, graph.defs[i].name);
        entry_chains.insert(key, (e.clone(), chain.join(" ← ")));
    }
    let mut accesses = Vec::with_capacity(acc.accesses.len());
    for (mut site, did) in acc.accesses {
        if let Some(i) = did {
            if let Some(e) = &entry[i] {
                site.lockset.extend(e.iter().cloned());
            }
        }
        accesses.push(site);
    }
    accesses.sort_by(|a, b| {
        (&a.strukt, &a.field, &a.file, a.token).cmp(&(&b.strukt, &b.field, &b.file, b.token))
    });
    acc.thread_roots.sort();
    acc.thread_roots.dedup();

    ThreadSafety {
        structs,
        accesses,
        atomics: acc.atomics,
        entry_chains,
        thread_roots: acc.thread_roots,
    }
}
