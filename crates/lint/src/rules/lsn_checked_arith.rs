//! `lsn-checked-arith`: no silent wraparound on LSN/epoch/sequence
//! arithmetic in hot-path crates.
//!
//! §3.1.2's present-flag scheme works because epochs and LSNs are
//! *monotone*: a wrapped epoch would make stale records look fresh, and
//! a wrapped LSN corrupts interval arithmetic everywhere. `Lsn::next`
//! and `Epoch::next` already use `checked_add`; this rule keeps raw
//! `+`/`-`/`+=`/`-=` off every other LSN-shaped value. It is
//! flow-sensitive where it needs to be: a binding initialized from an
//! LSN-shaped expression carries a fact, so `let hi = seg.lo; … hi + 1`
//! is caught even though `hi` alone looks innocent.

use crate::dataflow::{kill_key_prefix, let_bindings, DataflowRule, Fact, FactSet, StmtCx};
use crate::lexer::TokenKind;
use crate::report::Violation;

/// Rule identifier.
pub const RULE: &str = "lsn-checked-arith";

/// The rule as a [`DataflowRule`] instance.
pub struct LsnCheckedArith;

/// True when an identifier names an LSN/epoch/sequence-shaped value.
fn lsn_shaped(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("lsn")
        || lower.contains("epoch")
        || lower.contains("seq")
        || lower == "generation"
        || name == "Lsn"
        || name == "Epoch"
}

/// Identifier segments of the operand adjacent to the operator at `i`:
/// walk up to six tokens in direction `back`, collecting identifiers and
/// crossing literals, `.`, and grouping punctuation; any other token
/// (another operator, `=`, `;`, …) ends the operand.
fn operand_idents(toks: &[crate::lexer::Token], i: usize, back: bool) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = i as isize;
    let step: isize = if back { -1 } else { 1 };
    for _ in 0..6 {
        k += step;
        if k < 0 {
            break;
        }
        let Some(t) = toks.get(k as usize) else { break };
        match t.kind {
            TokenKind::Ident => out.push(t.text.clone()),
            TokenKind::Literal => {}
            TokenKind::Punct if matches!(t.text.as_str(), "." | "(" | ")" | "[" | "]") => {}
            _ => break,
        }
    }
    out
}

impl DataflowRule for LsnCheckedArith {
    fn rule(&self) -> &'static str {
        RULE
    }

    fn targets(&self) -> &'static [&'static str] {
        &[
            "crates/server/src",
            "crates/net/src",
            "crates/storage/src",
            "crates/append-forest/src",
            "crates/obs/src",
            "crates/types/src",
            "crates/archive/src",
            "crates/mc/src",
        ]
    }

    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
        let toks = cx.tokens();
        let binds = let_bindings(cx);
        if binds.is_empty() {
            return;
        }
        for (_, name) in &binds {
            kill_key_prefix(facts, &format!("lsn:{name}"));
        }
        // RHS mentions an LSN-shaped name or constructor → the binding
        // itself is LSN-shaped.
        let rhs_lsn = toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && lsn_shaped(&t.text));
        if !rhs_lsn {
            return;
        }
        for (decl, name) in binds {
            facts.insert(Fact {
                key: format!("lsn:{name}"),
                decl: Some(decl),
                origin: decl,
            });
        }
    }

    fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>) {
        let toks = cx.tokens();
        for i in 0..toks.len() {
            let t = &toks[i];
            if !(t.is("+") || t.is("-")) {
                continue;
            }
            // `->` arrows, `+=`/`-=` handled below, `..`/unary minus out.
            if t.is("-") && toks.get(i + 1).is_some_and(|n| n.is(">")) {
                continue;
            }
            let compound = toks.get(i + 1).is_some_and(|n| n.is("="));
            // Unary sign: previous token is an operator/opening punct.
            let prev_ok = i > 0
                && match toks[i - 1].kind {
                    TokenKind::Ident => true,
                    TokenKind::Literal => true,
                    TokenKind::Punct => toks[i - 1].is(")") || toks[i - 1].is("]"),
                    TokenKind::Lifetime => false,
                };
            if !prev_ok {
                continue;
            }
            let mut names = operand_idents(toks, i, true);
            names.extend(operand_idents(
                toks,
                if compound { i + 1 } else { i },
                false,
            ));
            let hit = names
                .iter()
                .find(|n| lsn_shaped(n) || facts.iter().any(|f| f.key == format!("lsn:{}", n)));
            if let Some(name) = hit {
                let op = if compound {
                    format!("{}=", t.text)
                } else {
                    t.text.clone()
                };
                out.push(cx.violation(
                    RULE,
                    i,
                    format!(
                        "raw `{op}` on LSN/epoch/sequence value `{name}`; use \
                         `checked_{}`/`saturating_{}` — §3.1.2 monotonicity depends on \
                         no silent wraparound",
                        if t.is("+") { "add" } else { "sub" },
                        if t.is("+") { "add" } else { "sub" },
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::run_rule;
    use crate::source::SourceFile;

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("fn f(&mut self) {{ {body} }}");
        let file = SourceFile::parse("crates/storage/src/x.rs", &src);
        run_rule(&LsnCheckedArith, &file)
    }

    #[test]
    fn raw_add_on_lsn_name_fires() {
        let vs = run("let next = lsn.0 + 1;");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("checked_add"));
    }

    #[test]
    fn compound_assign_fires() {
        let vs = run("self.next_seq += 1;");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("+="));
    }

    #[test]
    fn checked_and_saturating_are_clean() {
        assert!(
            run("let next = lsn.0.checked_add(1)?; let p = epoch.0.saturating_sub(1);").is_empty()
        );
    }

    #[test]
    fn flow_tracks_lsn_shaped_bindings() {
        let vs = run("let hi = interval.hi_lsn; let x = hi - 1;");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn unrelated_arithmetic_is_clean() {
        assert!(run("let n = a + b; let m = count - 1; let p = -x;").is_empty());
    }

    #[test]
    fn arrow_and_ranges_are_clean() {
        assert!(run("let f: fn(u8) -> u8 = g; for i in 0..n { use_it(i); }").is_empty());
    }
}
