//! `forbid-unsafe`: every first-party crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! The workspace has no unsafe blocks outside the vendored dependency
//! stubs, and the storage/wire invariants the other rules defend assume
//! memory safety holds. `forbid` (not `deny`) makes the guarantee
//! unoverridable by inner `allow` attributes; this rule makes it
//! unremovable without an audited `lint.allow` entry.

use crate::report::Violation;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "forbid-unsafe";

/// Check one crate root (`src/lib.rs`) for the attribute.
#[must_use]
pub fn check(root: &SourceFile) -> Vec<Violation> {
    let pat = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    if root.find_seq(0, root.tokens.len(), &pat).is_some() {
        return Vec::new();
    }
    vec![Violation {
        rule: RULE,
        file: root.path.clone(),
        line: 1,
        scope: "<file>".to_string(),
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn present_attribute_is_clean() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn missing_attribute_fires() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![warn(missing_docs)]\npub fn f() {}\n",
        );
        let vs = check(&f);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("forbid(unsafe_code)"));
    }
}
