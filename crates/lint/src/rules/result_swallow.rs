//! `result-swallow`: the `Result` of a durability call must be consumed.
//!
//! §4.2's contract is *ack-after-force*: a server may only acknowledge
//! what is durably on media. A swallowed force/flush/upload error breaks
//! that guarantee at runtime with no trace — the code path still acks,
//! the bytes are gone. Three shapes are flagged:
//!
//! 1. `let _ = x.force(…);` — explicit discard,
//! 2. a bare `x.force(…);` / `x.force(…).ok();` statement — implicit
//!    discard (`.ok()` launders the error into an ignored `Option`),
//! 3. flow-sensitively: `let r = x.force(…);` where some path to the
//!    function exit never mentions `r` again — the binding *looks*
//!    consumed but is dead on that path.
//!
//! Consumption means `?`, a `match`/`if` inspection, passing it on, or
//! returning it. Deliberate best-effort discards (e.g. directory-sync
//! after a crash-safe rename) get `lint.allow` entries.

use crate::dataflow::{
    kill_key_prefix, let_bindings, mentions, method_calls, DataflowRule, Fact, FactSet, StmtCx,
};
use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::{FnSpan, SourceFile};

/// Rule identifier.
pub const RULE: &str = "result-swallow";

/// Calls whose `Result` carries a durability promise.
const DURABLE_CALLS: &[&str] = &[
    "force",
    "flush",
    "sync",
    "sync_all",
    "sync_data",
    "upload",
    "put",
];

/// The rule as a [`DataflowRule`] instance.
pub struct ResultSwallow;

/// Statement-relative indices of durable calls in this statement.
fn durable_calls(cx: &StmtCx<'_>) -> Vec<usize> {
    let toks = cx.tokens();
    method_calls(cx)
        .into_iter()
        .filter(|&i| DURABLE_CALLS.contains(&toks[i].text.as_str()))
        .collect()
}

/// True when the statement consumes the call result in place: `?`
/// propagation or a panicking extractor (`expect`/`unwrap` — themselves
/// policed by `panic-freedom`).
fn consumed_in_stmt(cx: &StmtCx<'_>) -> bool {
    cx.tokens()
        .iter()
        .any(|t| t.is("?") || t.is("expect") || t.is("unwrap"))
}

impl DataflowRule for ResultSwallow {
    fn rule(&self) -> &'static str {
        RULE
    }

    fn targets(&self) -> &'static [&'static str] {
        &[
            "crates/server/src",
            "crates/net/src",
            "crates/storage/src",
            "crates/append-forest/src",
            "crates/obs/src",
            "crates/archive/src",
        ]
    }

    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
        let toks = cx.tokens();
        // Any mention of a tracked binding consumes it — inspecting,
        // passing, or returning the Result all count.
        let mentioned: Vec<String> = facts
            .iter()
            .filter_map(|f| f.key.strip_prefix("res:").map(str::to_string))
            .filter(|name| mentions(cx, name))
            .collect();
        for name in mentioned {
            kill_key_prefix(facts, &format!("res:{name}"));
        }
        // `let r = x.force(…);` with no in-statement consumption gens an
        // unconsumed-result fact on `r`.
        if consumed_in_stmt(cx) || durable_calls(cx).is_empty() {
            return;
        }
        let binds = let_bindings(cx);
        // `let _ = …` and bare statements are reported directly; only a
        // real named binding needs flow tracking.
        let Some((decl, name)) = binds.first().cloned() else {
            return;
        };
        if name == "_" {
            return;
        }
        let origin = cx.stmt.lo + durable_calls(cx)[0];
        if toks.first().is_some_and(|t| t.is("let")) {
            facts.insert(Fact {
                key: format!("res:{name}"),
                decl: Some(decl),
                origin,
            });
        }
    }

    fn check(&self, cx: &StmtCx<'_>, _facts: &FactSet, out: &mut Vec<Violation>) {
        let toks = cx.tokens();
        let calls = durable_calls(cx);
        if calls.is_empty() || consumed_in_stmt(cx) {
            return;
        }
        let call_name = |i: usize| toks[i].text.clone();
        // Shape 1: `let _ = x.force(…);`
        if toks.len() >= 3 && toks[0].is("let") && toks[1].is("_") && toks[2].is("=") {
            out.push(cx.violation(
                RULE,
                calls[0],
                format!(
                    "`let _ =` discards the Result of `.{}()`; a swallowed durability error \
                     breaks ack-after-force (§4.2) — handle it or allowlist with justification",
                    call_name(calls[0])
                ),
            ));
            return;
        }
        // Shape 2: a bare expression statement. Anything that starts
        // with a keyword that consumes the value (let/if/match/return/
        // while/for), or assigns it, is not bare.
        let first = &toks[0];
        let consuming_start = first.kind == TokenKind::Ident
            && matches!(
                first.text.as_str(),
                "let" | "if" | "match" | "return" | "while" | "for" | "else" | "break" | "continue"
            );
        let has_assign = (0..toks.len()).any(|i| {
            toks[i].is("=")
                && !toks.get(i + 1).is_some_and(|t| t.is("="))
                && (i == 0
                    || !matches!(
                        toks[i - 1].text.as_str(),
                        "=" | "!" | "<" | ">" | "+" | "-" | "*" | "/"
                    ))
        });
        if consuming_start || has_assign {
            return;
        }
        // A tail expression (no trailing `;`) returns its value to the
        // enclosing block — that is consumption, not a discard.
        if !cx.file.tokens.get(cx.stmt.hi).is_some_and(|t| t.is(";")) {
            return;
        }
        // `.ok()` after the call is still a discard when the statement
        // ends there; so is the bare call itself.
        out.push(cx.violation(
            RULE,
            calls[0],
            format!(
                "Result of `.{}()` is discarded by this statement; a swallowed durability \
                 error breaks ack-after-force (§4.2)",
                call_name(calls[0])
            ),
        ));
    }

    fn at_exit(&self, file: &SourceFile, func: &FnSpan, facts: &FactSet, out: &mut Vec<Violation>) {
        for f in facts {
            let Some(name) = f.key.strip_prefix("res:") else {
                continue;
            };
            out.push(Violation {
                rule: RULE,
                file: file.path.clone(),
                line: file.tokens[f.origin].line,
                scope: func.name.clone(),
                message: format!(
                    "Result of `.{}()` bound to `{name}` is never consumed on some path to \
                     the end of `{}` (§4.2 ack-after-force)",
                    file.tokens[f.origin].text, func.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::run_rule;
    use crate::source::SourceFile;

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("fn f(&mut self) -> Result<(), E> {{ {body} }}");
        let file = SourceFile::parse("crates/storage/src/x.rs", &src);
        run_rule(&ResultSwallow, &file)
    }

    #[test]
    fn let_underscore_fires() {
        let vs = run("let _ = self.dev.force(c); Ok(())");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("let _ ="));
    }

    #[test]
    fn bare_statement_fires() {
        let vs = run("self.dev.force(c); Ok(())");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn ok_laundering_fires() {
        let vs = run("self.dev.force(c).ok(); Ok(())");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn question_mark_is_consumption() {
        assert!(run("self.dev.force(c)?; Ok(())").is_empty());
    }

    #[test]
    fn tail_expression_is_consumption() {
        assert!(run("self.dev.force(c)").is_empty());
    }

    #[test]
    fn inspected_result_is_consumption() {
        assert!(run("let r = self.dev.force(c); if r.is_err() { fail(); } Ok(())").is_empty());
        assert!(run("let r = self.dev.force(c); r").is_empty());
        assert!(
            run("match self.dev.force(c) { Ok(()) => {}, Err(e) => log(e), } Ok(())").is_empty()
        );
    }

    #[test]
    fn dead_binding_on_one_path_fires() {
        let vs = run("let r = self.dev.force(c); if fast { return Ok(()); } check(r); Ok(())");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("never consumed on some path"));
    }

    #[test]
    fn non_durable_calls_are_ignored() {
        assert!(run("self.counter.bump(); let _ = self.maybe(); Ok(())").is_empty());
    }
}
