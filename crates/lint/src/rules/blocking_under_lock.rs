//! `blocking-under-lock`: no disk or network blocking while a mutex
//! guard is live.
//!
//! §4.1's latency story assumes the per-server critical sections are
//! memory-only: a force to disk or a send/recv while a `.lock()` guard
//! is held serializes every other client behind one device operation
//! (and, combined with the lock-order graph, is the classic recipe for
//! an I/O-shaped deadlock). The lexical `lock-order` rule sees *which*
//! locks are taken, not *what happens while they are held* — that is a
//! path question, so this rule rides the dataflow engine: a `let`-bound
//! guard gens a fact killed by `drop(guard)`, shadowing, or the end of
//! its scope; any statement that performs a blocking call while a guard
//! fact is live is flagged on that path.

use crate::dataflow::{
    kill_key_prefix, let_bindings, method_calls, DataflowRule, Fact, FactSet, StmtCx,
};
use crate::report::Violation;

/// Rule identifier.
pub const RULE: &str = "blocking-under-lock";

/// Method names that block on a device or peer. Shared with the
/// interprocedural summary seeds ([`crate::summary`]).
pub const BLOCKING_CALLS: &[&str] = &[
    "force",
    "sync_all",
    "sync_data",
    "write_all",
    "read_exact",
    "flush",
    "send",
    "recv",
    "send_to",
    "recv_from",
    "upload",
];

/// The rule as a [`DataflowRule`] instance.
pub struct BlockingUnderLock;

impl DataflowRule for BlockingUnderLock {
    fn rule(&self) -> &'static str {
        RULE
    }

    fn targets(&self) -> &'static [&'static str] {
        &["crates/server/src", "crates/storage/src", "crates/net/src"]
    }

    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
        guard_transfer(cx, facts);
    }

    fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>) {
        let toks = cx.tokens();
        // Intra-statement: a temporary guard chained straight into a
        // blocking call (`m.lock().file.sync_all()`) never produces a
        // fact, but the lock is held across the device op all the same.
        let calls = method_calls(cx);
        if let Some(&lock_at) = calls.iter().find(|&&i| toks[i].is("lock")) {
            for &i in calls.iter().filter(|&&i| i > lock_at) {
                if BLOCKING_CALLS.contains(&toks[i].text.as_str()) {
                    out.push(cx.violation(
                        RULE,
                        i,
                        format!(
                            "blocking call `.{}()` chained while the temporary `.lock()` guard \
                             in this statement is held (§4.1)",
                            toks[i].text
                        ),
                    ));
                }
            }
        }
        if facts.is_empty() {
            return;
        }
        for i in method_calls(cx) {
            if !BLOCKING_CALLS.contains(&toks[i].text.as_str()) {
                continue;
            }
            for f in facts.iter().filter(|f| f.key.starts_with("guard:")) {
                let guard = f.key.trim_start_matches("guard:");
                out.push(cx.violation(
                    RULE,
                    i,
                    format!(
                        "blocking call `.{}()` while mutex guard `{guard}` (acquired line {}) \
                         is held; finish the critical section or drop the guard first (§4.1)",
                        toks[i].text, cx.file.tokens[f.origin].line
                    ),
                ));
            }
        }
        // `File::open` / `File::create` also hit the device.
        for i in 0..toks.len().saturating_sub(3) {
            if toks[i].is("File")
                && toks[i + 1].is(":")
                && toks[i + 2].is(":")
                && (toks[i + 3].is("open") || toks[i + 3].is("create"))
            {
                for f in facts.iter().filter(|f| f.key.starts_with("guard:")) {
                    let guard = f.key.trim_start_matches("guard:");
                    out.push(cx.violation(
                        RULE,
                        i,
                        format!(
                            "`File::{}` while mutex guard `{guard}` (acquired line {}) is held",
                            toks[i + 3].text,
                            cx.file.tokens[f.origin].line
                        ),
                    ));
                }
            }
        }
    }
}

/// Guard-liveness transfer function, shared by the intraprocedural
/// rule above and the interprocedural variant below: `let g = _.lock()`
/// gens a `guard:g` fact, killed by `drop(g)`, shadowing, or scope
/// exit (the engine handles the latter via `decl`).
pub fn guard_transfer(cx: &StmtCx<'_>, facts: &mut FactSet) {
    let toks = cx.tokens();
    let binds = let_bindings(cx);
    // Shadowing: a fresh `let g = …` ends the old guard's life.
    for (_, name) in &binds {
        kill_key_prefix(facts, &format!("guard:{name}"));
    }
    // `drop(g)` / `mem::drop(g)` kills the guard explicitly.
    for i in 0..toks.len() {
        if toks[i].is("drop")
            && toks.get(i + 1).is_some_and(|t| t.is("("))
            && toks.get(i + 3).is_some_and(|t| t.is(")"))
        {
            if let Some(g) = toks.get(i + 2) {
                kill_key_prefix(facts, &format!("guard:{}", g.text));
            }
        }
    }
    // `let g = expr.lock();` gens a live-guard fact. A `.lock()` in
    // a non-`let` statement is a temporary: dropped at the `;`.
    let locks: Vec<usize> = method_calls(cx)
        .into_iter()
        .filter(|&i| toks[i].is("lock"))
        .collect();
    if locks.is_empty() || binds.is_empty() {
        return;
    }
    let origin = cx.stmt.lo + locks[0];
    for (decl, name) in binds {
        facts.insert(Fact {
            key: format!("guard:{name}"),
            decl: Some(decl),
            origin,
        });
    }
}

/// Interprocedural promotion of `blocking-under-lock`: a call to a
/// helper whose *summary* says it may block — even though its name is
/// not itself in [`BLOCKING_CALLS`] — while a mutex guard is live. The
/// direct-name case is covered by [`BlockingUnderLock`]; this variant
/// only reports transitive blockers, with the call-chain witness.
pub struct BlockingUnderLockIpa<'a> {
    graph: &'a crate::callgraph::CallGraph,
    summaries: &'a crate::summary::Summaries,
    /// `(file path, absolute call token) → caller fn, site index`.
    sites: std::collections::BTreeMap<(String, usize), (usize, usize)>,
}

impl<'a> BlockingUnderLockIpa<'a> {
    /// Index the call graph's sites by (path, token) for O(log n)
    /// lookup from statement context.
    #[must_use]
    pub fn new(
        graph: &'a crate::callgraph::CallGraph,
        summaries: &'a crate::summary::Summaries,
    ) -> Self {
        let mut sites = std::collections::BTreeMap::new();
        for (f, calls) in graph.calls.iter().enumerate() {
            for (si, site) in calls.iter().enumerate() {
                sites.insert((graph.defs[f].path.clone(), site.token), (f, si));
            }
        }
        Self {
            graph,
            summaries,
            sites,
        }
    }
}

impl DataflowRule for BlockingUnderLockIpa<'_> {
    fn rule(&self) -> &'static str {
        RULE
    }

    fn targets(&self) -> &'static [&'static str] {
        &["crates/server/src", "crates/storage/src", "crates/net/src"]
    }

    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
        guard_transfer(cx, facts);
    }

    fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>) {
        if facts.iter().all(|f| !f.key.starts_with("guard:")) {
            return;
        }
        let toks = cx.tokens();
        for i in 0..toks.len() {
            let abs = cx.stmt.lo + i;
            let Some(&(caller, si)) = self.sites.get(&(cx.file.path.clone(), abs)) else {
                continue;
            };
            let site = &self.graph.calls[caller][si];
            // Direct blocking names are the base rule's findings.
            if BLOCKING_CALLS.contains(&site.name.as_str()) {
                continue;
            }
            let Some(&c) = site
                .callees
                .iter()
                .find(|&&c| self.summaries.fns[c].may_block.is_some())
            else {
                continue;
            };
            let chain = self.summaries.block_chain(self.graph, c);
            for f in facts.iter().filter(|f| f.key.starts_with("guard:")) {
                let guard = f.key.trim_start_matches("guard:");
                out.push(cx.violation(
                    RULE,
                    i,
                    format!(
                        "call chain may block: {} → {chain} while mutex guard `{guard}` \
                         (acquired line {}) is held (§4.1)",
                        self.graph.defs[caller].name, cx.file.tokens[f.origin].line
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::run_rule;
    use crate::source::SourceFile;

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("fn f(&mut self) {{ {body} }}");
        let file = SourceFile::parse("crates/server/src/x.rs", &src);
        run_rule(&BlockingUnderLock, &file)
    }

    #[test]
    fn guard_across_force_fires() {
        let vs = run("let st = self.state.lock(); self.dev.force(c);");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("`st`"));
    }

    #[test]
    fn temporary_guard_is_fine() {
        assert!(run("self.state.lock().len(); self.dev.force(c);").is_empty());
    }

    #[test]
    fn drop_ends_liveness() {
        assert!(run("let st = self.state.lock(); drop(st); self.dev.force(c);").is_empty());
    }

    #[test]
    fn scoped_guard_is_fine() {
        assert!(run("{ let st = self.state.lock(); st.push(1); } self.dev.force(c);").is_empty());
    }

    #[test]
    fn one_branch_is_enough() {
        let vs = run("let st = self.state.lock(); if c { self.net.send(to, m); } done();");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }
}
