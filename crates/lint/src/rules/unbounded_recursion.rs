//! `unbounded-recursion`: no call-graph cycles inside the hot-path
//! crates without an audited allowlist entry.
//!
//! A recursive hot-path function turns attacker-controlled input into
//! attacker-controlled stack depth — a stack overflow aborts the whole
//! server just like a `panic!`, defeating §3.1's fail-stop discipline
//! the slow way. The rule runs SCC detection over the *confident*
//! edges only (same-file/same-crate free calls, `self.foo()` resolved
//! in-crate): the any-match method fallback would invent cycles between
//! unrelated functions that merely share a name (`force` calling
//! `self.primary.force()` is delegation, not recursion).

use crate::callgraph::{sccs_of, CallGraph, FnId};
use crate::report::Violation;

/// Rule identifier.
pub const RULE: &str = "unbounded-recursion";

/// Report every cycle over confident edges whose members live under one
/// of the `hot` path prefixes. Each cycle yields one violation anchored
/// at its lexically-first member.
#[must_use]
pub fn check(graph: &CallGraph, hot: &[&str]) -> Vec<Violation> {
    let adj = graph.confident_adj();
    let (sccs, _) = sccs_of(&adj);
    let mut out = Vec::new();
    for scc in &sccs {
        let cyclic = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
        if !cyclic {
            continue;
        }
        let members: Vec<&FnId> = scc
            .iter()
            .filter(|&&f| hot.iter().any(|p| graph.defs[f].path.starts_with(p)))
            .collect();
        let Some(&&anchor) = members.first() else {
            continue;
        };
        let mut names: Vec<&str> = scc.iter().map(|&f| graph.defs[f].name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let cycle = names.join(" ↔ ");
        let def = &graph.defs[anchor];
        out.push(Violation {
            rule: RULE,
            file: def.path.clone(),
            line: def.line,
            scope: def.name.clone(),
            message: format!(
                "recursive call cycle on the hot path: {cycle}; input-controlled recursion \
                 depth can overflow the stack (§3.1 fail-stop) — rewrite iteratively or \
                 allowlist with a depth-bound justification"
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::collections::BTreeMap;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::parse("crates/server/src/lib.rs", src);
        let refs = vec![&file];
        let g = CallGraph::build(&refs, &BTreeMap::new());
        check(&g, &["crates/server/src"])
    }

    #[test]
    fn mutual_recursion_is_one_finding() {
        let vs = run("fn a(d: u32) { b(d); } fn b(d: u32) { a(d); } fn c() { a(0); }");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("a ↔ b"), "{}", vs[0].message);
    }

    #[test]
    fn self_recursion_fires() {
        let vs = run("fn walk(&self, d: u32) { self.walk(d); }");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn delegation_via_any_match_does_not_fire() {
        // `self.primary.force()` is a method call on a field — the
        // receiver is not `self`, so the edge is not confident even
        // though a same-name fn exists.
        let vs = run("fn force(&mut self) { self.primary.force(); }");
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn cold_path_recursion_is_ignored() {
        let file = SourceFile::parse("crates/cli/src/main.rs", "fn a() { b(); } fn b() { a(); }");
        let refs = vec![&file];
        let g = CallGraph::build(&refs, &BTreeMap::new());
        assert!(check(&g, &["crates/server/src"]).is_empty());
    }
}
