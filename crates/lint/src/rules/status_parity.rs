//! `status-parity`: observability `Response` variants and their field
//! tables in `docs/PROTOCOL.md` must list the same fields.
//!
//! The Status RPC is the operational surface (`dlog status`); PR 1 grew
//! it from 7 to 13 gauges and the protocol doc silently lagged. PR 3
//! added a second surface, the `Stats` RPC (`dlog stats`), so the rule
//! is parameterized over [`TABLES`]: for each `(variant, heading)` pair
//! it extracts the variant's field names from `wire.rs` and the first
//! column of the markdown table under the heading, then requires the
//! two sets to be identical (names and count).

use crate::report::Violation;
use crate::rules::wire_exhaustive::enum_variants;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "status-parity";

/// The observability `Response` variants and the markdown headings that
/// introduce their field tables in the protocol doc.
pub const TABLES: &[(&str, &str)] = &[("Status", "Status gauges"), ("Stats", "Stats fields")];

/// Compare each observability variant's fields in `wire` with its table
/// in the protocol document text (`doc_path` names it for reporting).
#[must_use]
pub fn check(wire: &SourceFile, doc_path: &str, doc_text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(variant, heading) in TABLES {
        out.extend(check_variant(wire, doc_path, doc_text, variant, heading));
    }
    out
}

fn check_variant(
    wire: &SourceFile,
    doc_path: &str,
    doc_text: &str,
    variant: &str,
    heading: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let code_fields = match variant_fields(wire, variant) {
        Some(f) => f,
        None => {
            return vec![Violation {
                rule: RULE,
                file: wire.path.clone(),
                line: 1,
                scope: "<file>".to_string(),
                message: format!("`Response::{variant}` variant not found in wire.rs"),
            }]
        }
    };
    let (doc_fields, table_line) = match doc_table_fields(doc_text, heading) {
        Some(f) => f,
        None => {
            return vec![Violation {
                rule: RULE,
                file: doc_path.to_string(),
                line: 1,
                scope: "<file>".to_string(),
                message: format!(
                    "no `{heading}` table found in {doc_path}; the {variant} wire struct \
                     has {} fields that must be documented",
                    code_fields.len()
                ),
            }]
        }
    };
    for (name, line) in &code_fields {
        if !doc_fields.iter().any(|(d, _)| d == name) {
            out.push(Violation {
                rule: RULE,
                file: doc_path.to_string(),
                line: table_line,
                scope: "<file>".to_string(),
                message: format!(
                    "{variant} field `{name}` (wire.rs:{line}) is missing from the \
                     `{heading}` table"
                ),
            });
        }
    }
    for (name, line) in &doc_fields {
        if !code_fields.iter().any(|(c, _)| c == name) {
            out.push(Violation {
                rule: RULE,
                file: doc_path.to_string(),
                line: *line,
                scope: "<file>".to_string(),
                message: format!(
                    "documented {variant} field `{name}` does not exist in `Response::{variant}`"
                ),
            });
        }
    }
    if out.is_empty() && code_fields.len() != doc_fields.len() {
        out.push(Violation {
            rule: RULE,
            file: doc_path.to_string(),
            line: table_line,
            scope: "<file>".to_string(),
            message: format!(
                "{variant} field count mismatch: wire.rs has {}, {doc_path} documents {}",
                code_fields.len(),
                doc_fields.len()
            ),
        });
    }
    out
}

/// Field names (with lines) of the named variant of `enum Response`.
fn variant_fields(wire: &SourceFile, variant: &str) -> Option<Vec<(String, u32)>> {
    let variants = enum_variants(wire, "Response")?;
    let (_, vtok) = variants.into_iter().find(|(n, _)| n == variant)?;
    let toks = &wire.tokens;
    let open = (vtok + 1..toks.len()).find(|&i| toks[i].is("{"))?;
    let close = wire.matching_brace(open)?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for i in open + 1..close {
        let t = &toks[i];
        if t.is("{") || t.is("(") || t.is("[") || t.is("<") {
            depth += 1;
        } else if t.is("}") || t.is(")") || t.is("]") || t.is(">") {
            depth -= 1;
        } else if depth == 0
            && t.kind == crate::lexer::TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is(":"))
            && !t.is("pub")
        {
            fields.push((t.text.clone(), t.line));
        }
    }
    Some(fields)
}

/// First-column names of the table under `heading`, with their 1-based
/// lines, plus the table's first line.
fn doc_table_fields(text: &str, heading: &str) -> Option<(Vec<(String, u32)>, u32)> {
    let mut in_section = false;
    let mut past_separator = false;
    let mut fields = Vec::new();
    let mut table_line = 0u32;
    for (i, line) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            if in_section && !fields.is_empty() {
                break;
            }
            in_section = trimmed.contains(heading);
            past_separator = false;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let first_cell = trimmed
            .trim_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('`')
            .to_string();
        if first_cell.starts_with('-') || first_cell.starts_with(':') {
            // The |---|---| separator: body rows follow.
            past_separator = true;
            continue;
        }
        if !past_separator || first_cell.is_empty() {
            continue; // header row (or malformed)
        }
        if table_line == 0 {
            table_line = lineno;
        }
        fields.push((first_cell, lineno));
    }
    if fields.is_empty() {
        None
    } else {
        Some((fields, table_line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = "
        pub enum Response {
            Ok,
            Status {
                records_stored: u64,
                naks_sent: u64,
            },
            Stats {
                stages: u64,
                trace_events: u64,
                trace_dropped: u64,
            },
        }
    ";

    const STATS_TABLE: &str = "### Stats fields\n\n\
                               | field | meaning |\n|---|---|\n\
                               | `stages` | per-stage histograms |\n\
                               | `trace_events` | events recorded |\n\
                               | `trace_dropped` | events evicted |\n";

    #[test]
    fn matching_tables_are_clean() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let doc = format!(
            "### Status gauges\n\n\
             | gauge | meaning |\n|---|---|\n\
             | `records_stored` | total |\n| `naks_sent` | naks |\n\n{STATS_TABLE}"
        );
        assert!(check(&wire, "docs/PROTOCOL.md", &doc).is_empty());
    }

    #[test]
    fn missing_and_phantom_gauges_fire() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let doc = format!(
            "### Status gauges\n\n\
             | gauge | meaning |\n|---|---|\n\
             | `records_stored` | total |\n| `ghost_gauge` | nope |\n\n{STATS_TABLE}"
        );
        let vs = check(&wire, "docs/PROTOCOL.md", &doc);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("naks_sent")));
        assert!(vs.iter().any(|v| v.message.contains("ghost_gauge")));
    }

    #[test]
    fn stats_table_checked_independently() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let doc = "### Status gauges\n\n\
                   | gauge | meaning |\n|---|---|\n\
                   | `records_stored` | total |\n| `naks_sent` | naks |\n\n\
                   ### Stats fields\n\n\
                   | field | meaning |\n|---|---|\n\
                   | `stages` | per-stage histograms |\n\
                   | `phantom_field` | nope |\n";
        let vs = check(&wire, "docs/PROTOCOL.md", doc);
        assert_eq!(vs.len(), 3, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("trace_events")));
        assert!(vs.iter().any(|v| v.message.contains("trace_dropped")));
        assert!(vs.iter().any(|v| v.message.contains("phantom_field")));
    }

    #[test]
    fn absent_table_fires() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let vs = check(&wire, "docs/PROTOCOL.md", "# Protocol\nno table here\n");
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs
            .iter()
            .any(|v| v.message.contains("no `Status gauges` table")));
        assert!(vs
            .iter()
            .any(|v| v.message.contains("no `Stats fields` table")));
    }
}
