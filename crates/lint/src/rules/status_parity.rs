//! `status-parity`: the `Response::Status` wire struct and the gauge
//! table in `docs/PROTOCOL.md` must list the same fields.
//!
//! The Status RPC is the observability surface (`dlog status`); PR 1
//! grew it from 7 to 13 gauges and the protocol doc silently lagged.
//! The rule extracts the variant's field names from `wire.rs` and the
//! first column of the "Status gauges" markdown table, then requires
//! the two sets to be identical (names and count).

use crate::report::Violation;
use crate::rules::wire_exhaustive::enum_variants;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "status-parity";

/// Markdown heading that introduces the gauge table.
pub const DOC_HEADING: &str = "Status gauges";

/// Compare the `Response::Status` fields in `wire` with the gauge table
/// in the protocol document text (`doc_path` names it for reporting).
#[must_use]
pub fn check(wire: &SourceFile, doc_path: &str, doc_text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let code_fields = match status_fields(wire) {
        Some(f) => f,
        None => {
            return vec![Violation {
                rule: RULE,
                file: wire.path.clone(),
                line: 1,
                scope: "<file>".to_string(),
                message: "`Response::Status` variant not found in wire.rs".to_string(),
            }]
        }
    };
    let (doc_fields, table_line) = match doc_table_fields(doc_text) {
        Some(f) => f,
        None => {
            return vec![Violation {
                rule: RULE,
                file: doc_path.to_string(),
                line: 1,
                scope: "<file>".to_string(),
                message: format!(
                    "no `{DOC_HEADING}` table found in {doc_path}; the Status wire struct \
                     has {} fields that must be documented",
                    code_fields.len()
                ),
            }]
        }
    };
    for (name, line) in &code_fields {
        if !doc_fields.iter().any(|(d, _)| d == name) {
            out.push(Violation {
                rule: RULE,
                file: doc_path.to_string(),
                line: table_line,
                scope: "<file>".to_string(),
                message: format!(
                    "Status gauge `{name}` (wire.rs:{line}) is missing from the \
                     `{DOC_HEADING}` table"
                ),
            });
        }
    }
    for (name, line) in &doc_fields {
        if !code_fields.iter().any(|(c, _)| c == name) {
            out.push(Violation {
                rule: RULE,
                file: doc_path.to_string(),
                line: *line,
                scope: "<file>".to_string(),
                message: format!(
                    "documented Status gauge `{name}` does not exist in `Response::Status`"
                ),
            });
        }
    }
    if out.is_empty() && code_fields.len() != doc_fields.len() {
        out.push(Violation {
            rule: RULE,
            file: doc_path.to_string(),
            line: table_line,
            scope: "<file>".to_string(),
            message: format!(
                "Status field count mismatch: wire.rs has {}, {doc_path} documents {}",
                code_fields.len(),
                doc_fields.len()
            ),
        });
    }
    out
}

/// Field names (with lines) of the `Status` variant of `enum Response`.
fn status_fields(wire: &SourceFile) -> Option<Vec<(String, u32)>> {
    let variants = enum_variants(wire, "Response")?;
    let (_, vtok) = variants.into_iter().find(|(n, _)| n == "Status")?;
    let toks = &wire.tokens;
    let open = (vtok + 1..toks.len()).find(|&i| toks[i].is("{"))?;
    let close = wire.matching_brace(open)?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for i in open + 1..close {
        let t = &toks[i];
        if t.is("{") || t.is("(") || t.is("[") || t.is("<") {
            depth += 1;
        } else if t.is("}") || t.is(")") || t.is("]") || t.is(">") {
            depth -= 1;
        } else if depth == 0
            && t.kind == crate::lexer::TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is(":"))
            && !t.is("pub")
        {
            fields.push((t.text.clone(), t.line));
        }
    }
    Some(fields)
}

/// First-column names of the gauge table under the [`DOC_HEADING`]
/// heading, with their 1-based lines, plus the table's first line.
fn doc_table_fields(text: &str) -> Option<(Vec<(String, u32)>, u32)> {
    let mut in_section = false;
    let mut past_separator = false;
    let mut fields = Vec::new();
    let mut table_line = 0u32;
    for (i, line) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            if in_section && !fields.is_empty() {
                break;
            }
            in_section = trimmed.contains(DOC_HEADING);
            past_separator = false;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let first_cell = trimmed
            .trim_matches('|')
            .split('|')
            .next()
            .unwrap_or("")
            .trim()
            .trim_matches('`')
            .to_string();
        if first_cell.starts_with('-') || first_cell.starts_with(':') {
            // The |---|---| separator: body rows follow.
            past_separator = true;
            continue;
        }
        if !past_separator || first_cell.is_empty() {
            continue; // header row (or malformed)
        }
        if table_line == 0 {
            table_line = lineno;
        }
        fields.push((first_cell, lineno));
    }
    if fields.is_empty() {
        None
    } else {
        Some((fields, table_line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = "
        pub enum Response {
            Ok,
            Status {
                records_stored: u64,
                naks_sent: u64,
            },
        }
    ";

    #[test]
    fn matching_table_is_clean() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let doc = "### Status gauges\n\n\
                   | gauge | meaning |\n|---|---|\n\
                   | `records_stored` | total |\n| `naks_sent` | naks |\n";
        assert!(check(&wire, "docs/PROTOCOL.md", doc).is_empty());
    }

    #[test]
    fn missing_and_phantom_gauges_fire() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let doc = "### Status gauges\n\n\
                   | gauge | meaning |\n|---|---|\n\
                   | `records_stored` | total |\n| `ghost_gauge` | nope |\n";
        let vs = check(&wire, "docs/PROTOCOL.md", doc);
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("naks_sent")));
        assert!(vs.iter().any(|v| v.message.contains("ghost_gauge")));
    }

    #[test]
    fn absent_table_fires() {
        let wire = SourceFile::parse("wire.rs", WIRE);
        let vs = check(&wire, "docs/PROTOCOL.md", "# Protocol\nno table here\n");
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("no `Status gauges` table"));
    }
}
