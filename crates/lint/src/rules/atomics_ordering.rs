//! `atomics-ordering` — a `Relaxed` atomic load must not gate access to
//! non-atomic shared state.
//!
//! The [`crate::threadsafe`] pass classifies every atomic by role:
//! *counters* (monotone stats like `dlog-obs` counters and the
//! `dlog-alloc` totals) never feed a branch, while *handoffs* (the
//! runner `stop` flag, `udp.rs` `promiscuous`) are loaded as branch
//! conditions. `Relaxed` is fine for a counter — and fine even for a
//! handoff whose guarded body only touches lock-protected or atomic
//! state, because the lock supplies the ordering. What it cannot do is
//! publish plain shared data: if a `Relaxed` load guards a branch whose
//! body reads a tracked plain field with an empty lockset, the writer's
//! stores to that field may not be visible to the reader despite the
//! flag being observed — the classic message-passing bug that needs a
//! Release store paired with an Acquire load.
//!
//! Paper anchor: §4.2 — ack-after-force is exactly a cross-thread
//! handoff ("the record is durable; readers may proceed"), which is why
//! the sharded-server work must not weaken these edges.

use crate::report::Violation;
use crate::threadsafe::ThreadSafety;

/// Rule identifier.
pub const RULE: &str = "atomics-ordering";

/// Flag `Relaxed` loads that guard a branch touching non-atomic shared
/// state with no lock held.
#[must_use]
pub fn check(ts: &ThreadSafety) -> Vec<Violation> {
    let mut out = Vec::new();
    for info in ts.atomics.values() {
        for a in &info.accesses {
            if a.method != "load" || a.ordering != "Relaxed" {
                continue;
            }
            let Some((blo, bhi)) = a.guard_span else {
                continue;
            };
            // A shared plain-field access inside the guarded body with
            // no lock held: the Relaxed load is publishing plain data.
            let hit = ts.accesses.iter().find(|s| {
                s.file == a.file
                    && !s.exclusive
                    && s.lockset.is_empty()
                    && s.token > blo
                    && s.token < bhi
            });
            let Some(hit) = hit else { continue };
            out.push(Violation {
                rule: RULE,
                file: a.file.clone(),
                line: a.line,
                scope: a.func.clone(),
                message: format!(
                    "`{}` ({}) is loaded with Ordering::Relaxed but guards access to \
                     `{}.{}` at {}:{} with no lock held; a Relaxed flag cannot publish \
                     plain shared data — store with Release and load with Acquire",
                    info.id,
                    info.role(),
                    hit.strukt,
                    hit.field,
                    hit.file,
                    hit.line
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}
