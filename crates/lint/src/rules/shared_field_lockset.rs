//! `shared-field-lockset` — every mutable field of a thread-shared
//! struct must have a non-empty common lockset.
//!
//! The [`crate::threadsafe`] pass discovers thread-escape roots (Arc
//! payloads, statics, sync-interior structs and everything reachable
//! from them through field types), then records every syntactic access
//! to a tracked plain field together with the lockset held there — local
//! guard facts from the must-analysis plus the interprocedural entry
//! lockset from confident call chains. A field is flagged when some
//! access writes it outside `&mut self`/owned-`self` and the
//! intersection of locksets over all shared accesses is empty: two of
//! those accesses can then race from different threads. The witness
//! prints both sites with their locksets and, when the lockset was
//! inherited through callers, the call chain that established it.
//!
//! Paper anchor: §4.1-4.2 — the log server's force/ack pipeline is the
//! state the sharded event loop (ROADMAP item 3) will run concurrently;
//! this rule is the machine-checked precondition for that PR.

use crate::report::Violation;
use crate::threadsafe::{FieldKind, ThreadSafety};

/// Rule identifier.
pub const RULE: &str = "shared-field-lockset";

/// Flag every escaped struct field whose shared accesses have an empty
/// common lockset and at least one write.
#[must_use]
pub fn check(ts: &ThreadSafety) -> Vec<Violation> {
    let mut out = Vec::new();
    for (name, s) in &ts.structs {
        if s.escape.is_none() {
            continue;
        }
        for fi in &s.fields {
            if fi.kind != FieldKind::Plain {
                continue;
            }
            let sites = ts.field_sites(name, &fi.name);
            let shared: Vec<_> = sites.iter().filter(|a| !a.exclusive).collect();
            let Some(write) = shared.iter().find(|a| a.write) else {
                continue;
            };
            let common = ts.common_lockset(name, &fi.name).unwrap_or_default();
            if !common.is_empty() {
                continue;
            }
            // Witness: the write plus the shared access whose lockset
            // overlaps it least (prefer a different site).
            let other = shared
                .iter()
                .filter(|a| a.token != write.token || a.file != write.file)
                .min_by_key(|a| a.lockset.intersection(&write.lockset).count())
                .unwrap_or(write);
            let fmt_set = |s: &std::collections::BTreeSet<String>| -> String {
                if s.is_empty() {
                    "{}".to_string()
                } else {
                    format!("{{{}}}", s.iter().cloned().collect::<Vec<_>>().join(", "))
                }
            };
            let mut msg = format!(
                "field `{}.{}` is thread-shared ({}) and written with no common lock: \
                 write at {}:{} in `{}` holds {}, access at {}:{} in `{}` holds {}",
                name,
                fi.name,
                s.escape.as_deref().unwrap_or("?"),
                write.file,
                write.line,
                write.func,
                fmt_set(&write.lockset),
                other.file,
                other.line,
                other.func,
                fmt_set(&other.lockset),
            );
            for site in [write, other] {
                let key = format!("{}::{}", site.file, site.func);
                if let Some((_, chain)) = ts.entry_chains.get(&key) {
                    msg.push_str(&format!("; via {chain}"));
                }
            }
            out.push(Violation {
                rule: RULE,
                file: write.file.clone(),
                line: write.line,
                scope: write.func.clone(),
                message: msg,
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out
}
