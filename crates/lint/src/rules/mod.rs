//! The rule catalog. Each rule is a standalone module taking parsed
//! [`crate::source::SourceFile`]s (plus, for `status-parity`, the
//! protocol markdown) and returning [`crate::report::Violation`]s.
//! See `docs/LINT.md` for the catalog and rationale.

pub mod ack_after_force;
pub mod forbid_unsafe;
pub mod lock_order;
pub mod panic_freedom;
pub mod status_parity;
pub mod wire_exhaustive;
