//! The rule catalog. Each rule is a standalone module; lexical per-file
//! rules additionally implement [`Rule`], and the flow-sensitive rules
//! implement [`crate::dataflow::DataflowRule`] and run on the CFG
//! engine. Cross-file rules (`wire-exhaustiveness`, `lock-order`,
//! `status-parity`, `forbid-unsafe`) keep bespoke drivers in
//! [`crate::workspace`]. See `docs/LINT.md` for the catalog and
//! rationale.

use crate::report::Violation;
use crate::source::SourceFile;

pub mod ack_after_force;
pub mod atomics_ordering;
pub mod blocking_under_lock;
pub mod forbid_unsafe;
pub mod hot_path_alloc;
pub mod lock_order;
pub mod lsn_checked_arith;
pub mod panic_freedom;
pub mod result_swallow;
pub mod seal_typestate;
pub mod shared_field_lockset;
pub mod status_parity;
pub mod unbounded_recursion;
pub mod view_escape;
pub mod wire_exhaustive;

/// A lexical per-file rule: scans one token stream at a time.
pub trait Rule {
    /// Rule identifier (e.g. `panic-freedom`).
    fn name(&self) -> &'static str;
    /// Workspace-relative path prefixes this rule scans.
    fn targets(&self) -> &'static [&'static str];
    /// Scan one file.
    fn check_file(&self, file: &SourceFile) -> Vec<Violation>;
}

/// `panic-freedom` as a [`Rule`] instance.
pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn name(&self) -> &'static str {
        panic_freedom::RULE
    }
    fn targets(&self) -> &'static [&'static str] {
        crate::workspace::HOT_PATH_CRATES
    }
    fn check_file(&self, file: &SourceFile) -> Vec<Violation> {
        panic_freedom::check(file)
    }
}

/// `ack-after-force` as a [`Rule`] instance.
pub struct AckAfterForce;

impl Rule for AckAfterForce {
    fn name(&self) -> &'static str {
        ack_after_force::RULE
    }
    fn targets(&self) -> &'static [&'static str] {
        crate::workspace::ACK_AFTER_FORCE_TARGETS
    }
    fn check_file(&self, file: &SourceFile) -> Vec<Violation> {
        ack_after_force::check(file)
    }
}

/// Every rule identifier the catalog can emit, for `lint.allow`
/// validation — an allowlist entry naming an unknown rule is a typo
/// that would otherwise be silently dead forever.
pub const ALL_RULES: &[&str] = &[
    wire_exhaustive::RULE,
    lock_order::RULE,
    panic_freedom::RULE,
    ack_after_force::RULE,
    status_parity::RULE,
    forbid_unsafe::RULE,
    blocking_under_lock::RULE,
    lsn_checked_arith::RULE,
    seal_typestate::RULE,
    result_swallow::RULE,
    hot_path_alloc::RULE,
    unbounded_recursion::RULE,
    shared_field_lockset::RULE,
    atomics_ordering::RULE,
    view_escape::RULE,
];
