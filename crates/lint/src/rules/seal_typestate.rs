//! `seal-typestate`: once a segment is sealed, no path may append to it.
//!
//! The archive tier's crash-safety proof (docs/ARCHIVE.md) rests on
//! sealed segments being immutable: a manifest records a sealed
//! segment's byte length, so a later `append`/`write_at` on the same
//! segment silently invalidates every archived CRC. The hazard is
//! path-shaped — sealing usually happens on one branch of a roll-over
//! decision — so the rule tracks a `sealed:<receiver>` fact from any
//! `x.seal()` call and flags `x.append(…)`/`x.write_at(…)` reached with
//! the fact live. Rebinding or assigning the receiver (a fresh segment
//! in the same variable) clears the fact.

use crate::dataflow::{
    kill_key_prefix, let_bindings, method_calls, receiver_path, DataflowRule, Fact, FactSet, StmtCx,
};
use crate::report::Violation;

/// Rule identifier.
pub const RULE: &str = "seal-typestate";

/// Mutating calls forbidden on a sealed segment.
const MUTATORS: &[&str] = &["append", "write_at"];

/// The rule as a [`DataflowRule`] instance.
pub struct SealTypestate;

/// The receiver path of the method call at statement-relative index `i`,
/// resolved against absolute token indices.
fn call_receiver(cx: &StmtCx<'_>, i: usize) -> Option<String> {
    // `i` is the method name; the receiver ends two tokens earlier.
    let abs = cx.stmt.lo + i;
    abs.checked_sub(2)
        .and_then(|end| receiver_path(cx.file, end))
}

impl DataflowRule for SealTypestate {
    fn rule(&self) -> &'static str {
        RULE
    }

    fn targets(&self) -> &'static [&'static str] {
        &["crates/storage/src", "crates/archive/src"]
    }

    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
        let toks = cx.tokens();
        // Rebinding (`let seg = …`) or reassignment (`seg = …`,
        // `self.active = …`) installs a fresh, unsealed segment.
        for (_, name) in let_bindings(cx) {
            kill_key_prefix(facts, &format!("sealed:{name}"));
        }
        if !toks.first().is_some_and(|t| t.is("let")) {
            // Leading `path = …` assignment (not `==`).
            let mut end = 0usize;
            while toks
                .get(end)
                .is_some_and(|t| t.kind == crate::lexer::TokenKind::Ident || t.is("."))
            {
                end += 1;
            }
            if end > 0
                && toks.get(end).is_some_and(|t| t.is("="))
                && !toks.get(end + 1).is_some_and(|t| t.is("="))
            {
                if let Some(path) = receiver_path(cx.file, cx.stmt.lo + end - 1) {
                    kill_key_prefix(facts, &format!("sealed:{path}"));
                }
            }
        }
        for i in method_calls(cx) {
            if toks[i].is("seal") {
                if let Some(path) = call_receiver(cx, i) {
                    facts.insert(Fact {
                        key: format!("sealed:{path}"),
                        decl: None,
                        origin: cx.stmt.lo + i,
                    });
                }
            }
        }
    }

    fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>) {
        if facts.is_empty() {
            return;
        }
        let toks = cx.tokens();
        for i in method_calls(cx) {
            if !MUTATORS.contains(&toks[i].text.as_str()) {
                continue;
            }
            let Some(path) = call_receiver(cx, i) else {
                continue;
            };
            if let Some(f) = facts.iter().find(|f| f.key == format!("sealed:{path}")) {
                out.push(cx.violation(
                    RULE,
                    i,
                    format!(
                        "`.{}()` on `{path}` after `.seal()` (line {}); a sealed segment is \
                         immutable — archived CRCs cover its exact bytes",
                        toks[i].text, cx.file.tokens[f.origin].line
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::run_rule;
    use crate::source::SourceFile;

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("fn f(&mut self) {{ {body} }}");
        let file = SourceFile::parse("crates/storage/src/x.rs", &src);
        run_rule(&SealTypestate, &file)
    }

    #[test]
    fn append_after_seal_fires() {
        let vs = run("seg.seal(); seg.append(bytes);");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("immutable"));
    }

    #[test]
    fn write_at_on_one_branch_fires() {
        let vs = run("if full { self.active.seal(); } self.active.write_at(pos, b);");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn append_before_seal_is_fine() {
        assert!(run("seg.append(bytes); seg.seal();").is_empty());
    }

    #[test]
    fn rebinding_clears_the_fact() {
        assert!(run("seg.seal(); let seg = fresh(); seg.append(bytes);").is_empty());
        assert!(
            run("self.active.seal(); self.active = fresh(); self.active.append(b);").is_empty()
        );
    }

    #[test]
    fn distinct_receivers_do_not_alias() {
        assert!(run("a.seal(); b.append(bytes);").is_empty());
    }
}
