//! `panic-freedom`: hot-path crates must not contain `unwrap()`,
//! `expect()`, `panic!`, or bare slice indexing outside test code.
//!
//! A log server that panics drops every in-flight force for every
//! client; §4.2's availability story assumes servers fail from crashes
//! and media, not from decode edge cases. Decode paths must propagate
//! `DecodeError`/`DlogError::Corrupt` instead. Deliberate fatal stops
//! (e.g. the server's force-failure invariant) are allowlisted with a
//! justification in `lint.allow`.

use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "panic-freedom";

/// Keywords that legitimately precede `[` (slice patterns, array types
/// in expressions) and therefore do not indicate indexing.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "return", "match", "if", "else", "for", "while", "loop",
    "move", "dyn", "where", "impl", "use", "pub", "crate", "super", "break", "continue", "static",
    "const", "type", "enum", "struct", "fn", "mod", "trait", "unsafe", "box", "yield", "async",
    "await",
];

/// What kind of panic-adjacent construct a site is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap(`.
    Unwrap,
    /// `.expect(`.
    Expect,
    /// `panic!(…)`.
    Macro,
    /// `expr[…]` slice/array indexing.
    Index,
}

impl PanicKind {
    /// Short label used in interprocedural witness chains.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`unwrap()`",
            PanicKind::Expect => "`expect()`",
            PanicKind::Macro => "`panic!`",
            PanicKind::Index => "slice indexing",
        }
    }
}

/// One panic-adjacent site in non-test code.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// Token index the site is anchored to.
    pub token: usize,
    /// Construct kind.
    pub kind: PanicKind,
    /// Text of the token preceding a `[` (for the indexing message).
    pub prev: String,
}

/// Scan one file for panic-adjacent sites in non-test code. Shared by
/// the intraprocedural rule below and the interprocedural summary
/// seeds ([`crate::summary`]).
#[must_use]
pub fn panic_sites(file: &SourceFile) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap(` / `.expect(`
        if t.is(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is("unwrap") || n.is("expect"))
            && toks.get(i + 2).is_some_and(|n| n.is("("))
        {
            let kind = if toks[i + 1].is("unwrap") {
                PanicKind::Unwrap
            } else {
                PanicKind::Expect
            };
            out.push(PanicSite {
                token: i + 1,
                kind,
                prev: String::new(),
            });
        }
        // `panic!(…)`
        if t.is("panic") && toks.get(i + 1).is_some_and(|n| n.is("!")) {
            out.push(PanicSite {
                token: i,
                kind: PanicKind::Macro,
                prev: String::new(),
            });
        }
        // Indexing: `expr[…]` — a `[` directly after an identifier (that
        // is not a keyword), `)`, or `]`. Out-of-range indexes panic;
        // use `.get()`/`.get_mut()` or a guarded helper.
        if t.is("[") && i > 0 {
            let prev = &toks[i - 1];
            let is_index = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is(")") || prev.is("]"),
                _ => false,
            };
            if is_index {
                out.push(PanicSite {
                    token: i,
                    kind: PanicKind::Index,
                    prev: prev.text.clone(),
                });
            }
        }
    }
    out
}

/// Scan one file for panic-adjacent constructs in non-test code.
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Violation> {
    panic_sites(file)
        .into_iter()
        .map(|site| {
            let message = match site.kind {
                PanicKind::Unwrap | PanicKind::Expect => {
                    let name = &file.tokens[site.token].text;
                    format!("call to `{name}()` can panic; propagate the error instead")
                }
                PanicKind::Macro => "explicit `panic!` in hot-path code".to_string(),
                PanicKind::Index => format!(
                    "slice/array indexing after `{}` can panic; use `.get()` or a guarded read",
                    site.prev
                ),
            };
            violation(file, site.token, message)
        })
        .collect()
}

/// Interprocedural promotion: flag call sites in hot-path functions
/// whose callee (defined *outside* the hot-path crates, so the direct
/// scan above never sees it) may panic. The violation carries the full
/// call-chain witness down to the panicking token.
#[must_use]
pub fn check_ipa(
    graph: &crate::callgraph::CallGraph,
    summaries: &crate::summary::Summaries,
    hot: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (f, def) in graph.defs.iter().enumerate() {
        if !hot.iter().any(|p| def.path.starts_with(p)) {
            continue;
        }
        for site in &graph.calls[f] {
            // One finding per call site: the first panicking non-hot
            // callee. Hot callees' sites are flagged directly.
            let Some(&c) = site.callees.iter().find(|&&c| {
                summaries.fns[c].may_panic.is_some()
                    && !hot.iter().any(|p| graph.defs[c].path.starts_with(p))
            }) else {
                continue;
            };
            let chain = summaries.panic_chain(graph, c);
            out.push(Violation {
                rule: RULE,
                file: def.path.clone(),
                line: site.line,
                scope: def.name.clone(),
                message: format!(
                    "call chain may panic: {} → {chain}; a hot-path fail-stop must be \
                     deliberate (§3.1) — make the helper total or allowlist with justification",
                    def.name
                ),
            });
        }
    }
    out
}

fn violation(file: &SourceFile, i: usize, message: String) -> Violation {
    Violation {
        rule: RULE,
        file: file.path.clone(),
        line: file.tokens[i].line,
        scope: file.scope_at(i),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_panic_indexing() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f(v: Vec<u8>) -> u8 { let a = v.first().unwrap(); v.len(); \
             let b = foo().expect(\"x\"); if v.is_empty() { panic!(\"no\"); } v[0] }",
        );
        let vs = check(&f);
        assert_eq!(vs.len(), 4, "{vs:?}");
        assert!(vs.iter().all(|v| v.scope == "f"));
    }

    #[test]
    fn test_code_and_benign_brackets_are_ignored() {
        let f = SourceFile::parse(
            "x.rs",
            "#[derive(Debug)] struct S; fn g(x: &[u8], s: [u8; 4]) -> Vec<u8> { \
             let [a, b] = [1, 2]; let _ = (a, b, s); vec![x.len() as u8] }\n\
             #[cfg(test)] mod t { fn h(v: Vec<u8>) -> u8 { v[0] } }",
        );
        assert!(check(&f).is_empty(), "{:?}", check(&f));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = SourceFile::parse("x.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }");
        assert!(check(&f).is_empty());
    }
}
