//! `panic-freedom`: hot-path crates must not contain `unwrap()`,
//! `expect()`, `panic!`, or bare slice indexing outside test code.
//!
//! A log server that panics drops every in-flight force for every
//! client; §4.2's availability story assumes servers fail from crashes
//! and media, not from decode edge cases. Decode paths must propagate
//! `DecodeError`/`DlogError::Corrupt` instead. Deliberate fatal stops
//! (e.g. the server's force-failure invariant) are allowlisted with a
//! justification in `lint.allow`.

use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "panic-freedom";

/// Keywords that legitimately precede `[` (slice patterns, array types
/// in expressions) and therefore do not indicate indexing.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "return", "match", "if", "else", "for", "while", "loop",
    "move", "dyn", "where", "impl", "use", "pub", "crate", "super", "break", "continue", "static",
    "const", "type", "enum", "struct", "fn", "mod", "trait", "unsafe", "box", "yield", "async",
    "await",
];

/// Scan one file for panic-adjacent constructs in non-test code.
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap(` / `.expect(`
        if t.is(".")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is("unwrap") || n.is("expect"))
            && toks.get(i + 2).is_some_and(|n| n.is("("))
        {
            let name = &toks[i + 1].text;
            out.push(violation(
                file,
                i + 1,
                format!("call to `{name}()` can panic; propagate the error instead"),
            ));
        }
        // `panic!(…)`
        if t.is("panic") && toks.get(i + 1).is_some_and(|n| n.is("!")) {
            out.push(violation(
                file,
                i,
                "explicit `panic!` in hot-path code".to_string(),
            ));
        }
        // Indexing: `expr[…]` — a `[` directly after an identifier (that
        // is not a keyword), `)`, or `]`. Out-of-range indexes panic;
        // use `.get()`/`.get_mut()` or a guarded helper.
        if t.is("[") && i > 0 {
            let prev = &toks[i - 1];
            let is_index = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is(")") || prev.is("]"),
                _ => false,
            };
            if is_index {
                out.push(violation(
                    file,
                    i,
                    format!(
                        "slice/array indexing after `{}` can panic; use `.get()` or a guarded read",
                        prev.text
                    ),
                ));
            }
        }
    }
    out
}

fn violation(file: &SourceFile, i: usize, message: String) -> Violation {
    Violation {
        rule: RULE,
        file: file.path.clone(),
        line: file.tokens[i].line,
        scope: file.scope_at(i),
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_panic_indexing() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f(v: Vec<u8>) -> u8 { let a = v.first().unwrap(); v.len(); \
             let b = foo().expect(\"x\"); if v.is_empty() { panic!(\"no\"); } v[0] }",
        );
        let vs = check(&f);
        assert_eq!(vs.len(), 4, "{vs:?}");
        assert!(vs.iter().all(|v| v.scope == "f"));
    }

    #[test]
    fn test_code_and_benign_brackets_are_ignored() {
        let f = SourceFile::parse(
            "x.rs",
            "#[derive(Debug)] struct S; fn g(x: &[u8], s: [u8; 4]) -> Vec<u8> { \
             let [a, b] = [1, 2]; let _ = (a, b, s); vec![x.len() as u8] }\n\
             #[cfg(test)] mod t { fn h(v: Vec<u8>) -> u8 { v[0] } }",
        );
        assert!(check(&f).is_empty(), "{:?}", check(&f));
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = SourceFile::parse("x.rs", "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }");
        assert!(check(&f).is_empty());
    }
}
