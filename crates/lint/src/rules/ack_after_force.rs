//! `ack-after-force`: the §4.2 write-before-ack heuristic.
//!
//! "When a ForceLog message is received, … the log server forces all
//! buffered log records … before returning a NewHighLSN message." A
//! server that constructs its durable-high-LSN ack before the force call
//! can ack records that die with the NVRAM. For every non-test function
//! that both calls `.force(…)` and constructs a `NewHighLsn` message,
//! the first force call must lexically precede the first ack
//! construction. Lexical order is a heuristic — it cannot see through
//! helper functions — but it catches the regression that matters: an
//! ack path reordered above the force inside one handler.

use crate::report::Violation;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "ack-after-force";

/// Check every function in `file` that both forces and acks.
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &file.fns {
        if file.test[f.open] {
            continue;
        }
        let force = file.find_seq(f.open, f.close, &[".", "force", "("]);
        let ack = (f.open..f.close).find(|&i| file.tokens[i].is("NewHighLsn"));
        if let (Some(force_idx), Some(ack_idx)) = (force, ack) {
            if ack_idx < force_idx {
                out.push(Violation {
                    rule: RULE,
                    file: file.path.clone(),
                    line: file.tokens[ack_idx].line,
                    scope: f.name.clone(),
                    message: format!(
                        "`NewHighLsn` ack constructed (line {}) before the durable `.force()` call \
                         (line {}); §4.2 requires force-before-ack",
                        file.tokens[ack_idx].line, file.tokens[force_idx].line
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_then_ack_is_clean() {
        let f = SourceFile::parse(
            "s.rs",
            "fn ingest(&mut self) { self.store.force(c).ok(); \
             self.out.push(Message::NewHighLsn { client, lsn }); }",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn ack_before_force_fires() {
        let f = SourceFile::parse(
            "s.rs",
            "fn ingest(&mut self) { let ack = Message::NewHighLsn { client, lsn }; \
             self.store.force(c).ok(); self.out.push(ack); }",
        );
        let vs = check(&f);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("before the durable"));
        assert_eq!(vs[0].scope, "ingest");
    }

    #[test]
    fn functions_with_only_one_side_are_skipped() {
        let f = SourceFile::parse(
            "s.rs",
            "fn only_ack(&mut self) { self.out.push(Message::NewHighLsn { client, lsn }); } \
             fn only_force(&mut self) { self.store.force(c).ok(); }",
        );
        assert!(check(&f).is_empty());
    }
}
