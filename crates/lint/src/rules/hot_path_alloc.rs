//! `hot-path-alloc`: allocation inventory for the ingest/encode path.
//!
//! ROADMAP item 3 (zero-copy wire path, ≥500k writes/s) needs to know
//! *where* the per-record allocations are before the refactor starts.
//! This rule walks the call graph from the hot roots —
//! `LogServer::handle` and `Frame::encode_into` — and reports every
//! reachable function that directly allocates (`Vec::new`, `to_vec`,
//! `clone`, `Box::new`, `format!`, `String::from`, …), one finding per
//! function, ranked by allocation-site count and carrying the
//! root-to-function call-chain witness. Unlike the safety rules this is
//! an *inventory*: entries are expected to be burned down (or
//! allowlisted with a justification) as the zero-copy push lands.

use crate::callgraph::{CallGraph, FnId};
use crate::report::Violation;
use crate::summary::Summaries;

/// Rule identifier.
pub const RULE: &str = "hot-path-alloc";

/// Hot roots: `(file path, fn name)`. If the file exists in the graph
/// but the function does not, the rule reports the drift — a renamed
/// root would otherwise silently disable the whole inventory.
pub const HOT_ALLOC_ROOTS: &[(&str, &str)] = &[
    ("crates/server/src/lib.rs", "handle"),
    ("crates/storage/src/frame.rs", "encode_into"),
];

/// Walk the graph from `roots` and report every reachable function with
/// direct allocation sites.
#[must_use]
pub fn check(graph: &CallGraph, summaries: &Summaries, roots: &[(&str, &str)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut root_ids: Vec<FnId> = Vec::new();
    for &(path, name) in roots {
        let ids = graph.defs_named(path, name);
        if ids.is_empty() {
            // Only report a missing root when its file is in the graph:
            // fixture mini-workspaces legitimately lack the real tree.
            if graph.defs.iter().any(|d| d.path == path) {
                out.push(Violation {
                    rule: RULE,
                    file: path.to_string(),
                    line: 1,
                    scope: "*".to_string(),
                    message: format!(
                        "hot-path root `{name}` not found in `{path}`; update \
                         HOT_ALLOC_ROOTS so the allocation inventory stays anchored"
                    ),
                });
            }
            continue;
        }
        root_ids.extend(ids);
    }
    let parent = graph.reach_from(&root_ids);
    for (f, def) in graph.defs.iter().enumerate() {
        if parent[f].is_none() || summaries.fns[f].allocs.is_empty() {
            continue;
        }
        let allocs = &summaries.fns[f].allocs;
        // Rank by kind frequency: `clone×3, Vec::new×1`.
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for a in allocs {
            match counts.iter_mut().find(|(k, _)| *k == a.kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((a.kind, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let kinds = counts
            .iter()
            .map(|(k, n)| format!("{k}\u{d7}{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let chain = graph.path_to(&parent, f).join(" → ");
        out.push(Violation {
            rule: RULE,
            file: def.path.clone(),
            line: allocs[0].line,
            scope: def.name.clone(),
            message: format!(
                "{} allocation site(s) on the hot path ({kinds}); reachable via {chain} — \
                 zero-copy worklist (ROADMAP item 3), burn down or allowlist",
                allocs.len()
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::Allowlist;
    use crate::source::SourceFile;
    use std::collections::BTreeMap;

    fn run(sources: &[(&str, &str)], roots: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect();
        let refs: Vec<&SourceFile> = files.iter().collect();
        let g = CallGraph::build(&refs, &BTreeMap::new());
        let s = crate::summary::compute(&g, &refs, &Allowlist::parse("").unwrap());
        check(&g, &s, roots)
    }

    #[test]
    fn reachable_allocs_are_inventoried_with_chain() {
        let vs = run(
            &[(
                "crates/server/src/lib.rs",
                "fn handle(&mut self) { self.encode(); }\n\
                 fn encode(&self) -> Vec<u8> { let v = self.buf.to_vec(); v.clone() }\n\
                 fn cold(&self) -> Vec<u8> { Vec::new() }",
            )],
            &[("crates/server/src/lib.rs", "handle")],
        );
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].scope, "encode");
        assert!(
            vs[0].message.contains("handle → encode"),
            "{}",
            vs[0].message
        );
        assert!(vs[0].message.contains("clone\u{d7}1, to_vec\u{d7}1"));
    }

    #[test]
    fn missing_root_in_present_file_is_reported() {
        let vs = run(
            &[("crates/server/src/lib.rs", "fn other() {}")],
            &[("crates/server/src/lib.rs", "handle")],
        );
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("not found"));
    }

    #[test]
    fn absent_file_is_vacuous() {
        let vs = run(
            &[("crates/types/src/lib.rs", "fn other() {}")],
            &[("crates/server/src/lib.rs", "handle")],
        );
        assert!(vs.is_empty(), "{vs:?}");
    }
}
