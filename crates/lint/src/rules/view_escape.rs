//! `view-escape`: a borrowed `decode_shared` view must not outlive its
//! handler — promote before storing.
//!
//! PR 8's zero-copy receive path hands handlers `LogData` views that
//! borrow the endpoint's pooled receive buffer (`decode_shared`). Rust's
//! lifetimes stop a view from literally outliving the buffer, but a
//! handler can still defeat the pool by stashing `view.to_owned()` — or,
//! after a refactor swaps a field to an owned type plus a `clone`
//! somewhere upstream, silently re-introduce a copy per frame. The
//! invariant this rule pins is structural: a binding produced by
//! `decode_shared` (or reachable from one by assignment) may be read,
//! matched, and returned, but any store of it into a struct field or a
//! collection (`self.x = view`, `self.cache.push(view)`) must go through
//! an explicit promotion (`to_owned`/`to_vec`/`clone`/`into_owned`/
//! `promote`) *in that statement*, so every copy off the zero-copy path
//! is visible and greppable at the store site.
//!
//! Paper anchor: §4.1 — the receive path is the wire-to-disk hot loop
//! whose allocation budget (EXPERIMENTS.md E16) the sharded server work
//! must not regress.

use crate::dataflow::{
    kill_key_prefix, let_bindings, mentions, DataflowRule, Fact, FactSet, StmtCx,
};
use crate::lexer::TokenKind;
use crate::report::Violation;

/// Rule identifier.
pub const RULE: &str = "view-escape";

/// Calls that turn a borrowed view into owned data.
const PROMOTIONS: &[&str] = &["to_owned", "to_vec", "clone", "into_owned", "promote"];

/// Methods that store a value into a collection.
const STORES: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "replace",
];

/// The rule as a [`DataflowRule`] instance.
pub struct ViewEscape;

/// True when the statement contains a promotion call.
fn has_promotion(cx: &StmtCx<'_>) -> bool {
    let toks = cx.tokens();
    (1..toks.len().saturating_sub(1)).any(|i| {
        toks[i - 1].is(".") && PROMOTIONS.contains(&toks[i].text.as_str()) && toks[i + 1].is("(")
    })
}

/// Statement-relative index of a store target rooted at `self`: either a
/// leading `self.path = …` assignment or a `self.path.push(…)`-style
/// collection insert. Returns the index to anchor the violation at.
fn self_store(cx: &StmtCx<'_>) -> Option<usize> {
    let toks = cx.tokens();
    for i in 0..toks.len() {
        if !toks[i].is("self") {
            continue;
        }
        // Walk the dotted path.
        let mut j = i;
        while j + 2 < toks.len()
            && toks[j + 1].is(".")
            && (toks[j + 2].kind == TokenKind::Ident || toks[j + 2].kind == TokenKind::Literal)
        {
            j += 2;
        }
        if j == i {
            continue;
        }
        // `self.path = …` (not `==`, not `=>`).
        if toks.get(j + 1).is_some_and(|t| t.is("="))
            && !toks.get(j + 2).is_some_and(|t| t.is("=") || t.is(">"))
        {
            return Some(j);
        }
        // `self.path.push(…)` — the last path segment was the method.
        if toks.get(j + 1).is_some_and(|t| t.is("(")) && STORES.contains(&toks[j].text.as_str()) {
            return Some(j);
        }
    }
    None
}

impl DataflowRule for ViewEscape {
    fn rule(&self) -> &'static str {
        RULE
    }

    fn targets(&self) -> &'static [&'static str] {
        &["crates/net/src", "crates/server/src", "crates/storage/src"]
    }

    fn transfer(&self, cx: &StmtCx<'_>, facts: &mut FactSet) {
        let toks = cx.tokens();
        let binds = let_bindings(cx);
        // A fresh binding shadows any prior view of the same name…
        for (_, name) in &binds {
            kill_key_prefix(facts, &format!("view:{name}"));
        }
        // …and becomes a view itself when the initializer mentions
        // `decode_shared` or a live view without promoting it.
        let from_decode = toks.iter().any(|t| t.is("decode_shared"));
        let from_view = facts.iter().any(|f| {
            f.key
                .strip_prefix("view:")
                .is_some_and(|name| mentions(cx, name))
        });
        if (from_decode || from_view) && !has_promotion(cx) {
            for (decl, name) in &binds {
                facts.insert(Fact {
                    key: format!("view:{name}"),
                    decl: Some(*decl),
                    origin: cx.stmt.lo,
                });
            }
        }
    }

    fn check(&self, cx: &StmtCx<'_>, facts: &FactSet, out: &mut Vec<Violation>) {
        if facts.is_empty() || has_promotion(cx) {
            return;
        }
        // A self-rooted store whose statement mentions a live view.
        let Some(anchor) = self_store(cx) else { return };
        let live = facts.iter().find(|f| {
            f.key
                .strip_prefix("view:")
                .is_some_and(|name| mentions(cx, name))
        });
        let Some(f) = live else { return };
        let name = f.key.strip_prefix("view:").unwrap_or("?");
        out.push(cx.violation(
            RULE,
            anchor,
            format!(
                "borrowed `decode_shared` view `{name}` (line {}) is stored into a \
                 struct field or collection; promote explicitly (`to_owned`/`to_vec`) \
                 at the store site or keep the view handler-scoped",
                cx.file.tokens[f.origin].line
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::run_rule;
    use crate::source::SourceFile;

    fn run(body: &str) -> Vec<Violation> {
        let src = format!("fn f(&mut self) {{ {body} }}");
        let file = SourceFile::parse("crates/net/src/x.rs", &src);
        run_rule(&ViewEscape, &file)
    }

    #[test]
    fn storing_a_view_fires() {
        let vs = run("let pkt = decode_shared(buf)?; self.cache.push(pkt);");
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("pkt"));
    }

    #[test]
    fn field_assignment_fires() {
        let vs = run("let v = decode_shared(buf)?; self.last = Some(v);");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn promotion_at_store_is_fine() {
        assert!(run("let pkt = decode_shared(buf)?; self.cache.push(pkt.to_owned());").is_empty());
    }

    #[test]
    fn promoted_rebinding_is_fine() {
        assert!(run(
            "let pkt = decode_shared(buf)?; let own = pkt.to_vec(); self.cache.push(own);"
        )
        .is_empty());
    }

    #[test]
    fn returning_a_view_is_fine() {
        assert!(run("let pkt = decode_shared(buf)?; handle(&pkt);").is_empty());
    }

    #[test]
    fn alias_chain_is_tracked() {
        let vs = run("let pkt = decode_shared(buf)?; let alias = pkt; self.cache.push(alias);");
        assert_eq!(vs.len(), 1, "{vs:?}");
    }
}
