//! `lock-order`: static deadlock detection over `.lock()` acquisitions.
//!
//! For every non-test function in the target files, the rule extracts
//! the ordered `.lock()` call sites, names each lock by its receiver
//! path qualified with the file stem (`mem::hub`, `object_store::inner`,
//! …), and assumes a guard bound with `let` is held until the end of its
//! enclosing block while an unbound (temporary) guard lives only to the
//! end of its statement. Every (held → acquired) pair becomes a directed
//! edge; a cycle in the resulting acquisition graph — including a
//! self-edge, which parking_lot punishes with an instant deadlock — is
//! reported at one witnessing site per edge.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::Violation;
use crate::source::SourceFile;

/// Rule identifier.
pub const RULE: &str = "lock-order";

/// One `.lock()` acquisition site.
#[derive(Clone, Debug)]
struct LockSite {
    /// Qualified lock name, e.g. `mem::hub`.
    name: String,
    /// Token index of the receiver's `.` before `lock`.
    tok: usize,
    /// Token index past which the guard is assumed released: end of the
    /// enclosing block for `let`-bound guards, end of statement for
    /// temporaries.
    held_until: usize,
}

/// Build the acquisition graph across `files` and flag cycles.
#[must_use]
pub fn check(files: &[&SourceFile]) -> Vec<Violation> {
    // edge (from, to) -> witness (file idx, token idx)
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for f in &file.fns {
            if file.test[f.open] {
                continue;
            }
            let sites = lock_sites(file, f.open, f.close);
            for (a_idx, a) in sites.iter().enumerate() {
                for b in sites.iter().skip(a_idx + 1) {
                    if b.tok < a.held_until {
                        edges
                            .entry((a.name.clone(), b.name.clone()))
                            .or_insert((fi, b.tok));
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for cycle in find_cycles(&edges) {
        // Witness: the edge closing the cycle (last -> first).
        let close = (cycle[cycle.len() - 1].clone(), cycle[0].clone());
        let (fi, tok) = edges[&close];
        let file = files[fi];
        let path = cycle.join(" -> ");
        out.push(Violation {
            rule: RULE,
            file: file.path.clone(),
            line: file.tokens[tok].line,
            scope: file.scope_at(tok),
            message: if cycle.len() == 1 {
                format!(
                    "lock `{}` re-acquired while already held (self-deadlock)",
                    cycle[0]
                )
            } else {
                format!(
                    "lock acquisition cycle: {path} -> {} (potential deadlock)",
                    cycle[0]
                )
            },
        });
    }
    out
}

/// Ordered `.lock()` sites within token range `(open, close)`.
fn lock_sites(file: &SourceFile, open: usize, close: usize) -> Vec<LockSite> {
    let toks = &file.tokens;
    let mut sites = Vec::new();
    let mut i = open;
    while i + 2 < close {
        let hit = toks[i].is(".")
            && toks[i + 1].is("lock")
            && toks[i + 2].is("(")
            && toks.get(i + 3).is_some_and(|t| t.is(")"));
        if !hit {
            i += 1;
            continue;
        }
        // Receiver path: walk back over `ident` / `.` / `self`.
        let mut j = i;
        let mut parts: Vec<String> = Vec::new();
        while j > open {
            let prev = &toks[j - 1];
            if prev.kind == crate::lexer::TokenKind::Ident {
                parts.push(prev.text.clone());
                j -= 1;
            } else if prev.is(".") && j >= 2 && toks[j - 2].kind == crate::lexer::TokenKind::Ident {
                j -= 1;
            } else {
                break;
            }
        }
        parts.reverse();
        let receiver = parts
            .last()
            .cloned()
            .unwrap_or_else(|| "<expr>".to_string());
        let stem = file
            .path
            .rsplit('/')
            .next()
            .unwrap_or(&file.path)
            .trim_end_matches(".rs");
        let name = format!("{stem}::{receiver}");

        // Bound with `let`? Walk back from the receiver start to the
        // statement start (previous `;` or `{`).
        let mut k = j;
        let mut bound = false;
        while k > open {
            let prev = &toks[k - 1];
            if prev.is(";") || prev.is("{") || prev.is("}") {
                break;
            }
            if prev.is("let") {
                bound = true;
                break;
            }
            k -= 1;
        }

        let held_until = if bound {
            enclosing_block_end(file, i, open, close)
        } else {
            statement_end(file, i, close)
        };
        sites.push(LockSite {
            name,
            tok: i,
            held_until,
        });
        i += 3;
    }
    sites
}

/// End of the innermost `{ … }` block containing token `i`.
fn enclosing_block_end(file: &SourceFile, i: usize, open: usize, close: usize) -> usize {
    let mut best = close;
    let mut span = close - open;
    for j in open..=i {
        if file.tokens[j].is("{") {
            if let Some(end) = file.matching_brace(j) {
                if end >= i && end - j < span {
                    span = end - j;
                    best = end;
                }
            }
        }
    }
    best
}

/// First `;` after token `i` at the same brace depth (statement end).
fn statement_end(file: &SourceFile, i: usize, close: usize) -> usize {
    let mut depth = 0i32;
    for j in i..close {
        let t = &file.tokens[j];
        if t.is("{") || t.is("(") || t.is("[") {
            depth += 1;
        } else if t.is("}") || t.is(")") || t.is("]") {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if t.is(";") && depth <= 0 {
            return j;
        }
    }
    close
}

/// All elementary cycles we care to report: for each strongly-connected
/// pair (or self-loop) return one canonical cycle. A simple DFS over the
/// edge set is enough at this scale.
fn find_cycles(edges: &BTreeMap<(String, String), (usize, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        // DFS from `start`, reporting the first path returning to it.
        let mut stack = vec![(start, vec![start.to_string()])];
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = adj.get(node) else { continue };
            for next in nexts {
                if *next == start {
                    // Canonicalize: rotate so the smallest name is first.
                    let mut c = path.clone();
                    let min_idx = c
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map_or(0, |(i, _)| i);
                    c.rotate_left(min_idx);
                    if seen.insert(c.clone()) {
                        cycles.push(c);
                    }
                } else if !path.iter().any(|p| p == next) && path.len() < 8 {
                    let mut p = path.clone();
                    p.push((*next).to_string());
                    stack.push((next, p));
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_ba_cycle_is_flagged() {
        let a = SourceFile::parse(
            "crates/x/src/one.rs",
            "fn f(&self) { let g1 = self.alpha.lock(); let g2 = self.beta.lock(); drop((g1, g2)); }",
        );
        let b = SourceFile::parse(
            "crates/x/src/one.rs",
            "fn g(&self) { let g2 = self.beta.lock(); let g1 = self.alpha.lock(); drop((g1, g2)); }",
        );
        let vs = check(&[&a, &b]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("cycle"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = SourceFile::parse(
            "crates/x/src/one.rs",
            "fn f(&self) { let g1 = self.alpha.lock(); let g2 = self.beta.lock(); drop((g1, g2)); } \
             fn g(&self) { let g1 = self.alpha.lock(); let g2 = self.beta.lock(); drop((g1, g2)); }",
        );
        assert!(check(&[&a]).is_empty());
    }

    #[test]
    fn sequential_temporaries_do_not_self_deadlock() {
        let a = SourceFile::parse(
            "crates/x/src/one.rs",
            "fn f(&self) { self.alpha.lock().push(1); self.alpha.lock().push(2); }",
        );
        assert!(check(&[&a]).is_empty(), "{:?}", check(&[&a]));
    }

    #[test]
    fn bound_guard_then_relock_is_self_deadlock() {
        let a = SourceFile::parse(
            "crates/x/src/one.rs",
            "fn f(&self) { let g = self.alpha.lock(); self.alpha.lock().push(1); drop(g); }",
        );
        let vs = check(&[&a]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("self-deadlock"));
    }
}
