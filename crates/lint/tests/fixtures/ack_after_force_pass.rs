// Fixture: §4.2 honored — durability first, then the acknowledgment.

fn handle_force(&mut self, client: ClientId, lsn: Lsn) -> Result<()> {
    self.store.force(client)?;
    let ack = Message::NewHighLsn { client, lsn };
    self.net.send(ack);
    Ok(())
}
