//! Failing fixture for `lsn-checked-arith`: three findings.

fn bump(&mut self) {
    self.next_seq += 1; // finding 1: compound add on a sequence
    let next = self.durable_lsn.0 + 1; // finding 2: raw add on an LSN
    let hi = seg.hi_lsn;
    let gap = hi - 1; // finding 3: flow-tracked LSN-shaped binding
    self.report(next, gap);
}
