//! Failing fixture for `blocking-under-lock`: two findings.

fn hold_across_force(&self) {
    let guard = self.state.lock();
    self.dev.force(guard.high); // finding 1: force with guard live
    drop(guard);
}

fn temporary_guard_chain(&self) {
    self.state.lock().file.sync_all(); // finding 2: blocking call on a lock chain
}
