//! Passing fixture for `seal-typestate`: seal last, or swap in a fresh
//! segment before mutating again.

fn append_then_seal(&mut self) {
    seg.append(bytes);
    seg.seal();
}

fn roll_over(&mut self) {
    self.active.seal();
    self.active = self.fresh_segment();
    self.active.append(bytes);
}
