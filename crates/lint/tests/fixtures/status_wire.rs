// Fixture wire enum for the status-parity rule.

pub enum Response {
    Ok,
    Status { records_stored: u64, naks_sent: u64 },
}
