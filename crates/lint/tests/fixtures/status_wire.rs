// Fixture wire enum for the status-parity rule.

pub enum Response {
    Ok,
    Status { records_stored: u64, naks_sent: u64 },
    Stats { stages: u64, trace_events: u64, trace_dropped: u64 },
}
