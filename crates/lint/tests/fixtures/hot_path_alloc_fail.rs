// Failing fixture for hot-path-alloc: the hot-path root allocates
// directly, and a helper it calls allocates too — two inventoried fns.
pub fn handle(input: &[u8]) -> Vec<u8> {
    let mut out = input.to_vec();
    out.extend_from_slice(&stamp(input.len()));
    out
}

fn stamp(n: usize) -> Vec<u8> {
    format!("{n}").into_bytes()
}
