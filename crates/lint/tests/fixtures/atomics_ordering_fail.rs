//! Failing fixture for `atomics-ordering`: `Gate.ready` is loaded with
//! `Ordering::Relaxed` as a branch condition, and the guarded body
//! reads the plain shared field `Gate.payload` with no lock held — a
//! Relaxed flag cannot publish plain data across threads.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Gate {
    ready: AtomicBool,
    payload: u64,
}

impl Gate {
    pub fn poll(&self) -> u64 {
        if self.ready.load(Ordering::Relaxed) {
            return self.payload;
        }
        0
    }
}
