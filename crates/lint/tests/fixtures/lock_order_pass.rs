// Fixture: both functions honor the same acquisition order, and a
// temporary guard dropped at end-of-statement never nests.

fn ab(state: &State) {
    let a = state.alpha.lock();
    let b = state.beta.lock();
    drop((a, b));
}

fn also_ab(state: &State) {
    state.alpha.lock().touch();
    let a = state.alpha.lock();
    let b = state.beta.lock();
    drop((a, b));
}
