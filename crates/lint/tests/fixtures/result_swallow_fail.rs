//! Failing fixture for `result-swallow`: three findings.

fn swallow(&mut self, fast: bool) {
    let _ = self.dir.sync_data(); // finding 1: explicit discard
    self.dev.force(cursor).ok(); // finding 2: `.ok()` laundering
    let r = self.dev.flush();
    if fast {
        return; // finding 3: `r` dead on this path
    }
    self.check(r);
}
