// Fixture property file that only exercises the old variants.

fn arbitrary() {
    let _ = (Message::Write { lsn: 1 }, Request::Ping, Response::Pong);
}
