//! A crate root that carries the attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn noop() {}
