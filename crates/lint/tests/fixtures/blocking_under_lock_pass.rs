//! Passing fixture for `blocking-under-lock`: copy out, drop, then block.

fn drop_before_force(&self) {
    let guard = self.state.lock();
    let high = guard.high;
    drop(guard);
    self.dev.force(high);
}

fn non_blocking_under_guard(&self) {
    let guard = self.state.lock();
    let n = guard.records.len();
    self.counter.set(n);
    drop(guard);
}
