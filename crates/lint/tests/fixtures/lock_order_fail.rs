// Fixture: two functions acquire the same pair of locks in opposite
// orders while holding the first — a classic ABBA deadlock.

fn ab(state: &State) {
    let a = state.alpha.lock();
    let b = state.beta.lock();
    drop((a, b));
}

fn ba(state: &State) {
    let b = state.beta.lock();
    let a = state.alpha.lock();
    drop((a, b));
}
