//! Passing fixture for `view-escape`: views are promoted at (or before)
//! the store site, or stay handler-scoped.

pub struct Cache {
    last: Option<Frame>,
    frames: Vec<Frame>,
}

impl Cache {
    pub fn stash(&mut self, buf: &[u8]) {
        let view = decode_shared(buf);
        self.frames.push(view.to_owned());
    }

    pub fn inspect(&self, buf: &[u8]) -> usize {
        let view = decode_shared(buf);
        view.len()
    }

    pub fn promote_then_store(&mut self, buf: &[u8]) {
        let view = decode_shared(buf);
        let own = view.to_vec();
        self.last = Some(own);
    }
}
