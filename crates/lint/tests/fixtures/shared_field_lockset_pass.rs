//! Passing fixture for `shared-field-lockset`: every shared access to
//! `Registry.hits` holds `Registry.lock`, so the common lockset is
//! non-empty and the field is consistently protected.

use std::sync::{Arc, Mutex};

pub struct Registry {
    lock: Mutex<u32>,
    hits: u64,
}

pub fn share(r: Registry) -> Arc<Registry> {
    Arc::new(r)
}

impl Registry {
    pub fn record(&self) {
        let g = self.lock.lock().unwrap();
        self.hits += 1;
        drop(g);
    }

    pub fn peek(&self) -> u64 {
        let g = self.lock.lock().unwrap();
        let v = self.hits;
        drop(g);
        v
    }
}
