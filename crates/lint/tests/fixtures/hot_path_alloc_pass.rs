// Passing fixture for hot-path-alloc: the hot-path root and everything
// it reaches write into caller-provided buffers — no allocation sites.
pub fn handle(input: &[u8], out: &mut [u8]) -> usize {
    let n = input.len().min(out.len());
    out[..n].copy_from_slice(&input[..n]);
    stamp(n, out)
}

fn stamp(n: usize, out: &mut [u8]) -> usize {
    if let Some(b) = out.first_mut() {
        *b = n as u8;
    }
    n
}
