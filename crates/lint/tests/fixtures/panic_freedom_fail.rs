// Fixture: hot-path code with every panic-freedom violation class.

fn hot(v: &[u8], m: &std::collections::HashMap<u32, u32>) -> u8 {
    let first = v.first().unwrap();
    let looked = m.get(&1).expect("present");
    let indexed = v[0];
    if *first == 0 {
        panic!("boom");
    }
    indexed + *looked as u8
}
