//! Passing fixture for `result-swallow`: every durable Result consumed.

fn consume(&mut self, fast: bool) -> Result<(), Error> {
    self.dir.sync_data()?;
    let r = self.dev.force(cursor);
    if r.is_err() {
        return r;
    }
    if fast {
        return Ok(());
    }
    self.dev.flush()?;
    Ok(())
}
