//! Passing fixture for `lsn-checked-arith`: checked/saturating only.

fn bump(&mut self) -> Option<()> {
    self.next_seq = self.next_seq.checked_add(1)?;
    let next = self.durable_lsn.0.checked_add(1)?;
    let floor = self.epoch.0.saturating_sub(1);
    let count = a + b;
    self.report(next, floor, count);
    Some(())
}
