//! Passing fixture for `atomics-ordering`: the handoff flag is loaded
//! with `Acquire` (pairing with a `Release` store elsewhere), and the
//! Relaxed atomic is a pure counter that never guards a branch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Gate {
    ready: AtomicBool,
    polls: AtomicU64,
    payload: u64,
}

impl Gate {
    pub fn poll(&self) -> u64 {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if self.ready.load(Ordering::Acquire) {
            return self.payload;
        }
        0
    }
}
