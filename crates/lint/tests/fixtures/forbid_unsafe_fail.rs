//! A crate root that forgot `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

pub fn noop() {}
