// Fixture: `Message::Nak` was added to the enum but not to the codec.

pub enum Message {
    Write { lsn: u64 },
    Nak { lo: u64, hi: u64 },
}

fn encode_message(m: &Message) {
    match m {
        Message::Write { lsn } => drop(lsn),
        _ => {}
    }
}

fn decode_message(tag: u8) -> Message {
    match tag {
        _ => Message::Write { lsn: 0 },
    }
}

pub enum Request {
    Ping,
}

fn encode_request(r: &Request) {
    match r {
        Request::Ping => {}
    }
}

fn decode_request(_: u8) -> Request {
    Request::Ping
}

pub enum Response {
    Pong,
}

fn encode_response(r: &Response) {
    match r {
        Response::Pong => {}
    }
}

fn decode_response(_: u8) -> Response {
    Response::Pong
}
