//! Failing fixture for `seal-typestate`: two findings.

fn straight_line(&mut self) {
    self.active.seal();
    self.active.append(bytes); // finding 1: append after seal
}

fn sealed_on_one_branch(&mut self, full: bool) {
    if full {
        seg.seal();
    }
    seg.write_at(0, bytes); // finding 2: reachable with the sealed fact live
}
