// Failing fixture for unbounded-recursion: a two-function cycle with
// no visible depth bound. Both calls are free calls resolved in-file,
// so the cycle is confident.
fn walk_left(depth: u64) -> u64 {
    walk_right(depth) + 1
}

fn walk_right(depth: u64) -> u64 {
    walk_left(depth) + 1
}
