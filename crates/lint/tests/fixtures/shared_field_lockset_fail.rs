//! Failing fixture for `shared-field-lockset`: `Registry.hits` is a
//! plain field on a sync-interior (thread-escaping) struct, written
//! under `Registry.lock` in `record` but read with no lock held in
//! `peek` — the common lockset over all shared accesses is empty.

use std::sync::{Arc, Mutex};

pub struct Registry {
    lock: Mutex<u32>,
    hits: u64,
}

pub fn share(r: Registry) -> Arc<Registry> {
    Arc::new(r)
}

impl Registry {
    pub fn record(&self) {
        let g = self.lock.lock().unwrap();
        self.hits += 1;
        drop(g);
    }

    pub fn peek(&self) -> u64 {
        self.hits
    }
}
