// Passing fixture for unbounded-recursion: the same traversal written
// as a loop, plus a constructor whose `Self::new` qualified call must
// not be mistaken for confident self-recursion.
pub struct Walker {
    depth: u64,
}

impl Walker {
    pub fn new() -> Walker {
        Walker { depth: 0 }
    }

    pub fn with_depth(depth: u64) -> Walker {
        let mut w = Walker::new();
        w.depth = depth;
        w
    }
}

fn walk(mut depth: u64) -> u64 {
    let mut steps = 0;
    while depth > 0 {
        depth -= 1;
        steps += 1;
    }
    steps
}
