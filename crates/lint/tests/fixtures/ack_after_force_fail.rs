// Fixture: the §4.2 violation — the ack is built (and sent) before the
// force reaches stable storage.

fn handle_force(&mut self, client: ClientId, lsn: Lsn) {
    let ack = Message::NewHighLsn { client, lsn };
    self.net.send(ack);
    self.store.force(client).ok();
}
