//! Failing fixture for `view-escape`: borrowed `decode_shared` views
//! are stored into a collection and a struct field without an explicit
//! promotion at the store site — the second through an alias chain.

pub struct Cache {
    last: Option<Frame>,
    frames: Vec<Frame>,
}

impl Cache {
    pub fn stash(&mut self, buf: &[u8]) {
        let view = decode_shared(buf);
        self.frames.push(view);
    }

    pub fn remember(&mut self, buf: &[u8]) {
        let v = decode_shared(buf);
        let alias = v;
        self.last = Some(alias);
    }
}
