// Fixture: panic-free hot-path code; test code may panic freely.

fn hot(v: &[u8]) -> Option<u8> {
    // unwrap() in a comment and "v.unwrap() in a string" must not fire.
    let first = v.first()?;
    let rest = v.get(1..)?;
    Some(first.wrapping_add(rest.len() as u8))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u8, 2];
        assert_eq!(super::hot(&v).unwrap(), 2);
        let _ = v[0];
    }
}
