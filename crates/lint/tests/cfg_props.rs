//! Property tests for the CFG builder and the dataflow engine.
//!
//! The generator produces random well-formed function bodies from a
//! small statement grammar — plain calls, `if`/`if-else`, `match`,
//! `while`, and `loop { … break; }` — with **no diverging statements**
//! (`return`/`?`), so every generated statement is live code. Under
//! that restriction:
//!
//! 1. every block that carries a statement must be reachable from the
//!    CFG entry (a builder that drops an edge fails this immediately),
//! 2. the exit block must be reachable (no generated body can hang the
//!    abstract machine),
//! 3. running every flow-sensitive rule must terminate — the fixpoint
//!    loop's monotone gen/kill over a finite fact universe converging,
//!    not the `MAX_PASSES` backstop being quietly saved by luck.

use proptest::prelude::*;

use dlog_lint::cfg::Cfg;
use dlog_lint::dataflow::run_rule;
use dlog_lint::rules;
use dlog_lint::SourceFile;

/// Straight-line statements; a few mention lock/LSN/durability names so
/// the dataflow rules have facts to push around.
fn simple_stmt() -> BoxedStrategy<String> {
    prop_oneof![
        Just("work(a, b);".to_string()),
        Just("let x = mix(a);".to_string()),
        Just("let guard = self.state.lock();".to_string()),
        Just("drop(guard);".to_string()),
        Just("let lsn2 = cursor_lsn;".to_string()),
        Just("let r = self.dev.force(c);".to_string()),
        Just("check(r);".to_string()),
        Just("seg.seal();".to_string()),
        Just("let seg = fresh();".to_string()),
    ]
    .boxed()
}

/// One statement at the given nesting depth.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return simple_stmt();
    }
    let inner = || body(depth - 1);
    prop_oneof![
        4 => simple_stmt(),
        1 => inner().prop_map(|b| format!("if cond {{ {b} }}")),
        1 => (inner(), inner())
            .prop_map(|(t, e)| format!("if cond {{ {t} }} else {{ {e} }}")),
        1 => (inner(), inner()).prop_map(|(a, b)| {
            format!("match v {{ Case::A => {{ {a} }} Case::B(x) => {{ {b} }} }}")
        }),
        1 => inner().prop_map(|b| format!("while cond {{ {b} }}")),
        1 => inner().prop_map(|b| format!("loop {{ {b} break; }}")),
    ]
    .boxed()
}

/// A sequence of 1–3 statements.
fn body(depth: u32) -> BoxedStrategy<String> {
    proptest::collection::vec(stmt(depth), 1..4)
        .prop_map(|v| v.join(" "))
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_statement_reachable_and_rules_terminate(b in body(3)) {
        let src = format!("fn generated(&mut self) {{ {b} }}");
        let file = SourceFile::parse("crates/storage/src/generated.rs", &src);
        prop_assert_eq!(file.fns.len(), 1, "generator produced unparseable body: {}", src);
        let cfg = Cfg::build(&file, &file.fns[0]);
        let reach = cfg.reachable();

        // 1. No generated statement may land in an unreachable block.
        for (i, blk) in cfg.blocks.iter().enumerate() {
            if !blk.stmts.is_empty() {
                prop_assert!(
                    reach[i],
                    "block {} with {} stmt(s) unreachable in: {}",
                    i, blk.stmts.len(), src
                );
            }
        }

        // 2. The function can finish.
        prop_assert!(reach[cfg.exit], "exit unreachable in: {}", src);

        // 3. The fixpoint terminates for every flow-sensitive rule
        //    (a diverging analysis would hang here, failing the suite's
        //    timeout rather than this assertion).
        let _ = run_rule(&rules::blocking_under_lock::BlockingUnderLock, &file);
        let _ = run_rule(&rules::lsn_checked_arith::LsnCheckedArith, &file);
        let _ = run_rule(&rules::seal_typestate::SealTypestate, &file);
        let _ = run_rule(&rules::result_swallow::ResultSwallow, &file);
    }
}
