//! Property tests for the interprocedural layer: call-graph resolution,
//! the SCC condensation, and the summary fixpoint.
//!
//! The generator produces random multi-function files from a small
//! grammar — each function body is a sequence of calls to other
//! generated functions (by index, possibly forming cycles), extern
//! calls, and effect seeds (`unwrap`, `force`, allocation). Under any
//! such file:
//!
//! 1. every call site either resolves to at least one workspace
//!    definition or is extern (empty callee set) — resolution never
//!    invents dangling [`FnId`]s and never loses a site,
//! 2. the condensation is acyclic (Tarjan emitted a real DAG order),
//! 3. the summary fixpoint converges within the documented pass bound
//!    (`4 * defs + sccs + 8`), not by luck of the backstop.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dlog_lint::allow::Allowlist;
use dlog_lint::callgraph::CallGraph;
use dlog_lint::summary;
use dlog_lint::SourceFile;

const FNS: usize = 6;

/// One statement inside generated function bodies: a call to another
/// generated function, an extern call, or a direct effect seed.
fn stmt() -> BoxedStrategy<String> {
    prop_oneof![
        3 => (0..FNS).prop_map(|i| format!("gen_fn_{i}(a);")),
        1 => Just("extern_helper(a);".to_string()),
        1 => Just("let v = maybe().unwrap();".to_string()),
        1 => Just("let r = self.dev.force(c);".to_string()),
        1 => Just("let buf = Vec::new();".to_string()),
        1 => Just("let s = x.to_vec();".to_string()),
    ]
    .boxed()
}

/// A whole file: `FNS` functions, each with 0–4 statements.
fn file() -> BoxedStrategy<String> {
    proptest::collection::vec(proptest::collection::vec(stmt(), 0..5), FNS)
        .prop_map(|bodies| {
            bodies
                .iter()
                .enumerate()
                .map(|(i, stmts)| format!("fn gen_fn_{i}(&mut self) {{ {} }}\n", stmts.join(" ")))
                .collect::<String>()
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn resolution_condensation_and_fixpoint_hold(src in file()) {
        let f = SourceFile::parse("crates/storage/src/generated.rs", &src);
        prop_assert_eq!(f.fns.len(), FNS, "generator produced unparseable file: {}", src);
        let files = [&f];
        let graph = CallGraph::build(&files, &BTreeMap::new());
        prop_assert_eq!(graph.defs.len(), FNS);

        // 1. Every call site resolves in-bounds or is extern.
        for sites in &graph.calls {
            for site in sites {
                for &c in &site.callees {
                    prop_assert!(c < graph.defs.len(), "dangling FnId {c}");
                }
                if site.name.starts_with("gen_fn_") {
                    prop_assert!(
                        !site.callees.is_empty(),
                        "call to generated fn `{}` did not resolve", site.name
                    );
                }
            }
        }

        // 2. Tarjan's condensation is a DAG.
        prop_assert!(graph.condensation_is_acyclic());

        // 3. The fixpoint converges within the documented bound.
        let summaries = summary::compute(&graph, &files, &Allowlist::default());
        let bound = 4 * graph.defs.len() + graph.sccs.len() + 8;
        prop_assert!(
            summaries.passes <= bound,
            "fixpoint took {} passes, bound is {bound}", summaries.passes
        );

        // Sanity: an `unwrap` seed must surface in its own summary.
        for (fi, def) in graph.defs.iter().enumerate() {
            let has_unwrap = src
                .lines()
                .skip_while(|l| !l.contains(&format!("fn {}", def.name)))
                .take(1)
                .any(|l| l.contains("unwrap"));
            if has_unwrap {
                prop_assert!(
                    summaries.fns[fi].may_panic.is_some(),
                    "fn {} has a direct unwrap but no may_panic", def.name
                );
            }
        }
    }
}
