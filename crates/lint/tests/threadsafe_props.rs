//! Property tests for the thread-safety engine's lockset analysis:
//! random field/lock topologies are rendered to synthetic source, run
//! through [`dlog_lint::threadsafe::analyze`], and compared against an
//! exact model.
//!
//! The model is simple because the generated shape is: every method
//! acquires its chosen locks at the top, touches its chosen fields in
//! the middle, and drops the guards at the end — so the lockset at
//! every access is precisely the method's acquired set, and the
//! reported common lockset for a field must be the exact intersection
//! of the acquired sets over the methods that touch it. From that the
//! `shared-field-lockset` verdict is fully determined: flag exactly
//! the fields with at least one writing method and an empty
//! intersection. Topologies where every accessor shares one lock must
//! always come back clean.

use std::collections::BTreeSet;

use proptest::prelude::*;

use dlog_lint::callgraph::CallGraph;
use dlog_lint::rules::shared_field_lockset;
use dlog_lint::source::SourceFile;
use dlog_lint::threadsafe::{self, ThreadSafety};

/// What one method does with one field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Access {
    None,
    Read,
    Write,
}

/// One method: which locks it acquires, what it does to each field.
#[derive(Clone, Debug)]
struct Method {
    locks: Vec<bool>,
    accesses: Vec<Access>,
}

/// A random topology: `n_locks` mutexes and `accesses[0].len()` plain
/// fields on one Arc-escaping struct, accessed by `methods`.
#[derive(Clone, Debug)]
struct Topology {
    n_locks: usize,
    n_fields: usize,
    methods: Vec<Method>,
}

fn access_strategy() -> impl Strategy<Value = Access> {
    prop_oneof![
        2 => Just(Access::None),
        1 => Just(Access::Read),
        1 => Just(Access::Write),
    ]
}

fn topology_strategy() -> impl Strategy<Value = Topology> {
    // The vendored proptest has no `prop_flat_map`; generate at the
    // maximum shape (3 locks, 4 fields, 5 methods) and truncate to the
    // drawn sizes.
    let raw_method = (
        proptest::collection::vec(any::<bool>(), 3usize),
        proptest::collection::vec(access_strategy(), 4usize),
    );
    (
        1usize..=3,
        1usize..=4,
        1usize..=5,
        proptest::collection::vec(raw_method, 5usize),
    )
        .prop_map(|(n_locks, n_fields, n_methods, raw)| Topology {
            n_locks,
            n_fields,
            methods: raw
                .into_iter()
                .take(n_methods)
                .map(|(locks, accesses)| Method {
                    locks: locks.into_iter().take(n_locks).collect(),
                    accesses: accesses.into_iter().take(n_fields).collect(),
                })
                .collect(),
        })
}

/// Render the topology as the kind of source the fixtures use: locks
/// acquired up front, field accesses in the middle, guards dropped at
/// the end, and the struct escaping through `Arc`.
fn render(t: &Topology) -> String {
    let mut src = String::from("use std::sync::{Arc, Mutex};\n\npub struct Top {\n");
    for l in 0..t.n_locks {
        src.push_str(&format!("    lock{l}: Mutex<u32>,\n"));
    }
    for f in 0..t.n_fields {
        src.push_str(&format!("    f{f}: u64,\n"));
    }
    src.push_str("}\n\npub fn share(r: Top) -> Arc<Top> {\n    Arc::new(r)\n}\n\nimpl Top {\n");
    for (m, method) in t.methods.iter().enumerate() {
        src.push_str(&format!("    pub fn m{m}(&self) {{\n"));
        for (l, held) in method.locks.iter().enumerate() {
            if *held {
                src.push_str(&format!(
                    "        let g{l} = self.lock{l}.lock().unwrap();\n"
                ));
            }
        }
        for (f, a) in method.accesses.iter().enumerate() {
            match a {
                Access::None => {}
                Access::Read => src.push_str(&format!("        let _r{f} = self.f{f};\n")),
                Access::Write => src.push_str(&format!("        self.f{f} += 1;\n")),
            }
        }
        for (l, held) in method.locks.iter().enumerate().rev() {
            if *held {
                src.push_str(&format!("        drop(g{l});\n"));
            }
        }
        src.push_str("    }\n");
    }
    src.push_str("}\n");
    src
}

fn analyze(src: &str) -> ThreadSafety {
    let file = SourceFile::parse("crates/storage/src/prop_topology.rs", src);
    let files = [&file];
    let graph = CallGraph::build(&files, &std::collections::BTreeMap::new());
    threadsafe::analyze(&files, &graph, Some(threadsafe::DEFAULT_ROUNDS))
}

/// The model: for field `f`, the exact intersection of acquired-lock
/// sets over the methods that access it (`None` when nothing does),
/// plus whether any accessor writes.
fn model_field(t: &Topology, f: usize) -> (Option<BTreeSet<String>>, bool) {
    let mut common: Option<BTreeSet<String>> = None;
    let mut written = false;
    for m in &t.methods {
        let a = m.accesses[f];
        if a == Access::None {
            continue;
        }
        written |= a == Access::Write;
        let held: BTreeSet<String> = m
            .locks
            .iter()
            .enumerate()
            .filter(|(_, h)| **h)
            .map(|(l, _)| format!("Top.lock{l}"))
            .collect();
        common = Some(match common {
            None => held,
            Some(cur) => cur.intersection(&held).cloned().collect(),
        });
    }
    (common, written)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine's reported common lockset is the exact intersection
    /// the model predicts, for every field of every random topology —
    /// neither an over-approximation (phantom protection that would
    /// hide races) nor an under-approximation (false alarms).
    #[test]
    fn common_lockset_is_the_exact_intersection(t in topology_strategy()) {
        let ts = analyze(&render(&t));
        prop_assert!(
            ts.structs.get("Top").is_some_and(|s| s.escape.is_some()),
            "Top did not register as escaping"
        );
        for f in 0..t.n_fields {
            let field = format!("f{f}");
            let (expect, _) = model_field(&t, f);
            let got = ts.common_lockset("Top", &field);
            prop_assert_eq!(
                got.clone(), expect.clone(),
                "field {}: engine {:?} vs model {:?}\n{}",
                field, got, expect, render(&t)
            );
            // Site discovery is exact too: one recorded access per
            // accessing method.
            let n_accessors = t
                .methods
                .iter()
                .filter(|m| m.accesses[f] != Access::None)
                .count();
            prop_assert_eq!(ts.field_sites("Top", &field).len(), n_accessors);
        }
    }

    /// The `shared-field-lockset` verdict matches the model: exactly
    /// the written fields with an empty intersection are flagged.
    #[test]
    fn verdict_flags_exactly_the_unprotected_written_fields(t in topology_strategy()) {
        let ts = analyze(&render(&t));
        let violations = shared_field_lockset::check(&ts);
        for f in 0..t.n_fields {
            let (common, written) = model_field(&t, f);
            let expect_flag = written && common.as_ref().is_some_and(BTreeSet::is_empty);
            let needle = format!("field `Top.f{f}`");
            let flagged = violations.iter().any(|v| v.message.contains(&needle));
            prop_assert_eq!(
                flagged, expect_flag,
                "field f{}: flagged={} expected={}\n{:?}\n{}",
                f, flagged, expect_flag, violations, render(&t)
            );
        }
    }

    /// Zero-conflict topologies are always clean: when every method
    /// holds `lock0` (whatever else it holds or touches), no field can
    /// have an empty common lockset, so the rule must stay silent.
    #[test]
    fn fully_locked_topologies_are_clean(mut t in topology_strategy()) {
        for m in &mut t.methods {
            m.locks[0] = true;
        }
        let ts = analyze(&render(&t));
        let violations = shared_field_lockset::check(&ts);
        prop_assert!(
            violations.is_empty(),
            "clean topology flagged: {:?}\n{}",
            violations, render(&t)
        );
    }
}
