//! Integration tests for the `dlog-lint` binary: exit codes are pinned
//! (0 clean / 1 violations / 2 usage-or-IO error), the `--json` schema
//! is snapshotted byte-for-byte against a deterministic mini workspace,
//! and `--timing` renders the per-rule table without corrupting JSON
//! output.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A minimal workspace containing every file `lint_workspace` requires,
/// crafted so the whole catalog passes.
const WIRE_RS: &str = r#"
pub enum Message {
    Syn { isn: u64 },
    Fin,
}
fn encode_message(m: &Message) {
    match m {
        Message::Syn { isn } => drop(isn),
        Message::Fin => {}
    }
}
fn decode_message(tag: u8) -> Message {
    match tag {
        1 => Message::Syn { isn: 0 },
        _ => Message::Fin,
    }
}
pub enum Request {
    Ping,
}
fn encode_request(r: &Request) {
    match r {
        Request::Ping => {}
    }
}
fn decode_request(_: u8) -> Request {
    Request::Ping
}
pub enum Response {
    Ok,
    Status { records_stored: u64, naks_sent: u64 },
    Stats { stages: u64, trace_events: u64, trace_dropped: u64 },
}
fn encode_response(r: &Response) {
    match r {
        Response::Ok => {}
        Response::Status { records_stored, naks_sent } => drop((records_stored, naks_sent)),
        Response::Stats { stages, trace_events, trace_dropped } => {
            drop((stages, trace_events, trace_dropped));
        }
    }
}
fn decode_response(tag: u8) -> Response {
    match tag {
        1 => Response::Ok,
        2 => Response::Status { records_stored: 0, naks_sent: 0 },
        _ => Response::Stats { stages: 0, trace_events: 0, trace_dropped: 0 },
    }
}
"#;

const WIRE_PROPS_RS: &str = r#"
fn arb() {
    let a = (Message::Syn { isn: 1 }, Message::Fin, Request::Ping);
    let b = (Response::Ok, Response::Status { records_stored: 0, naks_sent: 0 });
    let c = Response::Stats { stages: 0, trace_events: 0, trace_dropped: 0 };
    use_all(a, b, c);
}
"#;

const PROTOCOL_MD: &str = r#"# Protocol

### Status gauges

| gauge | meaning |
|-------|---------|
| `records_stored` | records stored |
| `naks_sent` | NAKs sent |

### Stats fields

| field | meaning |
|-------|---------|
| `stages` | per-stage latency histograms |
| `trace_events` | trace events recorded |
| `trace_dropped` | trace events evicted |
"#;

/// A result-swallow violation at a pinned line for the snapshot test.
const BAD_RS: &str = "fn sloppy(&mut self) {\n    let _ = self.dev.force(cursor);\n}\n";

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, text).unwrap();
}

/// Build the mini workspace under a fresh temp directory.
fn mini_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("dlog-lint-bin-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    write(&root, "Cargo.toml", "[workspace]\nmembers = []\n");
    write(&root, "crates/net/src/wire.rs", WIRE_RS);
    write(&root, "crates/net/src/mem.rs", "// no locks here\n");
    write(&root, "crates/net/tests/wire_props.rs", WIRE_PROPS_RS);
    write(&root, "crates/storage/src/nvram.rs", "// no locks here\n");
    write(
        &root,
        "crates/archive/src/object_store.rs",
        "// no locks here\n",
    );
    write(&root, "docs/PROTOCOL.md", PROTOCOL_MD);
    for dir in [
        "crates/server/src",
        "crates/append-forest/src",
        "crates/obs/src",
        "crates/types/src",
        "crates/mc/src",
    ] {
        fs::create_dir_all(root.join(dir)).unwrap();
    }
    root
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dlog-lint"))
        .args(args)
        .output()
        .expect("spawn dlog-lint")
}

fn run_at(root: &Path, extra: &[&str]) -> Output {
    let mut args = vec!["--root", root.to_str().unwrap()];
    args.extend_from_slice(extra);
    run(&args)
}

#[test]
fn exit_zero_on_clean_workspace() {
    let root = mini_workspace("clean");
    let out = run_at(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn exit_one_on_violations() {
    let root = mini_workspace("dirty");
    write(&root, "crates/storage/src/bad.rs", BAD_RS);
    let out = run_at(&root, &[]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("result-swallow"), "stdout: {text}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn exit_two_on_usage_error() {
    assert_eq!(run(&["--bogus"]).status.code(), Some(2));
    assert_eq!(run(&["--root"]).status.code(), Some(2));
}

#[test]
fn exit_two_on_io_error() {
    let out = run(&["--root", "/nonexistent/dlog-lint-missing"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn exit_two_on_unknown_allowlist_rule() {
    let root = mini_workspace("bad-allow");
    write(
        &root,
        "lint.allow",
        "no-such-rule crates/net/src/wire.rs * # typo'd rule id\n",
    );
    let out = run_at(&root, &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_schema_snapshot_clean() {
    let root = mini_workspace("json-clean");
    let out = run_at(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(0));
    let expected = "{\n  \"ok\": true,\n  \"files_scanned\": 6,\n  \"allowed\": 0,\n  \
                    \"violations\": [],\n  \"unused_allow_entries\": []\n}\n";
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_schema_snapshot_violation() {
    let root = mini_workspace("json-dirty");
    write(&root, "crates/storage/src/bad.rs", BAD_RS);
    let out = run_at(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let expected = concat!(
        "{\n",
        "  \"ok\": false,\n",
        "  \"files_scanned\": 7,\n",
        "  \"allowed\": 0,\n",
        "  \"violations\": [\n",
        "    {\"rule\": \"result-swallow\", \"file\": \"crates/storage/src/bad.rs\", ",
        "\"line\": 2, \"scope\": \"sloppy\", \"message\": \"`let _ =` discards the Result \
         of `.force()`; a swallowed durability error breaks ack-after-force (\u{a7}4.2) \
         \u{2014} handle it or allowlist with justification\"}\n",
        "  ],\n",
        "  \"unused_allow_entries\": []\n",
        "}\n",
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn timing_flag_prints_all_rules() {
    let root = mini_workspace("timing");
    let out = run_at(&root, &["--timing"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-rule wall time"), "stdout: {text}");
    for rule in dlog_lint::rules::ALL_RULES {
        assert!(text.contains(rule), "missing timing row for {rule}: {text}");
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn callgraph_text_dumps_functions() {
    let root = mini_workspace("cg-text");
    let out = run_at(&root, &["--callgraph"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("crates/net/src/wire.rs::encode_message"),
        "stdout: {text}"
    );
    assert!(text.contains("summary pass(es)"), "stdout: {text}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn callgraph_dot_is_a_digraph() {
    let root = mini_workspace("cg-dot");
    let out = run_at(&root, &["--callgraph", "--dot"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.starts_with("digraph dlog_callgraph {"),
        "stdout: {text}"
    );
    assert!(text.trim_end().ends_with('}'), "stdout: {text}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn callgraph_json_includes_summaries() {
    let root = mini_workspace("cg-json");
    let out = run_at(&root, &["--callgraph", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    assert!(text.contains("\"fns\": ["), "stdout: {text}");
    assert!(text.contains("\"may_panic\": "), "stdout: {text}");
    assert!(text.contains("\"summary_passes\": "), "stdout: {text}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn callgraph_exit_two_on_io_error() {
    let out = run(&["--callgraph", "--root", "/nonexistent/dlog-lint-missing"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn dot_without_callgraph_is_a_usage_error() {
    let out = run(&["--dot"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dot requires --callgraph"));
}

#[test]
fn unused_allow_entry_is_warned_and_reported() {
    let root = mini_workspace("stale-allow");
    write(
        &root,
        "lint.allow",
        "panic-freedom crates/net/src/wire.rs no_such_fn # audited exception that went stale\n",
    );
    let out = run_at(&root, &[]);
    // Stale entries warn but do not fail the gate by themselves.
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("warning: unused lint.allow entry"),
        "stdout: {text}"
    );

    let out = run_at(&root, &["--json"]);
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains(
            "\"unused_allow_entries\": [\"lint.allow:1: panic-freedom crates/net/src/wire.rs no_such_fn\"]"
        ),
        "stdout: {json}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn race_report_emits_json() {
    let root = mini_workspace("race-report");
    let out = run_at(&root, &["--race-report"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    assert!(text.contains("\"structs\": ["), "stdout: {text}");
    assert!(text.contains("\"atomics\": ["), "stdout: {text}");
    assert!(text.contains("\"thread_roots\": ["), "stdout: {text}");

    // The deep lane (no interprocedural round cap) must agree with the
    // capped run on this tiny workspace.
    let deep = run_at(&root, &["--race-report", "--deep"]);
    assert_eq!(deep.status.code(), Some(0));
    assert_eq!(out.stdout, deep.stdout);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn json_with_timing_keeps_stdout_parseable() {
    let root = mini_workspace("json-timing");
    let out = run_at(&root, &["--json", "--timing"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with('{') && stdout.trim_end().ends_with('}'));
    assert!(!stdout.contains("per-rule wall time"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("per-rule wall time"));
    let _ = fs::remove_dir_all(&root);
}
