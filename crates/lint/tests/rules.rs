//! Fixture-driven tests: each rule must fire on its failing fixture and
//! stay silent on its passing one, and the workspace itself must be
//! clean under the full catalog (the same check `tests/lint_gate.rs`
//! enforces in tier-1).

use dlog_lint::dataflow::{run_rule, DataflowRule};
use dlog_lint::rules;
use dlog_lint::SourceFile;

fn fixture(name: &str) -> SourceFile {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    SourceFile::parse(&format!("fixtures/{name}"), &text)
}

fn fixture_text(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn panic_freedom_fixture_fails() {
    let vs = rules::panic_freedom::check(&fixture("panic_freedom_fail.rs"));
    // unwrap, expect, indexing, panic! — all four classes.
    assert_eq!(vs.len(), 4, "{vs:?}");
    assert!(vs.iter().all(|v| v.rule == rules::panic_freedom::RULE));
    assert!(vs.iter().all(|v| v.scope == "hot"));
}

#[test]
fn panic_freedom_fixture_passes() {
    let vs = rules::panic_freedom::check(&fixture("panic_freedom_pass.rs"));
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn lock_order_fixture_fails() {
    let f = fixture("lock_order_fail.rs");
    let vs = rules::lock_order::check(&[&f]);
    assert!(!vs.is_empty(), "ABBA cycle not detected");
    assert!(vs.iter().all(|v| v.rule == rules::lock_order::RULE));
    assert!(vs[0].message.contains("alpha") && vs[0].message.contains("beta"));
}

#[test]
fn lock_order_fixture_passes() {
    let f = fixture("lock_order_pass.rs");
    let vs = rules::lock_order::check(&[&f]);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn ack_after_force_fixture_fails() {
    let vs = rules::ack_after_force::check(&fixture("ack_after_force_fail.rs"));
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, rules::ack_after_force::RULE);
    assert_eq!(vs[0].scope, "handle_force");
}

#[test]
fn ack_after_force_fixture_passes() {
    let vs = rules::ack_after_force::check(&fixture("ack_after_force_pass.rs"));
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn wire_exhaustiveness_fixture_fails() {
    let wire = fixture("wire_fail.rs");
    let props = fixture("wire_props_fail.rs");
    let vs = rules::wire_exhaustive::check(&wire, &props);
    // Message::Nak: missing encode arm, decode arm, and props coverage.
    assert_eq!(vs.len(), 3, "{vs:?}");
    assert!(vs.iter().all(|v| v.message.contains("Message::Nak")));
}

#[test]
fn status_parity_fixture_fails() {
    let wire = fixture("status_wire.rs");
    let doc = fixture_text("status_doc_fail.md");
    let vs = rules::status_parity::check(&wire, "fixtures/status_doc_fail.md", &doc);
    // naks_sent missing from the doc, ghost_gauge phantom in the doc.
    assert_eq!(vs.len(), 2, "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("naks_sent")));
    assert!(vs.iter().any(|v| v.message.contains("ghost_gauge")));
}

#[test]
fn stats_parity_fixture_fails() {
    let wire = fixture("status_wire.rs");
    let doc = fixture_text("stats_doc_fail.md");
    let vs = rules::status_parity::check(&wire, "fixtures/stats_doc_fail.md", &doc);
    // Status table is correct; the Stats table misses trace_events and
    // documents phantom_stat.
    assert_eq!(vs.len(), 2, "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("trace_events")));
    assert!(vs.iter().any(|v| v.message.contains("phantom_stat")));
}

#[test]
fn status_parity_fixture_passes() {
    let wire = fixture("status_wire.rs");
    let doc = fixture_text("status_doc_pass.md");
    let vs = rules::status_parity::check(&wire, "fixtures/status_doc_pass.md", &doc);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn forbid_unsafe_fixture_fails() {
    let vs = rules::forbid_unsafe::check(&fixture("forbid_unsafe_fail.rs"));
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, rules::forbid_unsafe::RULE);
}

#[test]
fn forbid_unsafe_fixture_passes() {
    let vs = rules::forbid_unsafe::check(&fixture("forbid_unsafe_pass.rs"));
    assert!(vs.is_empty(), "{vs:?}");
}

fn dataflow_fixture(rule: &dyn DataflowRule, name: &str) -> Vec<dlog_lint::Violation> {
    run_rule(rule, &fixture(name))
}

#[test]
fn blocking_under_lock_fixtures() {
    let vs = dataflow_fixture(
        &rules::blocking_under_lock::BlockingUnderLock,
        "blocking_under_lock_fail.rs",
    );
    assert_eq!(vs.len(), 2, "{vs:?}");
    assert!(vs.iter().any(|v| v.scope == "hold_across_force"));
    assert!(vs.iter().any(|v| v.scope == "temporary_guard_chain"));
    let vs = dataflow_fixture(
        &rules::blocking_under_lock::BlockingUnderLock,
        "blocking_under_lock_pass.rs",
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn lsn_checked_arith_fixtures() {
    let vs = dataflow_fixture(
        &rules::lsn_checked_arith::LsnCheckedArith,
        "lsn_checked_arith_fail.rs",
    );
    assert_eq!(vs.len(), 3, "{vs:?}");
    assert!(vs.iter().all(|v| v.scope == "bump"));
    let vs = dataflow_fixture(
        &rules::lsn_checked_arith::LsnCheckedArith,
        "lsn_checked_arith_pass.rs",
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn seal_typestate_fixtures() {
    let vs = dataflow_fixture(
        &rules::seal_typestate::SealTypestate,
        "seal_typestate_fail.rs",
    );
    assert_eq!(vs.len(), 2, "{vs:?}");
    assert!(vs.iter().any(|v| v.scope == "straight_line"));
    assert!(vs.iter().any(|v| v.scope == "sealed_on_one_branch"));
    let vs = dataflow_fixture(
        &rules::seal_typestate::SealTypestate,
        "seal_typestate_pass.rs",
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn result_swallow_fixtures() {
    let vs = dataflow_fixture(
        &rules::result_swallow::ResultSwallow,
        "result_swallow_fail.rs",
    );
    assert_eq!(vs.len(), 3, "{vs:?}");
    assert!(vs.iter().all(|v| v.scope == "swallow"));
    assert!(vs
        .iter()
        .any(|v| v.message.contains("never consumed on some path")));
    let vs = dataflow_fixture(
        &rules::result_swallow::ResultSwallow,
        "result_swallow_pass.rs",
    );
    assert!(vs.is_empty(), "{vs:?}");
}

/// Run the thread-safety pass over one fixture file.
fn threadsafe_fixture(name: &str) -> dlog_lint::threadsafe::ThreadSafety {
    let f = fixture(name);
    let files = [&f];
    let graph = dlog_lint::callgraph::CallGraph::build(&files, &std::collections::BTreeMap::new());
    dlog_lint::threadsafe::analyze(&files, &graph, Some(dlog_lint::threadsafe::DEFAULT_ROUNDS))
}

#[test]
fn shared_field_lockset_fixtures() {
    let ts = threadsafe_fixture("shared_field_lockset_fail.rs");
    let vs = rules::shared_field_lockset::check(&ts);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, rules::shared_field_lockset::RULE);
    assert!(vs[0].message.contains("hits"), "{}", vs[0].message);
    let ts = threadsafe_fixture("shared_field_lockset_pass.rs");
    let vs = rules::shared_field_lockset::check(&ts);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn atomics_ordering_fixtures() {
    let ts = threadsafe_fixture("atomics_ordering_fail.rs");
    let vs = rules::atomics_ordering::check(&ts);
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert_eq!(vs[0].rule, rules::atomics_ordering::RULE);
    assert!(vs[0].message.contains("Relaxed"), "{}", vs[0].message);
    assert!(vs[0].message.contains("payload"), "{}", vs[0].message);
    let ts = threadsafe_fixture("atomics_ordering_pass.rs");
    let vs = rules::atomics_ordering::check(&ts);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn view_escape_fixtures() {
    let vs = dataflow_fixture(&rules::view_escape::ViewEscape, "view_escape_fail.rs");
    assert_eq!(vs.len(), 2, "{vs:?}");
    assert!(vs.iter().all(|v| v.rule == rules::view_escape::RULE));
    let vs = dataflow_fixture(&rules::view_escape::ViewEscape, "view_escape_pass.rs");
    assert!(vs.is_empty(), "{vs:?}");
}

/// The pinned fixture expectations (shared with the tier-1 gate) must
/// hold — a rule edit that changes what the catalog catches is drift.
#[test]
fn fixtures_are_pinned() {
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let checked = dlog_lint::fixtures::verify_fixtures(std::path::Path::new(&dir))
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(checked >= 30, "only {checked} fixture runs checked");
}

/// The workspace itself must be clean: zero unallowlisted violations and
/// no stale `lint.allow` entries. This is the same invariant the tier-1
/// gate (`tests/lint_gate.rs`) enforces from the bench crate.
#[test]
fn workspace_self_check_is_clean() {
    let root = dlog_lint::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = dlog_lint::lint_workspace(&root).expect("lint run");
    assert!(
        report.ok(),
        "workspace lint violations:\n{}",
        report.to_text()
    );
}
