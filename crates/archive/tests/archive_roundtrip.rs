//! End-to-end archival round-trip: append → seal → archive → wipe the
//! server directory → restore → every durable record is readable again
//! and the interval lists are intact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use dlog_archive::{restore, ArchiveReader, Archiver, MemStore};
use dlog_storage::store::{LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir()
        .join("dlog-archive-roundtrip")
        .join(format!("{name}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts() -> StoreOptions {
    StoreOptions {
        fsync: false,
        segment_bytes: 2048,
        track_bytes: 512,
        checkpoint_every: 0,
        ..StoreOptions::default()
    }
}

fn record(lsn: u64, epoch: u64, len: usize) -> LogRecord {
    let fill = (lsn % 251) as u8;
    LogRecord::present(Lsn(lsn), Epoch(epoch), vec![fill; len])
}

/// Push-mode round trip: archive everything durable, wipe, restore, and
/// verify every record for every client.
fn roundtrip_case(name: &str, per_client: &[(u64, Vec<usize>)]) {
    let dir = tmpdir(name);
    let objects = MemStore::new();
    let mut expected: Vec<(ClientId, Lsn, usize)> = Vec::new();
    {
        let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
        for (client, lens) in per_client {
            for (i, &len) in lens.iter().enumerate() {
                let lsn = i as u64 + 1;
                store
                    .write(ClientId(*client), &record(lsn, 1, len))
                    .unwrap();
                expected.push((ClientId(*client), Lsn(lsn), len));
            }
        }
        let mut archiver = Archiver::new(Arc::new(objects.clone())).unwrap();
        let manifest = archiver.archive_now(&mut store).unwrap();
        assert_eq!(manifest.restore_end, store.stream_end());
        assert_eq!(
            manifest.cut, manifest.restore_end,
            "synced stream ends on a frame boundary"
        );
    }

    // Total server loss: directory wiped, NVRAM gone.
    std::fs::remove_dir_all(&dir).unwrap();
    let manifest = restore(&objects, &dir).unwrap();
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    assert_eq!(store.stream_end(), manifest.cut);

    for (client, lsn, len) in &expected {
        let r = store
            .read(*client, *lsn)
            .unwrap()
            .unwrap_or_else(|| panic!("{client} {lsn} lost in round trip"));
        assert_eq!(r.data.len(), *len);
        assert_eq!(
            r.data.as_bytes(),
            vec![(lsn.0 % 251) as u8; *len].as_slice()
        );
    }
    for (client, lens) in per_client {
        let list = store.interval_list(ClientId(*client));
        assert_eq!(list.last().unwrap().hi, Lsn(lens.len() as u64));
    }

    // The ArchiveReader serves the same records without any local state.
    let mut reader = ArchiveReader::open(Arc::new(objects)).unwrap().unwrap();
    for (client, lsn, len) in &expected {
        let r = reader.read(*client, *lsn).unwrap().unwrap();
        assert_eq!(r.data.len(), *len);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random record sizes (some spanning segment boundaries, some
    /// oversized past the NVRAM track) and client mixes all survive the
    /// wipe-and-restore cycle.
    #[test]
    fn archive_restore_roundtrip(
        lens_a in proptest::collection::vec(16usize..600, 1..40),
        lens_b in proptest::collection::vec(16usize..600, 0..40),
    ) {
        let mut per_client = vec![(1u64, lens_a)];
        if !lens_b.is_empty() {
            per_client.push((2u64, lens_b));
        }
        roundtrip_case("prop", &per_client);
    }
}

#[test]
fn tick_archives_sealed_segments_only() {
    // Background mode: only sealed segments are archived; a frame
    // spilling across the last sealed boundary is excluded from the cut
    // and becomes the torn tail recovery truncates after restore.
    let dir = tmpdir("tick");
    let objects = MemStore::new();
    let cut;
    {
        let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
        for i in 1..=120u64 {
            store.write(ClientId(1), &record(i, 1, 100)).unwrap();
        }
        store.sync().unwrap();
        assert!(
            store.sealed_segments().len() >= 2,
            "need several sealed segments"
        );

        let mut archiver = Archiver::new(Arc::new(objects.clone())).unwrap();
        let manifest = archiver.tick(&mut store).unwrap().expect("work to do");
        let sealed_end = (store.sealed_segments().last().unwrap() + 1) * store.segment_bytes();
        assert_eq!(manifest.restore_end, sealed_end);
        assert!(manifest.cut <= sealed_end);
        assert!(
            sealed_end - manifest.cut < 200,
            "cut lands on the last whole frame"
        );
        cut = manifest.cut;

        // A second tick with no new sealed segments is a no-op.
        assert!(archiver.tick(&mut store).unwrap().is_none());
        assert_eq!(store.archived_to(), Some(sealed_end));
    }

    std::fs::remove_dir_all(&dir).unwrap();
    restore(&objects, &dir).unwrap();
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    assert_eq!(store.stream_end(), cut, "partial tail frame truncated");

    // Every frame wholly below the cut is readable; the spilled frame and
    // everything after are gone (they were never archived).
    let list = store.interval_list(ClientId(1));
    let hi = list.last().unwrap().hi;
    assert!(hi.0 >= 100, "most records archived, got {hi:?}");
    for i in 1..=hi.0 {
        assert!(
            store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
            "lsn {i}"
        );
    }
    assert!(store.read(ClientId(1), Lsn(hi.0 + 1)).unwrap().is_none());

    // The restored server keeps logging where the archive left off.
    for i in hi.0 + 1..=hi.0 + 10 {
        store.write(ClientId(1), &record(i, 1, 60)).unwrap();
    }
    assert!(store.read(ClientId(1), Lsn(hi.0 + 5)).unwrap().is_some());
}

#[test]
fn archive_outlives_retention() {
    // The bottomless-log property: retention prunes the local head after
    // archival, later archives carry the old segments forward, and a
    // restore still serves the whole history.
    let dir = tmpdir("bottomless");
    let objects = MemStore::new();
    {
        let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
        let mut archiver = Archiver::new(Arc::new(objects.clone())).unwrap();
        for i in 1..=60u64 {
            store.write(ClientId(1), &record(i, 1, 100)).unwrap();
        }
        archiver.archive_now(&mut store).unwrap();
        let report = store.enforce_retention(2048).unwrap();
        assert!(report.freed > 0, "archived head must be droppable");
        assert!(store.stream_start() > 0);

        for i in 61..=120u64 {
            store.write(ClientId(1), &record(i, 1, 100)).unwrap();
        }
        let manifest = archiver.archive_now(&mut store).unwrap();
        assert_eq!(
            manifest.start(),
            0,
            "archive still reaches back to position 0"
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
    restore(&objects, &dir).unwrap();
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    for i in 1..=120u64 {
        assert!(
            store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
            "lsn {i}"
        );
    }
}

#[test]
fn staged_copies_cross_the_archive_boundary() {
    // CopyLog records staged before an archival round and installed after
    // it: the manifest's replay state carries the staged records, so the
    // next round's install applies cleanly.
    let dir = tmpdir("staged");
    let objects = MemStore::new();
    {
        let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
        let mut archiver = Archiver::new(Arc::new(objects.clone())).unwrap();
        for i in 1..=10u64 {
            store.write(ClientId(1), &record(i, 1, 80)).unwrap();
        }
        store.stage_copy(ClientId(1), &record(10, 2, 90)).unwrap();
        store
            .stage_copy(ClientId(1), &LogRecord::not_present(Lsn(11), Epoch(2)))
            .unwrap();
        archiver.archive_now(&mut store).unwrap();

        store.install_copies(ClientId(1), Epoch(2)).unwrap();
        archiver.archive_now(&mut store).unwrap();
    }

    std::fs::remove_dir_all(&dir).unwrap();
    restore(&objects, &dir).unwrap();
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    let r = store.read(ClientId(1), Lsn(10)).unwrap().unwrap();
    assert_eq!(r.epoch, Epoch(2), "installed rewrite survives restore");
    assert!(!store.read(ClientId(1), Lsn(11)).unwrap().unwrap().present);
}
