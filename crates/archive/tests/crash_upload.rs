//! Crash-mid-upload: interrupt the archiver at every possible put (clean
//! failures and torn objects alike), re-run it — same instance or a
//! restarted one — and prove the archive converges to the same
//! byte-identical manifest with no duplicate or torn entries.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dlog_archive::{load_latest, restore, Archiver, Manifest, MemStore, ObjectStore, RetryPolicy};
use dlog_storage::store::{LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmpdir(name: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir()
        .join("dlog-archive-crash")
        .join(format!("{name}-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts() -> StoreOptions {
    StoreOptions {
        fsync: false,
        segment_bytes: 2048,
        track_bytes: 512,
        checkpoint_every: 0,
        ..StoreOptions::default()
    }
}

fn no_backoff() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        base_delay: Duration::ZERO,
    }
}

fn fill(store: &mut LogStore, lo: u64, hi: u64) {
    for i in lo..=hi {
        store
            .write(
                ClientId(1),
                &LogRecord::present(Lsn(i), Epoch(1), vec![i as u8; 100]),
            )
            .unwrap();
    }
}

/// The archive contents a fault-free run produces for the same store
/// state — the convergence target.
fn reference_archive(dir: &PathBuf) -> (Vec<String>, Vec<u8>) {
    let objects = MemStore::new();
    let mut store = LogStore::open(dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    let mut archiver = Archiver::new(Arc::new(objects.clone())).unwrap();
    let m = archiver.archive_now(&mut store).unwrap();
    let manifest_bytes = objects.object(&Manifest::key(m.generation)).unwrap();
    (objects.keys(), manifest_bytes)
}

#[test]
fn crash_at_every_put_converges() {
    let dir = tmpdir("every-put");
    {
        let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
        fill(&mut store, 1, 100);
        store.sync().unwrap();
    }
    let (want_keys, want_manifest) = reference_archive(&dir);
    let total_puts = want_keys.len() as u64;
    assert!(total_puts >= 4, "need several objects to interrupt");

    for fail_at in 0..total_puts {
        for tear in [false, true] {
            for restart in [false, true] {
                let objects = MemStore::new();
                let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
                let mut archiver = Archiver::new(Arc::new(objects.clone()))
                    .unwrap()
                    .with_policy(no_backoff());

                objects.fail_after_puts(fail_at, tear);
                let err = archiver.archive_now(&mut store).unwrap_err();
                assert!(err.to_string().contains("injected"), "{err}");
                assert_eq!(
                    store.archived_to().unwrap_or(0),
                    0,
                    "watermark must not advance on a failed round (fail_at {fail_at})"
                );
                objects.clear_faults();

                // Either the same archiver retries, or a restarted one
                // resumes from whatever reached the object store.
                if restart {
                    archiver = Archiver::new(Arc::new(objects.clone()))
                        .unwrap()
                        .with_policy(no_backoff());
                }
                let m = archiver.archive_now(&mut store).unwrap();

                assert_eq!(
                    objects.keys(),
                    want_keys,
                    "fail_at {fail_at} tear {tear} restart {restart}"
                );
                assert_eq!(
                    objects.object(&Manifest::key(m.generation)).unwrap(),
                    want_manifest,
                    "manifest must be byte-identical (fail_at {fail_at} tear {tear} restart {restart})"
                );
                let loaded = load_latest(&objects).unwrap().unwrap();
                assert_eq!(loaded, m);
                let seen: HashSet<u64> = m.segments.iter().map(|e| e.index).collect();
                assert_eq!(
                    seen.len(),
                    m.segments.len(),
                    "no duplicate manifest entries"
                );
                assert_eq!(store.archived_to(), Some(m.restore_end));
            }
        }
    }
}

#[test]
fn transient_faults_are_retried_and_counted() {
    let dir = tmpdir("retries");
    let objects = MemStore::new();
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    fill(&mut store, 1, 40);

    let mut archiver = Archiver::new(Arc::new(objects.clone()))
        .unwrap()
        .with_policy(RetryPolicy {
            attempts: 4,
            base_delay: Duration::ZERO,
        });
    objects.fail_after_puts(1, false);
    let err = archiver.archive_now(&mut store).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    assert_eq!(
        archiver.stats().upload_retries,
        4,
        "every failed put attempt is counted"
    );

    objects.clear_faults();
    let m = archiver.archive_now(&mut store).unwrap();
    assert_eq!(m.generation, 1);
    assert!(archiver.pending_bytes(&store) == 0);
}

#[test]
fn torn_manifest_is_invisible_to_readers() {
    // A crash during the final manifest put on a non-atomic backend
    // leaves a torn manifest object; loaders skip it and restore still
    // works from the previous generation.
    let dir = tmpdir("torn-manifest");
    let objects = MemStore::new();
    let gen1;
    {
        let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
        let mut archiver = Archiver::new(Arc::new(objects.clone()))
            .unwrap()
            .with_policy(no_backoff());
        fill(&mut store, 1, 60);
        gen1 = archiver.archive_now(&mut store).unwrap();

        // More data, then crash exactly on the generation-2 manifest put.
        fill(&mut store, 61, 90);
        store.sync().unwrap();
        let puts_before_manifest = {
            // Dry-run the same round against a scratch copy to learn how
            // many segment puts precede the manifest put.
            let scratch = MemStore::new();
            for k in objects.keys() {
                scratch.put(&k, &objects.object(&k).unwrap()).unwrap();
            }
            let before = scratch.put_count();
            let mut a2 = Archiver::new(Arc::new(scratch.clone())).unwrap();
            let mut s2 = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
            a2.archive_now(&mut s2).unwrap();
            scratch.put_count() - before - 1
        };
        objects.fail_after_puts(puts_before_manifest, true);
        archiver.archive_now(&mut store).unwrap_err();
        objects.clear_faults();
    }
    // The torn generation-2 manifest exists but is skipped.
    assert!(objects.object(&Manifest::key(2)).is_some());
    let loaded = load_latest(&objects).unwrap().unwrap();
    assert_eq!(loaded, gen1);

    std::fs::remove_dir_all(&dir).unwrap();
    restore(&objects, &dir).unwrap();
    let mut restored = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    for i in 1..=60u64 {
        assert!(
            restored.read(ClientId(1), Lsn(i)).unwrap().is_some(),
            "lsn {i}"
        );
    }
}
