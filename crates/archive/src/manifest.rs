//! The archive manifest: one immutable, CRC-checked object per archival
//! round describing a consistent prefix of a server's log stream.
//!
//! A manifest records the archived byte range, the per-segment lengths and
//! checksums, and a serialized [`ReplayState`] — the interval table and
//! staged `CopyLog` records that crash recovery would rebuild by scanning
//! the stream up to the manifest's `cut`. Manifests are generation-
//! numbered (`manifest-NNNNNNNN`) and written *after* every segment object
//! they reference, so the highest generation that decodes cleanly always
//! describes a fully uploaded archive; torn or missing manifests from a
//! crashed upload are simply skipped.

use dlog_storage::crc::crc32;
use dlog_storage::stream::segment_file_name;
use dlog_storage::ReplayState;
use dlog_types::{DlogError, Lsn, Result};

use crate::object_store::ObjectStore;

/// `"DLAM"` — dlog archive manifest.
const MANIFEST_MAGIC: u32 = 0x444C_414D;
const MANIFEST_VERSION: u32 = 1;
/// Fixed-size header fields before the segment table (magic, version,
/// generation, segment_bytes, restore_end, cut, nsegs).
const HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 8 + 8 + 4;

/// One archived segment object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment index (position `index * segment_bytes` in the stream).
    pub index: u64,
    /// Object length in bytes (`segment_bytes` except for a partial
    /// tail pushed by `archive now`).
    pub len: u64,
    /// CRC-32 of the object contents.
    pub crc: u32,
}

/// A decoded archive manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic generation number; higher supersedes lower.
    pub generation: u64,
    /// Segment capacity of the archived stream.
    pub segment_bytes: u64,
    /// One past the last archived stream byte.
    pub restore_end: u64,
    /// Frame-aligned position ≤ `restore_end`: every frame wholly below
    /// `cut` is covered by `state`; bytes in `[cut, restore_end)` are at
    /// most one partial frame, truncated by recovery after a restore.
    pub cut: u64,
    /// Archived segment objects, ascending by index, contiguous; only the
    /// last may be partial.
    pub segments: Vec<SegmentEntry>,
    /// Serialized [`ReplayState`] as of `cut`.
    pub state: Vec<u8>,
}

impl Manifest {
    /// Object key of the manifest with `generation`.
    #[must_use]
    pub fn key(generation: u64) -> String {
        format!("manifest-{generation:08}")
    }

    /// Object key of segment `index` — identical to the segment's on-disk
    /// file name, so restore is a straight copy.
    #[must_use]
    pub fn segment_key(index: u64) -> dlog_types::namebuf::NameBuf<32> {
        segment_file_name(index)
    }

    /// First archived stream position.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.segments
            .first()
            .map_or(self.restore_end, |e| e.index * self.segment_bytes)
    }

    /// Total archived payload bytes.
    #[must_use]
    pub fn archived_bytes(&self) -> u64 {
        self.segments.iter().map(|e| e.len).sum()
    }

    /// Decode the replay state carried by the manifest.
    ///
    /// # Errors
    /// Fails when the state bytes are corrupt.
    pub fn replay_state(&self) -> Result<ReplayState> {
        ReplayState::decode(&self.state).map_err(DlogError::Corrupt)
    }

    /// Highest installed LSN across all clients in the archived table
    /// (`Lsn::ZERO` when empty).
    ///
    /// # Errors
    /// Fails when the state bytes are corrupt.
    pub fn last_lsn(&self) -> Result<Lsn> {
        let state = self.replay_state()?;
        let table = state.table();
        let mut last = Lsn(0);
        for client in table.clients().collect::<Vec<_>>() {
            if let Some(iv) = table.interval_list(client).last() {
                last = last.max(iv.hi);
            }
        }
        Ok(last)
    }

    /// Serialize the manifest (trailing CRC-32 over everything before it).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(HEADER_BYTES + self.segments.len() * 20 + self.state.len());
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.segment_bytes.to_le_bytes());
        out.extend_from_slice(&self.restore_end.to_le_bytes());
        out.extend_from_slice(&self.cut.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for e in &self.segments {
            out.extend_from_slice(&e.index.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
        }
        out.extend_from_slice(&(self.state.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.state);
        out.extend_from_slice(&crc32(&out).to_le_bytes());
        out
    }

    /// Decode and validate a manifest object.
    ///
    /// # Errors
    /// Fails on bad magic/version, truncation, or CRC mismatch.
    pub fn decode(bytes: &[u8]) -> Result<Manifest> {
        let corrupt = |m: &str| DlogError::Corrupt(m.into());
        if bytes.len() < HEADER_BYTES + 8 {
            return Err(corrupt("truncated header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().map_err(|_| corrupt("truncated crc"))?);
        if crc32(body) != stored {
            return Err(corrupt("crc mismatch"));
        }
        // Total readers: decode runs on bytes from the object store, so
        // every fetch is guarded — a short read is `Corrupt`, not a panic.
        let u32_at = |o: usize| {
            body.get(o..o + 4)
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| corrupt("truncated field"))
        };
        let u64_at = |o: usize| {
            body.get(o..o + 8)
                .and_then(|s| <[u8; 8]>::try_from(s).ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| corrupt("truncated field"))
        };
        if u32_at(0)? != MANIFEST_MAGIC {
            return Err(corrupt("bad magic"));
        }
        if u32_at(4)? != MANIFEST_VERSION {
            return Err(corrupt("unsupported version"));
        }
        let generation = u64_at(8)?;
        let segment_bytes = u64_at(16)?;
        let restore_end = u64_at(24)?;
        let cut = u64_at(32)?;
        let nsegs = u32_at(40)? as usize;
        let mut off = HEADER_BYTES;
        if body.len() < off + nsegs * 20 + 4 {
            return Err(corrupt("truncated segment table"));
        }
        let mut segments = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            segments.push(SegmentEntry {
                index: u64_at(off)?,
                len: u64_at(off + 8)?,
                crc: u32_at(off + 16)?,
            });
            off += 20;
        }
        let state_len = u32_at(off)? as usize;
        off += 4;
        if body.len() != off + state_len {
            return Err(corrupt("state length mismatch"));
        }
        let state = body.get(off..).unwrap_or_default().to_vec();
        Ok(Manifest {
            generation,
            segment_bytes,
            restore_end,
            cut,
            segments,
            state,
        })
    }
}

/// Load the newest valid manifest from `objects`: the highest generation
/// whose object exists and decodes cleanly. Torn manifests (a crash mid
/// final put on a non-atomic backend) are skipped.
///
/// # Errors
/// Propagates backend I/O failures.
pub fn load_latest(objects: &dyn ObjectStore) -> Result<Option<Manifest>> {
    let mut keys = objects.list("manifest-")?;
    keys.sort_unstable();
    for key in keys.iter().rev() {
        let Some(bytes) = objects.get(key)? else {
            continue;
        };
        if let Ok(m) = Manifest::decode(&bytes) {
            return Ok(Some(m));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_store::MemStore;

    fn sample(generation: u64) -> Manifest {
        Manifest {
            generation,
            segment_bytes: 4096,
            restore_end: 9000,
            cut: 8990,
            segments: vec![
                SegmentEntry {
                    index: 0,
                    len: 4096,
                    crc: 7,
                },
                SegmentEntry {
                    index: 1,
                    len: 4096,
                    crc: 8,
                },
                SegmentEntry {
                    index: 2,
                    len: 808,
                    crc: 9,
                },
            ],
            state: ReplayState::new().encode(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample(3);
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut bytes = sample(3).encode();
        assert!(Manifest::decode(&bytes[..10]).is_err());
        bytes[20] ^= 0xFF;
        assert!(Manifest::decode(&bytes).is_err());
    }

    #[test]
    fn load_latest_skips_torn_generations() {
        let store = MemStore::new();
        store.put(&Manifest::key(1), &sample(1).encode()).unwrap();
        store.put(&Manifest::key(2), &sample(2).encode()).unwrap();
        // Generation 3 crashed mid-put: torn object.
        let torn = sample(3).encode();
        store
            .put(&Manifest::key(3), &torn[..torn.len() / 2])
            .unwrap();
        let m = load_latest(&store).unwrap().unwrap();
        assert_eq!(m.generation, 2);
    }
}
