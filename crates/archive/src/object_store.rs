//! Object-store backends for the archive tier.
//!
//! The archiver only needs four flat-namespace operations, so the trait is
//! deliberately tiny: any blob store (a cloud bucket, a tape robot, an
//! NFS mount) can back it. Two implementations ship with the crate:
//! [`LocalDirStore`], which maps keys to files in a directory with
//! atomic-rename puts, and [`MemStore`], an in-memory backend with
//! deterministic fault injection for crash-mid-upload tests.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A flat key → blob store. Keys are short path-safe names (the archiver
/// uses `seg-NNNNNNNN.seg` and `manifest-NNNNNNNN`). `put` must be
/// all-or-nothing per key: a reader never observes a partially written
/// object under the final key.
pub trait ObjectStore: Send + Sync {
    /// Store `bytes` under `key`, replacing any existing object.
    ///
    /// # Errors
    /// Propagates backend I/O failures.
    fn put(&self, key: &str, bytes: &[u8]) -> io::Result<()>;

    /// Fetch the object stored under `key`, or `None` if absent.
    ///
    /// # Errors
    /// Propagates backend I/O failures.
    fn get(&self, key: &str) -> io::Result<Option<Vec<u8>>>;

    /// All keys starting with `prefix`, sorted ascending.
    ///
    /// # Errors
    /// Propagates backend I/O failures.
    fn list(&self, prefix: &str) -> io::Result<Vec<String>>;

    /// Remove the object under `key` (absent keys are not an error).
    ///
    /// # Errors
    /// Propagates backend I/O failures.
    fn delete(&self, key: &str) -> io::Result<()>;
}

/// Directory-backed object store: each key is a file, written to a
/// temporary name and renamed into place so readers never see torn
/// objects.
#[derive(Debug)]
pub struct LocalDirStore {
    dir: PathBuf,
}

impl LocalDirStore {
    /// Open (or create) the store rooted at `dir`.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<LocalDirStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(LocalDirStore { dir })
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl ObjectStore for LocalDirStore {
    fn put(&self, key: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{key}.tmp"));
        let fin = self.dir.join(key);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &fin)?;
        // A failed directory sync means the rename itself may not be
        // durable — propagate rather than ack an object that could
        // vanish on crash (§4.2 ack-after-force).
        if let Ok(d) = File::open(&self.dir) {
            d.sync_data()?;
        }
        Ok(())
    }

    fn get(&self, key: &str) -> io::Result<Option<Vec<u8>>> {
        match File::open(self.dir.join(key)) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.starts_with(prefix) && !name.ends_with(".tmp") {
                keys.push(name);
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        match fs::remove_file(self.dir.join(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[derive(Default)]
struct MemInner {
    objects: BTreeMap<String, Vec<u8>>,
    /// Successful puts observed.
    puts: u64,
    /// `Some(n)`: the next `n` puts succeed, then every put fails until
    /// the fault is cleared.
    puts_until_fault: Option<u64>,
    /// When faulting, leave a torn (half-written) object behind instead
    /// of failing cleanly — models a crash mid-upload on a backend
    /// without atomic puts.
    tear_on_fault: bool,
}

/// In-memory object store with deterministic fault injection, for tests:
/// arm it to start failing after a chosen number of puts, optionally
/// leaving a torn object behind, and verify the archiver converges once
/// the fault clears.
#[derive(Clone, Default)]
pub struct MemStore {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStore {
    /// Lock the inner state, recovering from poisoning: every operation
    /// leaves `MemInner` consistent before returning, so a panicked
    /// holder cannot leave a half-applied update worth dying over.
    fn locked(&self) -> MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// An empty store with no faults armed.
    #[must_use]
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Arm the fault: the next `n` puts succeed, after which every put
    /// fails (leaving a torn object when `tear` is set) until
    /// [`MemStore::clear_faults`].
    pub fn fail_after_puts(&self, n: u64, tear: bool) {
        let mut inner = self.locked();
        inner.puts_until_fault = Some(n);
        inner.tear_on_fault = tear;
    }

    /// Disarm any injected fault.
    pub fn clear_faults(&self) {
        let mut inner = self.locked();
        inner.puts_until_fault = None;
        inner.tear_on_fault = false;
    }

    /// Successful puts observed so far.
    #[must_use]
    pub fn put_count(&self) -> u64 {
        self.locked().puts
    }

    /// Snapshot of the object under `key` (test assertions).
    #[must_use]
    pub fn object(&self, key: &str) -> Option<Vec<u8>> {
        self.locked().objects.get(key).cloned()
    }

    /// All keys currently stored, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.locked().objects.keys().cloned().collect()
    }
}

impl ObjectStore for MemStore {
    fn put(&self, key: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.locked();
        let faulting = match inner.puts_until_fault.as_mut() {
            Some(0) => true,
            Some(n) => {
                *n -= 1;
                false
            }
            None => false,
        };
        if faulting {
            if inner.tear_on_fault {
                let torn: Vec<u8> = bytes.iter().copied().take(bytes.len() / 2).collect();
                inner.objects.insert(key.to_string(), torn);
            }
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("injected put failure for {key}"),
            ));
        }
        inner.objects.insert(key.to_string(), bytes.to_vec());
        inner.puts += 1;
        Ok(())
    }

    fn get(&self, key: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.locked().objects.get(key).cloned())
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        Ok(self
            .locked()
            .objects
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }

    fn delete(&self, key: &str) -> io::Result<()> {
        self.locked().objects.remove(key);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-objstore-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn local_dir_roundtrip() {
        let store = LocalDirStore::open(tmpdir("roundtrip")).unwrap();
        assert_eq!(store.get("a").unwrap(), None);
        store.put("a", b"one").unwrap();
        store.put("a", b"two").unwrap();
        store.put("b", b"three").unwrap();
        assert_eq!(store.get("a").unwrap().unwrap(), b"two");
        assert_eq!(store.list("").unwrap(), vec!["a", "b"]);
        assert_eq!(store.list("a").unwrap(), vec!["a"]);
        store.delete("a").unwrap();
        store.delete("a").unwrap();
        assert_eq!(store.get("a").unwrap(), None);
    }

    #[test]
    fn mem_store_faults_then_recovers() {
        let store = MemStore::new();
        store.fail_after_puts(1, false);
        store.put("ok", b"x").unwrap();
        assert!(store.put("fails", b"y").is_err());
        assert_eq!(store.get("fails").unwrap(), None, "clean failure");
        store.clear_faults();
        store.put("fails", b"y").unwrap();
        assert_eq!(store.put_count(), 2);
    }

    #[test]
    fn mem_store_torn_fault_leaves_prefix() {
        let store = MemStore::new();
        store.fail_after_puts(0, true);
        assert!(store.put("torn", b"0123456789").is_err());
        assert_eq!(store.object("torn").unwrap(), b"01234");
        store.clear_faults();
        store.put("torn", b"0123456789").unwrap();
        assert_eq!(store.object("torn").unwrap(), b"0123456789");
    }
}
