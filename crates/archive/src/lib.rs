//! Segment archival & restore tier for bottomless log servers (§5.3).
//!
//! The paper's space-management story assumes old log data "moves offline"
//! before its segments are reused; this crate makes that concrete. A
//! per-server [`Archiver`] watches the storage engine for sealed segments
//! (full segment files that will never be written again), uploads them to
//! an [`ObjectStore`] together with a CRC-checked [`Manifest`] describing
//! the archived prefix — the exact byte range, the per-client interval
//! table a crash at that point would recover, and any staged `CopyLog`
//! state — and reports the archived watermark back to the store so
//! retention never drops the only durable copy of a record.
//!
//! The restore path ([`restore()`]) rebuilds a wiped server directory from
//! the manifest alone: it rewrites the segment files byte-for-byte,
//! fabricates the `intervals.ckpt` checkpoint, and lets the store's normal
//! crash recovery do the rest. [`ArchiveReader`] serves individual record
//! reads and interval lists straight from the object store, so a server
//! that has pruned its local head can still answer `ReadLog` for archived
//! LSNs.
//!
//! Crash safety hinges on write ordering: segment objects first, the
//! manifest last. Manifests are immutable, generation-numbered, and fully
//! deterministic from the store state they describe, so an upload that
//! crashes half-way is simply re-run — it converges to a byte-identical
//! manifest with no duplicate or torn entries. See `docs/ARCHIVE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archiver;
pub mod manifest;
pub mod object_store;
pub mod restore;

pub use archiver::{ArchiveStats, Archiver, RetryPolicy};
pub use manifest::{load_latest, Manifest, SegmentEntry};
pub use object_store::{LocalDirStore, MemStore, ObjectStore};
pub use restore::{merge_interval_lists, restore, restore_from, ArchiveReader};
