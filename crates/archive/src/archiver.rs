//! The per-server archiver: watches a [`LogStore`] for sealed segments
//! and publishes consistent prefixes of the stream to an object store.
//!
//! Each publish round is deterministic from the store state it observes:
//! segment objects are uploaded first (skipping immutable full segments
//! already listed by the previous manifest), then a new generation-
//! numbered manifest is written last. A crash anywhere in the round
//! leaves either the old manifest (the re-run re-uploads and converges
//! to byte-identical objects) or the new one (the re-run is a no-op), so
//! uploads are idempotent end to end.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use dlog_storage::crc::crc32;
use dlog_storage::{LogStore, ReplayState};
use dlog_types::{DlogError, Result};

use crate::manifest::{load_latest, Manifest, SegmentEntry};
use crate::object_store::ObjectStore;

/// Bounded-retry policy for object puts: `attempts` tries per object with
/// exponential backoff starting at `base_delay`.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total put attempts per object (≥ 1).
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
        }
    }
}

/// Archiver gauges, surfaced through the server `Status` RPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Total bytes referenced by the newest manifest.
    pub archived_bytes: u64,
    /// Highest installed LSN covered by the newest manifest.
    pub last_manifest_lsn: u64,
    /// Failed put attempts (each triggers a retry or an error).
    pub upload_retries: u64,
    /// Segment objects uploaded over this archiver's lifetime.
    pub segments_uploaded: u64,
    /// Manifests published over this archiver's lifetime.
    pub manifests_written: u64,
}

/// Publishes consistent prefixes of one server's log stream to an object
/// store. See the crate docs for the protocol.
pub struct Archiver {
    objects: Arc<dyn ObjectStore>,
    policy: RetryPolicy,
    /// Replay of every frame wholly below `cut`.
    state: ReplayState,
    /// Frame-aligned high-water mark of `state`.
    cut: u64,
    /// `cut` initialised from the store's frame anchor (first publish).
    primed: bool,
    manifest: Option<Manifest>,
    stats: ArchiveStats,
}

impl Archiver {
    /// Create an archiver over `objects`, resuming from the newest valid
    /// manifest if one exists.
    ///
    /// # Errors
    /// Propagates backend I/O failures and manifest corruption.
    pub fn new(objects: Arc<dyn ObjectStore>) -> Result<Archiver> {
        let manifest = load_latest(&*objects)?;
        let (state, cut, primed) = match &manifest {
            Some(m) => (m.replay_state()?, m.cut, true),
            None => (ReplayState::new(), 0, false),
        };
        let mut stats = ArchiveStats::default();
        if let Some(m) = &manifest {
            stats.archived_bytes = m.archived_bytes();
            stats.last_manifest_lsn = m.last_lsn()?.0;
        }
        Ok(Archiver {
            objects,
            policy: RetryPolicy::default(),
            state,
            cut,
            primed,
            manifest,
            stats,
        })
    }

    /// Replace the retry policy (builder-style).
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Archiver {
        self.policy = policy;
        self
    }

    /// The newest manifest this archiver has observed or published.
    #[must_use]
    pub fn manifest(&self) -> Option<&Manifest> {
        self.manifest.as_ref()
    }

    /// Frame-aligned position up to which the archive is caught up.
    #[must_use]
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Current gauges.
    #[must_use]
    pub fn stats(&self) -> ArchiveStats {
        self.stats
    }

    /// Durable bytes not yet covered by a manifest.
    #[must_use]
    pub fn pending_bytes(&self, store: &LogStore) -> u64 {
        let covered = self.manifest.as_ref().map_or(0, |m| m.restore_end);
        store.append_position().saturating_sub(covered)
    }

    /// One background round: if the store has sealed segments beyond the
    /// newest manifest, publish a manifest covering them. Returns the new
    /// manifest, or `None` when the archive is already caught up. Partial
    /// tail segments are left alone (see [`Archiver::archive_now`]).
    ///
    /// # Errors
    /// Propagates I/O failures; the round may be retried verbatim.
    pub fn tick(&mut self, store: &mut LogStore) -> Result<Option<Manifest>> {
        let Some(&last) = store.sealed_segments().last() else {
            return Ok(None);
        };
        let upto = (last + 1) * store.segment_bytes();
        if self
            .manifest
            .as_ref()
            .is_some_and(|m| m.restore_end >= upto)
        {
            // Caught up; still refresh the store's watermark (a restarted
            // server re-learns it from the loaded manifest).
            if let Some(m) = &self.manifest {
                store.note_archived(m.restore_end.min(store.stream_end()));
            }
            return Ok(None);
        }
        self.publish(store, upto).map(Some)
    }

    /// Push mode (`dlog archive push`): flush the store and archive
    /// everything on disk, including a partial tail segment, so the
    /// archive captures every durable record right now.
    ///
    /// # Errors
    /// Propagates I/O failures; the round may be retried verbatim.
    pub fn archive_now(&mut self, store: &mut LogStore) -> Result<Manifest> {
        store.sync()?;
        let upto = store.stream_end();
        if let Some(m) = &self.manifest {
            if m.restore_end == upto {
                store.note_archived(upto);
                return Ok(m.clone());
            }
        }
        self.publish(store, upto)
    }

    /// Publish a manifest covering stream bytes `[archive start, upto)`.
    fn publish(&mut self, store: &mut LogStore, upto: u64) -> Result<Manifest> {
        if !self.primed {
            // First contact with this store: positions below its frame
            // anchor are unreachable by a frame scan, so archival of this
            // stream starts there.
            self.cut = store.frame_anchor();
            self.primed = true;
        }

        // 1. Advance the replay state over every frame wholly below
        //    `upto`; the last such frame's end is the new cut. Frames
        //    spilling past `upto` stay un-applied — after a restore they
        //    are the torn tail recovery truncates. Work on a scratch copy
        //    so a failed upload leaves the archiver re-runnable verbatim.
        let mut batch: Vec<(u64, u64, _)> = Vec::new();
        store.scan_stream(self.cut, |pos, frame| {
            let end = pos + frame.encoded_len() as u64;
            if end <= upto {
                batch.push((pos, end, frame));
            }
        })?;
        let mut state = self.state.clone();
        let mut new_cut = self.cut;
        for (pos, end, frame) in batch {
            state
                .apply(pos, frame)
                .map_err(|e| DlogError::Corrupt(format!("archive replay at {pos}: {e}")))?;
            new_cut = end;
        }

        // 2. Upload segment objects. Full segments already listed by the
        //    previous manifest are immutable and skipped; entries below
        //    the live stream start are carried over verbatim (the live
        //    store pruned them after archival — the archive keeps them).
        let sb = store.segment_bytes();
        let prev: HashMap<u64, SegmentEntry> = self
            .manifest
            .as_ref()
            .map(|m| m.segments.iter().map(|e| (e.index, *e)).collect())
            .unwrap_or_default();
        let first_live = store.stream_start() / sb;
        let mut segments: Vec<SegmentEntry> = prev
            .values()
            .filter(|e| e.index < first_live)
            .copied()
            .collect();
        let last_full = upto / sb;
        for index in first_live..last_full {
            if let Some(e) = prev.get(&index) {
                if e.len == sb {
                    segments.push(*e);
                    continue;
                }
            }
            let bytes = store.read_stream(index * sb, sb as usize)?;
            let entry = SegmentEntry {
                index,
                len: sb,
                crc: crc32(&bytes),
            };
            self.put_with_retry(Manifest::segment_key(index).as_str(), &bytes)?;
            self.stats.segments_uploaded += 1;
            segments.push(entry);
        }
        let tail_len = upto % sb;
        if tail_len != 0 {
            let bytes = store.read_stream(last_full * sb, tail_len as usize)?;
            let entry = SegmentEntry {
                index: last_full,
                len: tail_len,
                crc: crc32(&bytes),
            };
            if prev.get(&last_full) != Some(&entry) {
                self.put_with_retry(Manifest::segment_key(last_full).as_str(), &bytes)?;
                self.stats.segments_uploaded += 1;
            }
            segments.push(entry);
        }
        segments.sort_unstable_by_key(|e| e.index);

        // 3. The manifest is written last: its existence certifies every
        //    object it references.
        let generation = self
            .manifest
            .as_ref()
            .map_or(1, |m| m.generation.saturating_add(1));
        let manifest = Manifest {
            generation,
            segment_bytes: sb,
            restore_end: upto,
            cut: new_cut,
            segments,
            state: state.encode(),
        };
        self.put_with_retry(&Manifest::key(generation), &manifest.encode())?;

        self.state = state;
        self.cut = new_cut;
        self.stats.archived_bytes = manifest.archived_bytes();
        self.stats.last_manifest_lsn = manifest.last_lsn()?.0;
        self.stats.manifests_written += 1;
        store.note_archived(upto);
        self.manifest = Some(manifest.clone());
        Ok(manifest)
    }

    fn put_with_retry(&mut self, key: &str, bytes: &[u8]) -> Result<()> {
        let attempts = self.policy.attempts.max(1);
        let mut delay = self.policy.base_delay;
        let mut last_err = None;
        for attempt in 0..attempts {
            match self.objects.put(key, bytes) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.stats.upload_retries += 1;
                    last_err = Some(e);
                    if attempt + 1 < attempts && !delay.is_zero() {
                        std::thread::sleep(delay);
                        delay = delay.saturating_mul(2);
                    }
                }
            }
        }
        Err(DlogError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::other("upload failed with zero attempts")
        })))
    }
}
