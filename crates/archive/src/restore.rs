//! Restore: rebuild a wiped server directory from the archive, and serve
//! archived records directly from the object store.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

use dlog_storage::crc::crc32;
use dlog_storage::frame::Frame;
use dlog_storage::intervals::IntervalTable;
use dlog_storage::store::encode_checkpoint_image_into;
use dlog_storage::stream::segment_file_name;
use dlog_types::{ClientId, DlogError, Interval, IntervalList, LogRecord, Lsn, Result};

use crate::manifest::{load_latest, Manifest};
use crate::object_store::ObjectStore;

/// Rebuild `dir` from the newest valid manifest in `objects`: segment
/// files are rewritten byte-for-byte (verified against the manifest
/// CRCs) and the `intervals.ckpt` checkpoint is fabricated from the
/// manifest's replay state, so a normal `LogStore::open` recovers the
/// archived prefix — including truncating the partial frame, if any,
/// between the manifest's cut and its restore end.
///
/// # Errors
/// Fails when no manifest exists, when `dir` already holds a stream, or
/// on any corruption or I/O failure.
pub fn restore(objects: &dyn ObjectStore, dir: impl AsRef<Path>) -> Result<Manifest> {
    let manifest = load_latest(objects)?
        .ok_or_else(|| DlogError::Protocol("archive holds no valid manifest".into()))?;
    restore_from(objects, &manifest, dir)?;
    Ok(manifest)
}

/// [`restore`] from a specific manifest.
///
/// # Errors
/// See [`restore`].
pub fn restore_from(
    objects: &dyn ObjectStore,
    manifest: &Manifest,
    dir: impl AsRef<Path>,
) -> Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".seg") || name == "intervals.ckpt" {
            return Err(DlogError::Protocol(format!(
                "refusing to restore into {}: it already holds a stream ({name})",
                dir.display()
            )));
        }
    }
    for e in &manifest.segments {
        let key = Manifest::segment_key(e.index);
        let bytes = objects
            .get(key.as_str())?
            .ok_or_else(|| DlogError::Corrupt(format!("archive object {key} missing")))?;
        // A later round may have re-uploaded this segment with more
        // appended bytes; the stream is append-only, so this manifest's
        // view is the object's prefix.
        let view = bytes.get(..e.len as usize).ok_or_else(|| {
            DlogError::Corrupt(format!("archive object {key} shorter than manifest entry"))
        })?;
        if crc32(view) != e.crc {
            return Err(DlogError::Corrupt(format!(
                "archive object {key} does not match its manifest entry"
            )));
        }
        write_file(dir, segment_file_name(e.index).as_str(), view)?;
    }
    let state = manifest.replay_state()?;
    let mut image = Vec::new();
    encode_checkpoint_image_into(state.table(), manifest.cut, &mut image);
    write_file(dir, "intervals.ckpt", &image)?;
    // Restored files must survive a crash before we report success;
    // a failed directory sync would leave the restore only probably
    // durable (§4.2 ack-after-force).
    if let Ok(d) = File::open(dir) {
        d.sync_data()?;
    }
    Ok(())
}

fn write_file(dir: &Path, name: &str, bytes: &[u8]) -> Result<()> {
    let mut f = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(dir.join(name))?;
    f.write_all(bytes)?;
    f.sync_data()?;
    Ok(())
}

/// Serves `ReadLog` and `IntervalList` for archived records straight from
/// the object store, with no local copy of the stream. A server whose
/// retention has pruned its local head attaches one of these and falls
/// back to it for positions it no longer stores.
pub struct ArchiveReader {
    objects: Arc<dyn ObjectStore>,
    manifest: Manifest,
    table: IntervalTable,
    /// Tiny segment cache: archived reads cluster in the same segment.
    cache: HashMap<u64, Vec<u8>>,
}

impl ArchiveReader {
    /// Open a reader over the newest valid manifest; `None` when the
    /// archive is empty.
    ///
    /// # Errors
    /// Propagates backend I/O failures and manifest corruption.
    pub fn open(objects: Arc<dyn ObjectStore>) -> Result<Option<ArchiveReader>> {
        match load_latest(&*objects)? {
            Some(m) => Ok(Some(ArchiveReader::from_manifest(objects, m)?)),
            None => Ok(None),
        }
    }

    /// Open a reader over a specific manifest.
    ///
    /// # Errors
    /// Fails when the manifest's replay state is corrupt.
    pub fn from_manifest(
        objects: Arc<dyn ObjectStore>,
        manifest: Manifest,
    ) -> Result<ArchiveReader> {
        let table = manifest.replay_state()?.table().clone();
        Ok(ArchiveReader {
            objects,
            manifest,
            table,
            cache: HashMap::new(),
        })
    }

    /// The manifest this reader serves.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Archived installed intervals for `client`.
    #[must_use]
    pub fn interval_list(&self, client: ClientId) -> IntervalList {
        self.table.interval_list(client)
    }

    /// All clients with archived records.
    #[must_use]
    pub fn clients(&self) -> Vec<ClientId> {
        let mut v: Vec<_> = self.table.clients().collect();
        v.sort_unstable();
        v
    }

    /// Read the archived record with the highest epoch at `lsn` for
    /// `client`; `Ok(None)` when the archive does not hold it.
    ///
    /// # Errors
    /// Propagates backend I/O failures and frame corruption.
    pub fn read(&mut self, client: ClientId, lsn: Lsn) -> Result<Option<LogRecord>> {
        let Some((_, pos)) = self.table.lookup(client, lsn) else {
            return Ok(None);
        };
        let envelope = self.read_bytes(pos, 8)?;
        let body_len = envelope
            .get(0..4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes)
            .ok_or_else(|| DlogError::Corrupt("archived envelope truncated".into()))?
            as usize;
        let bytes = self.read_bytes(pos, 8 + body_len)?;
        match Frame::decode(&bytes)? {
            Some((
                Frame::Record {
                    client: c, record, ..
                },
                _,
            )) if c == client && record.lsn == lsn => Ok(Some(record)),
            _ => Err(DlogError::Corrupt(
                "archive index points at a foreign frame".into(),
            )),
        }
    }

    /// Read raw archived stream bytes, spanning segment objects.
    fn read_bytes(&mut self, pos: u64, len: usize) -> Result<Vec<u8>> {
        let sb = self.manifest.segment_bytes;
        let mut out = Vec::with_capacity(len);
        let mut cursor = pos;
        while out.len() < len {
            let seg = cursor / sb;
            let off = (cursor % sb) as usize;
            let take = (sb as usize - off).min(len - out.len());
            let bytes = self.segment(seg)?;
            let Some(chunk) = bytes.get(off..off + take) else {
                return Err(DlogError::Corrupt(
                    "archived read runs past its segment".into(),
                ));
            };
            out.extend_from_slice(chunk);
            cursor += take as u64;
        }
        Ok(out)
    }

    fn segment(&mut self, seg: u64) -> Result<&Vec<u8>> {
        if !self.cache.contains_key(&seg) {
            let key = Manifest::segment_key(seg);
            let bytes = self
                .objects
                .get(key.as_str())?
                .ok_or_else(|| DlogError::Corrupt("archive segment object missing".into()))?;
            if self.cache.len() >= 4 {
                self.cache.clear();
            }
            self.cache.insert(seg, bytes);
        }
        self.cache
            .get(&seg)
            .ok_or_else(|| DlogError::Corrupt("archive segment evicted mid-read".into()))
    }
}

/// Merge a server's live interval list with the archived prefix list for
/// the same client. The two lists describe overlapping views of one
/// history (the archive holds the head the live store may have pruned;
/// the live store holds the tail the archive has not caught up to), so
/// merging is coalescing: sort by (epoch, lo) and fuse overlapping or
/// adjacent same-epoch runs.
#[must_use]
pub fn merge_interval_lists(archived: &IntervalList, live: &IntervalList) -> IntervalList {
    let mut all: Vec<Interval> = archived
        .intervals()
        .iter()
        .chain(live.intervals().iter())
        .copied()
        .collect();
    all.sort_unstable_by_key(|iv| (iv.epoch, iv.lo));
    let mut out = IntervalList::new();
    let mut run: Option<Interval> = None;
    for iv in all {
        match &mut run {
            Some(r) if r.epoch == iv.epoch && iv.lo.0 <= r.hi.0.saturating_add(1) => {
                r.hi = r.hi.max(iv.hi);
            }
            Some(r) => {
                out.push(*r).expect("sorted coalesced runs are well-formed");
                run = Some(iv);
            }
            None => run = Some(iv),
        }
    }
    if let Some(r) = run {
        out.push(r).expect("sorted coalesced runs are well-formed");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlog_types::Epoch;

    fn list(ivs: &[(u64, u64, u64)]) -> IntervalList {
        let v = ivs
            .iter()
            .map(|&(e, lo, hi)| Interval::new(Epoch(e), Lsn(lo), Lsn(hi)))
            .collect();
        IntervalList::from_intervals(v).unwrap()
    }

    #[test]
    fn merge_overlapping_prefix() {
        let archived = list(&[(1, 1, 40)]);
        let live = list(&[(1, 30, 55)]);
        let m = merge_interval_lists(&archived, &live);
        assert_eq!(m.intervals(), list(&[(1, 1, 55)]).intervals());
    }

    #[test]
    fn merge_disjoint_epochs() {
        let archived = list(&[(1, 1, 10), (2, 10, 12)]);
        let live = list(&[(2, 13, 20), (3, 18, 25)]);
        let m = merge_interval_lists(&archived, &live);
        assert_eq!(
            m.intervals(),
            list(&[(1, 1, 10), (2, 10, 20), (3, 18, 25)]).intervals()
        );
    }

    #[test]
    fn merge_with_empty_sides() {
        let only = list(&[(1, 5, 9)]);
        assert_eq!(
            merge_interval_lists(&only, &IntervalList::new()).intervals(),
            only.intervals()
        );
        assert_eq!(
            merge_interval_lists(&IntervalList::new(), &only).intervals(),
            only.intervals()
        );
        assert!(merge_interval_lists(&IntervalList::new(), &IntervalList::new()).is_empty());
    }
}
