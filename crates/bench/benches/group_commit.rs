//! **E8 (micro) — group commit / NVRAM**: per-force cost of the log
//! store under the two durability policies, and the frame/CRC encoding
//! cost per record.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dlog_storage::crc::crc32;
use dlog_storage::frame::Frame;
use dlog_storage::store::{Durability, LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

fn bench_store_force(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_force");
    g.sample_size(20);
    for (name, durability) in [
        ("nvram", Durability::Nvram),
        ("fsync_per_force", Durability::FsyncPerForce),
    ] {
        g.bench_function(name, |b| {
            let dir =
                std::env::temp_dir().join(format!("dlog-bench-gc-{name}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = StoreOptions {
                durability,
                fsync: true,
                checkpoint_every: 0,
                ..StoreOptions::default()
            };
            let mut store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
            let mut lsn = 1u64;
            b.iter(|| {
                for _ in 0..7 {
                    let rec = LogRecord::present(Lsn(lsn), Epoch(1), vec![5u8; 100]);
                    store.write(ClientId(1), &rec).unwrap();
                    lsn += 1;
                }
                store.force(ClientId(1)).unwrap();
                black_box(lsn)
            });
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    g.finish();
}

fn bench_frame(c: &mut Criterion) {
    let frame = Frame::Record {
        client: ClientId(1),
        record: LogRecord::present(Lsn(1), Epoch(1), vec![7u8; 700]),
        staged: false,
    };
    let mut buf = Vec::new();
    frame.encode_into(&mut buf);
    c.bench_function("frame_encode_700b", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(800);
            black_box(frame.encode_into(&mut out))
        });
    });
    c.bench_function("frame_decode_700b", |b| {
        b.iter(|| black_box(Frame::decode(&buf).unwrap()));
    });
    let data = vec![0xA5u8; 16 * 1024];
    c.bench_function("crc32_16k", |b| b.iter(|| black_box(crc32(&data))));
}

criterion_group!(benches, bench_store_force, bench_frame);
criterion_main!(benches);
