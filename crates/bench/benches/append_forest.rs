//! **E7 — §4.3 append forest**: constant-time append and logarithmic
//! search, against a `BTreeMap` baseline and a naive scan, in memory and
//! on disk.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use append_forest::{AppendForest, LsnIndex};
use dlog_types::Lsn;
use std::collections::BTreeMap;

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("append");
    for n in [1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("append_forest", n), &n, |b, &n| {
            b.iter(|| {
                let mut f = AppendForest::with_capacity(n as usize);
                for k in 1..=n {
                    f.append(k, k).unwrap();
                }
                black_box(f.len())
            });
        });
        g.bench_with_input(BenchmarkId::new("btreemap", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = BTreeMap::new();
                for k in 1..=n {
                    m.insert(k, k);
                }
                black_box(m.len())
            });
        });
    }
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search");
    for n in [1_000u64, 100_000, 1_000_000] {
        let mut forest = AppendForest::with_capacity(n as usize);
        let mut map = BTreeMap::new();
        for k in 1..=n {
            forest.append(k, k).unwrap();
            map.insert(k, k);
        }
        let probes: Vec<u64> = (0..512).map(|i| (i * 2_654_435_761u64) % n + 1).collect();
        g.bench_with_input(BenchmarkId::new("append_forest", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in &probes {
                    acc += *forest.get(p).unwrap();
                }
                black_box(acc)
            });
        });
        g.bench_with_input(BenchmarkId::new("btreemap", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for p in &probes {
                    acc += *map.get(p).unwrap();
                }
                black_box(acc)
            });
        });
        // The O(n) strawman the paper's design avoids: scanning interval
        // runs linearly. Only at the small size (it is hopeless above).
        if n <= 1_000 {
            let runs: Vec<(u64, u64)> = (1..=n).map(|k| (k, k)).collect();
            g.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for p in &probes {
                        acc += runs.iter().find(|(k, _)| k == p).unwrap().1;
                    }
                    black_box(acc)
                });
            });
        }
    }
    g.finish();
}

fn bench_lsn_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsn_index");
    let n = 1_000_000u64;
    let mut idx = LsnIndex::new(1024);
    for i in 1..=n {
        idx.append(Lsn(i), i * 100).unwrap();
    }
    g.bench_function("lookup_1m", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..512u64 {
                let lsn = Lsn((i * 7_919) % n + 1);
                acc += idx.lookup(lsn).unwrap();
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_append, bench_search, bench_lsn_index);
criterion_main!(benches);
