//! End-to-end replicated-log force latency over the in-process cluster:
//! the E4 measurement in microbenchmark form (one ET1 transaction's
//! records per iteration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dlog_bench::{payload, Cluster, ClusterOptions};

fn bench_force(c: &mut Criterion) {
    let mut g = c.benchmark_group("replicated_force");
    g.sample_size(20);
    for n in [2usize, 3] {
        g.bench_function(format!("n{n}_m3_et1_txn"), |b| {
            let cluster = Cluster::start(&format!("bench-force-{n}"), ClusterOptions::new(3));
            let mut log = cluster.client(1, n, 16);
            log.initialize().unwrap();
            let mut i = 0u64;
            b.iter(|| {
                for _ in 0..7 {
                    i += 1;
                    log.write(payload(i, 100)).unwrap();
                }
                black_box(log.force().unwrap())
            });
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let cluster = Cluster::start("bench-read", ClusterOptions::new(3));
    let mut log = cluster.client(1, 2, 16);
    log.initialize().unwrap();
    for i in 1..=1000u64 {
        log.write(payload(i, 100)).unwrap();
    }
    log.force().unwrap();
    c.bench_function("replicated_read_cached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i % 1000 + 1;
            black_box(log.read(dlog_types::Lsn(i)).unwrap())
        });
    });
}

criterion_group!(benches, bench_force, bench_read);
criterion_main!(benches);
