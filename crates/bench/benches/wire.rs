//! Packet encode/decode cost: §4.1 budgets ~1000 instructions per packet
//! for "network and RPC implementation processing"; this measures our
//! share of that budget.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dlog_net::wire::{Message, Packet};
use dlog_types::{ClientId, Epoch, LogData, Lsn};

fn et1_force_packet() -> Packet {
    // Seven ET1 records grouped into one ForceLog: the common case.
    let records: Vec<(Lsn, LogData)> = (1..=7u64)
        .map(|i| (Lsn(i), LogData::from(vec![i as u8; 100])))
        .collect();
    Packet::bare(Message::ForceLog {
        client: ClientId(3),
        epoch: Epoch(2),
        records,
    })
}

fn bench_wire(c: &mut Criterion) {
    let pkt = et1_force_packet();
    let bytes = pkt.encode();
    c.bench_function("encode_et1_force", |b| {
        b.iter(|| black_box(pkt.encode()));
    });
    c.bench_function("decode_et1_force", |b| {
        b.iter(|| black_box(Packet::decode(&bytes).unwrap()));
    });
    let ack = Packet::bare(Message::NewHighLsn {
        client: ClientId(3),
        lsn: Lsn(7),
    });
    let ack_bytes = ack.encode();
    c.bench_function("encode_ack", |b| b.iter(|| black_box(ack.encode())));
    c.bench_function("decode_ack", |b| {
        b.iter(|| black_box(Packet::decode(&ack_bytes).unwrap()));
    });
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
