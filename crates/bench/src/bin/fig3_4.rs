//! **E1 / E2 — Figure 3-4**: availability of replicated logs with
//! per-server availability 0.95 (p = 0.05), for dual- and triple-copy
//! logs as the server count M grows. Closed forms from §3.2 side by side
//! with Monte-Carlo measurements over simulated failure/repair processes.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin fig3_4 --release`

use dlog_analysis::availability::{
    figure_3_4, init_availability, read_availability, write_availability,
};
use dlog_analysis::table::{fmt_prob, Table};
use dlog_sim::MonteCarloParams;

fn main() {
    let p = 0.05;
    println!("Figure 3-4: Availability of replicated logs (p = {p})\n");

    let mut table = Table::new(vec![
        "N",
        "M",
        "write (analytic)",
        "write (sim)",
        "init (analytic)",
        "init (sim)",
    ]);
    for row in figure_3_4(8, p) {
        let mut mc = MonteCarloParams::new(row.m as usize, row.n as usize);
        mc.p = p;
        mc.samples = 60_000;
        mc.horizon = 300_000.0;
        let est = mc.run();
        table.row(vec![
            row.n.to_string(),
            row.m.to_string(),
            fmt_prob(row.write),
            fmt_prob(est.write),
            fmt_prob(row.init),
            fmt_prob(est.init),
        ]);
    }
    println!("{}", table.render());

    println!("Prose claims of Section 3.2 (analytic):");
    println!(
        "  single server, all operations:            {}",
        fmt_prob(write_availability(1, 1, p))
    );
    println!(
        "  N=2, M=5 WriteLog:                        {}  (\"hardly ever unavailable\")",
        fmt_prob(write_availability(5, 2, p))
    );
    println!(
        "  N=2, M=5 client initialization:           {}  (\"about 0.98\")",
        fmt_prob(init_availability(5, 2, p))
    );
    println!(
        "  N=3, M=5 WriteLog / initialization:       {} / {}  (\"about 0.999\")",
        fmt_prob(write_availability(5, 3, p)),
        fmt_prob(init_availability(5, 3, p))
    );
    println!(
        "  N=2 ReadLog of a record:                  {}  (1 - p^2)",
        fmt_prob(read_availability(2, p))
    );
    println!(
        "  N=2 init at M=7 vs M=8 (0.95 threshold):  {} vs {}",
        fmt_prob(init_availability(7, 2, p)),
        fmt_prob(init_availability(8, 2, p))
    );
}
