//! `bench_check` — the bench-regression gate: compare a fresh
//! `obs_bench` report against the committed baseline and exit nonzero
//! on regression.
//!
//! ```text
//! cargo run --release -p dlog-bench --bin bench_check -- \
//!     --baseline BENCH_PR8.json --fresh fresh.json [--tolerance 0.30]
//! ```
//!
//! Exit codes: 0 = within tolerance, 1 = regression, 2 = usage or
//! unreadable/unparseable input.

use dlog_bench::check::{compare, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run() -> Result<Vec<String>, String> {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = get("--baseline")
        .ok_or("usage: bench_check --baseline <json> --fresh <json> [--tolerance 0.30]")?;
    let fresh_path = get("--fresh").ok_or("missing --fresh <json>")?;
    let tolerance: f64 = match get("--tolerance") {
        Some(t) => t
            .parse()
            .map_err(|_| format!("bad --tolerance '{t}' (want e.g. 0.30)"))?,
        None => 0.30,
    };
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 1)"));
    }
    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;
    eprintln!(
        "bench_check: {fresh_path} vs baseline {baseline_path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    Ok(compare(&baseline, &fresh, tolerance))
}

fn main() {
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!("bench_check: OK — no regressions");
        }
        Ok(failures) => {
            for f in &failures {
                println!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(2);
        }
    }
}
