//! **E14 — §3.2 response degradation**: "Response to WriteLog operations
//! may degrade, as fewer servers remain to carry the load, but such
//! failures will hardly ever render WriteLog operations unavailable."
//!
//! Analytic M/D/1 response times for the §4.1 target load as servers
//! fail, next to *measured* force latencies on the live in-process
//! cluster with the same fraction of servers down.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin degradation --release`

use std::time::Instant;

use dlog_analysis::queueing::DegradationModel;
use dlog_analysis::table::{fmt2, Table};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_types::ServerId;

fn main() {
    // Analytic: the paper's target load.
    let model = DegradationModel::paper_target();
    println!(
        "E14: WriteLog response vs failed servers (analytic M/D/1, {} clients x {}/s, N={}, M={})\n",
        model.clients, model.force_rate, model.n, model.m
    );
    let mut t = Table::new(vec![
        "servers down",
        "live",
        "per-server forces/s",
        "response (us)",
    ]);
    for down in 0..=model.m {
        let live = model.m - down;
        let row = match model.response_with_down(down) {
            Some(us) => fmt2(us),
            None if live >= model.n => "saturated".to_string(),
            None => "UNAVAILABLE (< N live)".to_string(),
        };
        let per_server = if live > 0 {
            model.clients as f64 * model.force_rate * model.n as f64 / live as f64
        } else {
            f64::INFINITY
        };
        t.row(vec![
            down.to_string(),
            live.to_string(),
            fmt2(per_server),
            row,
        ]);
    }
    println!("{}", t.render());

    // Measured: force latency on a live 6-server cluster as servers die.
    println!("Measured mean force latency (one client, 6-server in-process cluster):\n");
    let mut cluster = Cluster::start("e14", ClusterOptions::new(6));
    let mut log = cluster.client(1, 2, 16);
    log.initialize().unwrap();
    let mut t = Table::new(vec!["servers down", "mean force (us)"]);
    let mut lsn = 0u64;
    for down in 0..=3u64 {
        if down > 0 {
            cluster.kill_server(ServerId(down));
        }
        // Warm up (absorb any switch), then measure.
        for _ in 0..5 {
            lsn += 1;
            log.write(payload(lsn, 100)).unwrap();
        }
        log.force().unwrap();
        let rounds = 50;
        let start = Instant::now();
        for _ in 0..rounds {
            for _ in 0..7 {
                lsn += 1;
                log.write(payload(lsn, 100)).unwrap();
            }
            log.force().unwrap();
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / f64::from(rounds);
        t.row(vec![down.to_string(), fmt2(us)]);
    }
    println!("{}", t.render());
    println!(
        "Shape check (analytic): response rises as survivors absorb the displaced\n\
         load, yet the log stays writable until fewer than N servers remain — the\n\
         Sec 3.2 claim. The measured single-client run is far below saturation, so\n\
         its latencies reflect failover transients rather than queueing; the\n\
         queueing effect needs the full 50-client load of the analytic model."
    );
}
