//! **E9 — §5.2 log-record splitting and caching**: logged data volume and
//! abort locality, classic vs split, across transaction lengths, undo
//! cache sizes, and page-cleaning pressure.
//!
//! The paper's prediction: "If transactions are very short, then the
//! fraction of log records that may be split will be small ... Very long
//! running transactions will not complete before pages they modify are
//! cleaned, and splitting will also not save data volume." With a
//! realistic buffer manager (pages cleaned while transactions run),
//! savings shrink as transactions grow; cached undo makes aborts local.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin splitting --release`

use dlog_analysis::table::{fmt1, Table};
use dlog_types::Lsn;
use dlog_workload::et1::{Et1Config, Et1Generator};
use dlog_workload::recovery::{LogAccess, LogMode, MemLog};
use dlog_workload::{BankDb, RecoveryManager};

/// Run `txns` transactions of `steps` debit–credit steps each. When
/// `clean_every > 0`, the buffer manager cleans the page touched `lag`
/// steps ago every `clean_every` steps *inside* the transaction — the
/// realistic pressure that forces undo spills for long transactions.
fn run(
    mode: LogMode,
    txns: u64,
    steps: usize,
    cache_bytes: usize,
    clean_every: usize,
    abort_fraction: f64,
) -> (u64, dlog_core::split::SplitStats) {
    let db = BankDb::new(10_000, 100, 10);
    let mut mgr = RecoveryManager::new(MemLog::default(), db, mode, cache_bytes);
    let mut gen = Et1Generator::new(Et1Config::small(17));
    for i in 0..txns {
        let t = mgr.begin();
        let mut performed = Vec::with_capacity(steps);
        let mut dirty_since_clean: Vec<u64> = Vec::new();
        for j in 0..steps {
            let step = gen.next_txn();
            mgr.step(t, &step).unwrap();
            dirty_since_clean.push(BankDb::account_page(step.account));
            performed.push(step);
            if clean_every > 0 && (j + 1) % clean_every == 0 {
                // The buffer manager evicts the batch of pages dirtied
                // since the last clean (a steal policy under pressure).
                dirty_since_clean.sort_unstable();
                dirty_since_clean.dedup();
                for page in dirty_since_clean.drain(..) {
                    mgr.clean_page(page).unwrap();
                }
            }
        }
        if (i as f64 / txns as f64) < abort_fraction {
            mgr.abort_txn(t, &performed).unwrap();
        } else {
            mgr.commit_txn(t).unwrap();
        }
    }
    let log = mgr.log_mut();
    let end = LogAccess::end_of_log(log).unwrap();
    let bytes: u64 = (1..=end.0)
        .map(|l| LogAccess::read(log, Lsn(l)).unwrap().len() as u64)
        .sum();
    (bytes, mgr.split_stats())
}

fn main() {
    println!("E9: log volume, classic vs split, by transaction length");
    println!("(buffer manager cleans a dirty page every 16 steps, as a busy cache would)\n");
    let mut t = Table::new(vec![
        "steps/txn",
        "classic bytes",
        "split bytes",
        "saving %",
        "undo spilled (split)",
    ]);
    for steps in [1usize, 4, 16, 64, 256] {
        let txns = (1024 / steps).max(4) as u64;
        let clean = 16;
        let (classic, _) = run(LogMode::Classic, txns, steps, 1 << 30, clean, 0.0);
        let (split, stats) = run(LogMode::Split, txns, steps, 1 << 30, clean, 0.0);
        t.row(vec![
            steps.to_string(),
            classic.to_string(),
            split.to_string(),
            fmt1(100.0 * (classic as f64 - split as f64) / classic as f64),
            stats.undo_bytes_logged.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Short transactions commit before any cleaning touches their pages — full\n\
         saving; long transactions see their pages cleaned mid-flight and their undo\n\
         spills, eroding the saving, exactly as Sec 5.2 predicts.\n"
    );

    println!("E9b: cache pressure — a small undo cache forces spills\n");
    let mut t = Table::new(vec![
        "cache bytes",
        "undo saved",
        "undo spilled",
        "cache spills",
    ]);
    for cache in [256usize, 1024, 4096, 1 << 20] {
        let (_, stats) = run(LogMode::Split, 40, 40, cache, 0, 0.0);
        t.row(vec![
            cache.to_string(),
            stats.undo_bytes_saved.to_string(),
            stats.undo_bytes_logged.to_string(),
            stats.cache_spills.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("E9c: page-cleaning frequency vs spilled undo (40-step transactions)\n");
    let mut t = Table::new(vec![
        "clean every",
        "page-clean spills",
        "undo spilled bytes",
    ]);
    for clean_every in [0usize, 32, 8, 2] {
        let (_, stats) = run(LogMode::Split, 32, 40, 1 << 30, clean_every, 0.0);
        t.row(vec![
            if clean_every == 0 {
                "never".to_string()
            } else {
                clean_every.to_string()
            },
            stats.page_clean_spills.to_string(),
            stats.undo_bytes_logged.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("E9d: aborts resolve from the client cache (no server reads)\n");
    let (_, stats) = run(LogMode::Split, 100, 4, 1 << 30, 0, 0.3);
    println!(
        "  with 30% aborts and a roomy cache: {} local aborts, {} remote aborts",
        stats.local_aborts, stats.remote_aborts
    );
    let (_, stats) = run(LogMode::Split, 100, 4, 512, 0, 0.3);
    println!(
        "  with 30% aborts and a 512-byte cache: {} local aborts, {} remote aborts",
        stats.local_aborts, stats.remote_aborts
    );
}
