//! **E8 — NVRAM / group-commit ablation** (§4.1): force throughput of a
//! log server whose forces are satisfied by the low-latency non-volatile
//! buffer vs one that must flush and fsync the track on every force.
//!
//! "Performing 170 writes to non volatile storage per second could easily
//! be a problem ... log servers should have low latency, non volatile
//! buffers so that an entire track of log data may be written to disk at
//! once."
//!
//! Regenerate with: `cargo run -p dlog-bench --bin ablation_nvram --release`

use std::time::Instant;

use dlog_analysis::table::{fmt1, fmt2, Table};
use dlog_storage::store::{Durability, LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

fn run(durability: Durability, forces: u64, records_per_force: u64) -> (f64, u64, u64) {
    let dir = std::env::temp_dir().join(format!(
        "dlog-e8-{:?}-{}-{}",
        durability,
        std::process::id(),
        forces
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions {
        durability,
        fsync: true,
        track_bytes: 64 * 1024,
        checkpoint_every: 0,
        ..StoreOptions::default()
    };
    let mut store = LogStore::open(&dir, opts, NvramDevice::new(1 << 20)).unwrap();
    let c = ClientId(1);
    let mut lsn = 1u64;
    let start = Instant::now();
    for _ in 0..forces {
        for _ in 0..records_per_force {
            let rec = LogRecord::present(Lsn(lsn), Epoch(1), vec![7u8; 100]);
            store.write(c, &rec).unwrap();
            lsn += 1;
        }
        store.force(c).unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.stats();
    store.sync().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (elapsed, stats.fsyncs, stats.tracks_flushed)
}

fn main() {
    let forces: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let per_force = 7u64; // the ET1 grouping factor

    println!("E8: force throughput with and without the NVRAM buffer\n");
    let mut t = Table::new(vec![
        "durability",
        "forces/s",
        "us/force",
        "fsyncs",
        "track writes",
    ]);
    for d in [Durability::Nvram, Durability::FsyncPerForce] {
        let (elapsed, fsyncs, tracks) = run(d, forces, per_force);
        t.row(vec![
            format!("{d:?}"),
            fmt1(forces as f64 / elapsed),
            fmt2(elapsed * 1e6 / forces as f64),
            fsyncs.to_string(),
            tracks.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The paper's design point: with the buffer, a force is a memory copy and the\n\
         disk sees one large sequential track write per ~{} KB; without it, every\n\
         force pays a synchronous flush.",
        64
    );
}
