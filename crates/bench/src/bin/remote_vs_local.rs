//! **E4 — §5.6 measurement**: "remote logging to virtual memory on two
//! remote servers used less than twice the elapsed time required for
//! local logging to a single disk."
//!
//! We run the same ET1 log stream through
//!   (a) a single-file local log with one fsync per force,
//!   (b) the paper's baseline — a *duplexed* local log (two mirrored
//!       files, two fsyncs per force), and
//!   (c) the replicated log to two in-process log servers whose forces
//!       are satisfied by the battery-backed NVRAM buffer (the design
//!       point of §4.1: no synchronous disk write on the force path).
//!
//! The paper's claim is the (c)/(a) ratio; (c)/(b) shows replicated
//! logging beating the duplexed configuration it replaces.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin remote_vs_local --release`

use std::time::{Duration, Instant};

use dlog_analysis::table::{fmt2, Table};
use dlog_bench::{Cluster, ClusterOptions};
use dlog_storage::duplex::DuplexLog;
use dlog_types::LogData;
use dlog_workload::et1::profile;

/// Anything that can absorb an ET1 log stream.
trait Sink {
    fn write(&mut self, bytes: Vec<u8>);
    fn force(&mut self);
}

/// Drive `txns` ET1 transactions (6 data records + forced commit) into a
/// sink and return the elapsed time.
fn run_txns(txns: u64, sink: &mut dyn Sink) -> Duration {
    let start = Instant::now();
    for _ in 0..txns {
        for (i, payload) in profile::DATA_PAYLOADS.iter().enumerate() {
            sink.write(vec![i as u8; payload + profile::REDO_OVERHEAD]);
        }
        sink.write(vec![9u8; profile::COMMIT_BYTES]);
        sink.force();
    }
    start.elapsed()
}

/// (a) single local file, one fsync per force.
struct SingleFile {
    file: std::fs::File,
    buf: Vec<u8>,
}

impl Sink for SingleFile {
    fn write(&mut self, bytes: Vec<u8>) {
        self.buf.extend_from_slice(&bytes);
    }
    fn force(&mut self) {
        use std::io::Write;
        self.file.write_all(&self.buf).unwrap();
        self.file.sync_data().unwrap();
        self.buf.clear();
    }
}

/// (b) duplexed local log: two files, two fsyncs per force.
struct Duplex(DuplexLog);

impl Sink for Duplex {
    fn write(&mut self, bytes: Vec<u8>) {
        let _ = self.0.append(LogData::from(bytes));
    }
    fn force(&mut self) {
        self.0.force().unwrap();
    }
}

/// (c) the replicated log over the in-process cluster.
struct Remote(dlog_core::ReplicatedLog<dlog_net::MemEndpoint>);

impl Sink for Remote {
    fn write(&mut self, bytes: Vec<u8>) {
        let _ = self.0.write(bytes).unwrap();
    }
    fn force(&mut self) {
        self.0.force().unwrap();
    }
}

fn main() {
    let txns: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let dir = std::env::temp_dir().join(format!("dlog-e4-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("single")).unwrap();

    let single = {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("single/log"))
            .unwrap();
        let mut sink = SingleFile {
            file,
            buf: Vec::new(),
        };
        run_txns(txns, &mut sink)
    };

    let duplex = {
        let mut sink = Duplex(DuplexLog::open(dir.join("duplex")).unwrap());
        run_txns(txns, &mut sink)
    };

    let remote = {
        let mut opts = ClusterOptions::new(3);
        opts.fsync = true;
        opts.root = Some(dir.join("cluster"));
        let cluster = Cluster::start("e4", opts);
        let mut log = cluster.client(1, 2, 16);
        log.initialize().unwrap();
        let mut sink = Remote(log);
        run_txns(txns, &mut sink)
    };

    println!("E4: elapsed time for {txns} ET1 transactions' logging\n");
    let mut t = Table::new(vec!["configuration", "elapsed (ms)", "per txn (us)"]);
    for (name, d) in [
        ("local, single disk (1 fsync/force)", single),
        ("local, duplexed disks (2 fsyncs/force)", duplex),
        ("remote, replicated N=2 (NVRAM force)", remote),
    ] {
        t.row(vec![
            name.to_string(),
            fmt2(d.as_secs_f64() * 1e3),
            fmt2(d.as_secs_f64() * 1e6 / txns as f64),
        ]);
    }
    println!("{}", t.render());
    let ratio_single = remote.as_secs_f64() / single.as_secs_f64();
    let ratio_duplex = remote.as_secs_f64() / duplex.as_secs_f64();
    println!("remote / local-single ratio: {ratio_single:.2}  (paper: < 2.0)");
    println!("remote / local-duplex ratio: {ratio_duplex:.2}");
    if ratio_single < 2.0 {
        println!("=> reproduces the Section 5.6 claim: remote logging costs less than 2x local.");
    } else {
        println!("=> ratio above 2.0 on this machine; see EXPERIMENTS.md for discussion.");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
