//! **E11 — the δ bound** (§4.2): the client limits unacknowledged records
//! to δ so that "no more than δ log records are partially written"; the
//! restart procedure must then copy δ records and append δ not-present
//! masks. Larger δ buys write pipelining but makes every recovery rewrite
//! (and mask) more records.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin ablation_delta --release`

use std::time::Instant;

use dlog_analysis::table::{fmt1, fmt2, Table};
use dlog_bench::{payload, Cluster, ClusterOptions};

fn main() {
    let records: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    println!("E11: force throughput and recovery cost vs the in-flight bound delta\n");
    let mut t = Table::new(vec![
        "delta",
        "force elapsed (ms)",
        "records/s",
        "recovery copies",
        "masked LSNs",
        "recovery (ms)",
    ]);
    for delta in [1u64, 2, 4, 8, 16, 32] {
        let cluster = Cluster::start(&format!("e11-{delta}"), ClusterOptions::new(3));
        // Write and force a stream of records in groups of 20.
        let write_elapsed;
        {
            let mut log = cluster.client(1, 2, delta);
            log.initialize().unwrap();
            let start = Instant::now();
            for i in 1..=records {
                log.write(payload(i, 100)).unwrap();
                if i % 20 == 0 {
                    log.force().unwrap();
                }
            }
            log.force().unwrap();
            write_elapsed = start.elapsed();
            // Crash.
        }
        // Restart: measure the recovery rewrite.
        let mut log = cluster.client(1, 2, delta);
        let start = Instant::now();
        log.initialize().unwrap();
        let recovery_elapsed = start.elapsed();
        let stats = log.stats();
        let end = log.end_of_log().unwrap();
        t.row(vec![
            delta.to_string(),
            fmt2(write_elapsed.as_secs_f64() * 1e3),
            fmt1(records as f64 / write_elapsed.as_secs_f64()),
            stats.recovery_copies.to_string(),
            (end.0 - records).to_string(),
            fmt2(recovery_elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Recovery copies = 2*delta (the last delta records re-epoched plus delta\n\
         not-present masks); masked LSNs grow linearly with delta while larger\n\
         windows raise streaming throughput."
    );
}
