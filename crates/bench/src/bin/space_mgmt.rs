//! **E12 — §5.3 log space management**: storage and recovery-cost
//! comparison of dump/checkpoint/spool/compress policy combinations, for
//! a server ingesting the §4.1 volume (~10 GB/day).
//!
//! Regenerate with: `cargo run -p dlog-bench --bin space_mgmt --release`

use dlog_analysis::capacity::CapacityParams;
use dlog_analysis::space::SpacePolicy;
use dlog_analysis::table::{fmt2, Table};

fn main() {
    let gb_per_day = CapacityParams::paper_target()
        .report()
        .gb_per_server_per_day;
    println!(
        "E12: space management policies for a server ingesting {:.1} GB/day (Sec 4.1 load)\n",
        gb_per_day
    );

    let policies: Vec<(&str, SpacePolicy)> = vec![
        (
            "no dumps, keep all online (Sec 4.1 'simple')",
            SpacePolicy {
                dump_interval_hours: None,
                checkpoint_interval_hours: 1.0,
                spool_offline: false,
                compression_ratio: 1.0,
                retention_days: 7.0,
            },
        ),
        (
            "daily dumps, online retention",
            SpacePolicy::daily_dump_online(),
        ),
        (
            "daily dumps + spool offline",
            SpacePolicy {
                spool_offline: true,
                ..SpacePolicy::daily_dump_online()
            },
        ),
        (
            "daily dumps + spool + 3x compression",
            SpacePolicy {
                spool_offline: true,
                compression_ratio: 3.0,
                ..SpacePolicy::daily_dump_online()
            },
        ),
        (
            "6-hourly dumps + spool",
            SpacePolicy {
                dump_interval_hours: Some(6.0),
                spool_offline: true,
                ..SpacePolicy::daily_dump_online()
            },
        ),
        (
            "frequent checkpoints (15 min)",
            SpacePolicy {
                checkpoint_interval_hours: 0.25,
                spool_offline: true,
                ..SpacePolicy::daily_dump_online()
            },
        ),
    ];

    let mut t = Table::new(vec![
        "policy",
        "online GB",
        "offline GB",
        "node-recovery GB",
        "media-recovery GB",
    ]);
    for (name, p) in &policies {
        let r = p.report(gb_per_day);
        t.row(vec![
            (*name).to_string(),
            fmt2(r.online_gb),
            fmt2(r.offline_gb),
            fmt2(r.node_recovery_gb),
            fmt2(r.media_recovery_gb),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Per Sec 4.1, current technology can keep the whole volume online (\"simple\nlog space \
         management strategies could be used\"), but \"storage for this much\nlog data would \
         dominate log server hardware costs\" — the dump/spool rows\nquantify the alternatives \
         Sec 5.3 sketches."
    );
}
