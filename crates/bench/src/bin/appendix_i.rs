//! **E5 — Appendix I**: availability of replicated increasing
//! unique-identifier generators, analytically and by Monte-Carlo, plus a
//! live demonstration that `NewID` keeps issuing increasing identifiers
//! through the real protocol stack while a minority of representatives is
//! down.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin appendix_i --release`

use dlog_analysis::availability::generator_availability;
use dlog_analysis::table::{fmt_prob, Table};
use dlog_bench::{Cluster, ClusterOptions};
use dlog_core::epoch::{read_quorum, write_quorum, EpochGenerator};
use dlog_core::net::ClientNet;
use dlog_sim::MonteCarloParams;
use dlog_types::ServerId;

fn main() {
    let p = 0.05;
    println!("Appendix I: replicated identifier generator availability (p = {p})\n");
    let mut t = Table::new(vec![
        "R",
        "read quorum",
        "write quorum",
        "analytic",
        "simulated",
    ]);
    for r in [1usize, 2, 3, 4, 5, 6, 7] {
        let mut mc = MonteCarloParams::new(r, 1);
        mc.samples = 60_000;
        mc.horizon = 300_000.0;
        let est = mc.run();
        t.row(vec![
            r.to_string(),
            read_quorum(r).to_string(),
            write_quorum(r).to_string(),
            fmt_prob(generator_availability(r as u64, p)),
            fmt_prob(est.generator),
        ]);
    }
    println!("{}", t.render());

    // Live: 5 representatives, kill 2 (a tolerable minority), draw ids.
    let mut cluster = Cluster::start("appendix-i", ClusterOptions::new(5));
    let addrs: std::collections::HashMap<_, _> = cluster
        .servers
        .iter()
        .map(|&s| (s, dlog_bench::harness::server_addr(s)))
        .collect();
    let ep = cluster
        .net
        .endpoint(dlog_bench::harness::client_addr(dlog_types::ClientId(1)));
    let mut net = ClientNet::new(ep, addrs);
    let generator = EpochGenerator::new(1, cluster.servers.clone());

    let mut ids = Vec::new();
    for round in 0..6 {
        if round == 2 {
            cluster.kill_server(ServerId(4));
            cluster.kill_server(ServerId(5));
        }
        match generator.new_id(&mut net) {
            Ok(id) => ids.push(id),
            Err(e) => println!("NewID failed: {e}"),
        }
    }
    println!("live NewID sequence (servers 4,5 killed after the 2nd draw): {ids:?}");
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "identifiers must strictly increase"
    );
    println!("=> identifiers remained strictly increasing across the failures.");
}
