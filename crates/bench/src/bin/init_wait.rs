//! **E2b — §3.2 closing observation**: client initialization does not
//! need M − N + 1 servers up *simultaneously*; the client polls until
//! enough distinct servers have answered. This bin contrasts the
//! instantaneous availability with the polling success rate and waiting
//! times, under failure/repair processes realizing p = 0.05.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin init_wait --release`

use dlog_analysis::availability::init_availability;
use dlog_analysis::table::{fmt2, fmt_prob, Table};
use dlog_sim::initwait::InitWaitParams;

fn main() {
    println!("E2b: instantaneous vs polling client initialization (p = 0.05)\n");
    println!("(times in multiples of the mean server repair time x20; cycle = 100, MTTR = 5)\n");
    let mut t = Table::new(vec![
        "M",
        "N",
        "instant (analytic)",
        "instant (sim)",
        "eventual (sim)",
        "mean wait",
        "p99 wait",
    ]);
    for (m, n) in [(3usize, 2usize), (5, 2), (7, 2), (5, 3), (8, 3)] {
        let r = InitWaitParams::new(m, n).run();
        t.row(vec![
            m.to_string(),
            n.to_string(),
            fmt_prob(init_availability(m as u64, n as u64, 0.05)),
            fmt_prob(r.instant_availability),
            fmt_prob(r.eventual_success),
            fmt2(r.mean_wait),
            fmt2(r.p99_wait),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Polling turns the occasional init-quorum outage into a short wait (a fraction\n\
         of one repair time), instead of a failure — the paper's point that the\n\
         instantaneous model understates practical initialization availability."
    );
}
