//! **E13 — §5.5 common commit coordination**: commit-path messages and
//! synchronous forces for distributed transactions, comparing 2PC over
//! replicated logs, 2PC over local duplexed logs, and the shared-server
//! common-commit optimization the section sketches — quantifying why
//! "if multi node transactions are frequent then common commit
//! coordination is an argument against replicated logging".
//!
//! Regenerate with: `cargo run -p dlog-bench --bin commit_coordination`

use dlog_analysis::commit::CommitModel;
use dlog_analysis::table::Table;

fn main() {
    println!("E13: commit-path costs for P-participant distributed transactions (N = 2)\n");
    let mut t = Table::new(vec![
        "P",
        "2PC+replicated msgs",
        "2PC+replicated forces",
        "2PC+local msgs",
        "2PC+local forces",
        "common-commit msgs",
        "common-commit forces",
    ]);
    for p in [1u64, 2, 3, 4, 6, 8] {
        let m = CommitModel {
            participants: p,
            n: 2,
        };
        let r = m.two_phase_replicated();
        let l = m.two_phase_local();
        let c = m.common_commit();
        t.row(vec![
            p.to_string(),
            r.messages.to_string(),
            r.forces.to_string(),
            l.messages.to_string(),
            l.forces.to_string(),
            c.messages.to_string(),
            c.forces.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The shared mirrored-disk server turns P+1 forces into one group force and\n\
         collapses the vote round into the prepare-record writes. The paper's verdict\n\
         stands: for single-node transactions (P = 1, the ET1 case) replicated logging\n\
         loses little, but frequent multi-node transactions favour a common\n\
         coordinator — \"an argument against replicated logging\" (Sec 5.5). Note the\n\
         §4.1 mitigation also applies: with low-latency non-volatile buffers, each of\n\
         those forces is a memory-speed operation, shrinking the absolute gap."
    );
}
