//! **Archive tier bench**: archival throughput and wipe-and-restore time
//! as a function of segment size, against a local-directory object store.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin archive_bench --release [MB]`

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use dlog_analysis::table::{fmt2, Table};
use dlog_archive::{restore, Archiver, LocalDirStore};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-archive-bench")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

struct Sample {
    segment_kb: u64,
    data_bytes: u64,
    archive_s: f64,
    incr_s: f64,
    restore_s: f64,
}

fn run_case(segment_bytes: u64, payload_mb: u64) -> Sample {
    let record_len = 1024usize;
    let records = payload_mb * 1024 * 1024 / record_len as u64;
    let dir = tmpdir(&format!("store-{segment_bytes}"));
    let archive_dir = tmpdir(&format!("objects-{segment_bytes}"));
    let restore_dir = tmpdir(&format!("restore-{segment_bytes}"));

    let opts = StoreOptions {
        fsync: false,
        segment_bytes,
        checkpoint_every: 0,
        ..StoreOptions::default()
    };
    let mut store = LogStore::open(&dir, opts.clone(), NvramDevice::new(1 << 22)).unwrap();
    for i in 1..=records {
        store
            .write(
                ClientId(1),
                &LogRecord::present(Lsn(i), Epoch(1), vec![(i % 251) as u8; record_len]),
            )
            .unwrap();
    }
    store.sync().unwrap();
    let data_bytes = store.stream_end();

    let objects = Arc::new(LocalDirStore::open(&archive_dir).unwrap());
    let mut archiver = Archiver::new(objects.clone()).unwrap();

    // Cold round: every segment goes over the wire.
    let t = Instant::now();
    archiver.archive_now(&mut store).unwrap();
    let archive_s = t.elapsed().as_secs_f64();

    // Incremental round: 1/16 of the data is new; full archived segments
    // are skipped, so this measures the steady-state tick cost.
    for i in records + 1..=records + records / 16 {
        store
            .write(
                ClientId(1),
                &LogRecord::present(Lsn(i), Epoch(1), vec![(i % 251) as u8; record_len]),
            )
            .unwrap();
    }
    let t = Instant::now();
    archiver.archive_now(&mut store).unwrap();
    let incr_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    restore(&*objects, &restore_dir).unwrap();
    let mut restored = LogStore::open(&restore_dir, opts, NvramDevice::new(1 << 22)).unwrap();
    let restore_s = t.elapsed().as_secs_f64();
    assert!(restored.read(ClientId(1), Lsn(records)).unwrap().is_some());

    for d in [&dir, &archive_dir, &restore_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
    Sample {
        segment_kb: segment_bytes / 1024,
        data_bytes,
        archive_s,
        incr_s,
        restore_s,
    }
}

fn main() {
    let payload_mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("archive tier: {payload_mb} MB of 1 KiB records vs segment size\n");

    let mut t = Table::new(vec![
        "segment KiB",
        "archive MB/s",
        "incremental MB/s",
        "restore MB/s",
        "restore ms",
    ]);
    for segment_bytes in [64 * 1024u64, 256 * 1024, 1024 * 1024] {
        let s = run_case(segment_bytes, payload_mb);
        let mb = s.data_bytes as f64 / (1024.0 * 1024.0);
        t.row(vec![
            s.segment_kb.to_string(),
            fmt2(mb / s.archive_s),
            fmt2(mb / 16.0 / s.incr_s),
            fmt2(mb / s.restore_s),
            fmt2(s.restore_s * 1e3),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Larger segments amortize per-object overhead for the cold upload and the\n\
         restore; the incremental round only re-uploads the partial tail, so its\n\
         cost tracks new data, not archive size — the property that makes the\n\
         bottomless tier affordable to run continuously."
    );
}
