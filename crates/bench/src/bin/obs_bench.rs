//! `obs_bench` — the PR 3 observability trajectory: drive a real
//! cluster under a reliable and a flaky fault plan with tracing and
//! histograms enabled, then write write/force throughput and per-stage
//! latency percentiles to `BENCH_PR3.json` at the repository root.
//!
//! ```text
//! cargo run --release -p dlog-bench --bin obs_bench
//! ```

use std::time::Instant;

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_net::FaultPlan;
use dlog_obs::{HistogramSnapshot, Obs, ObsOptions, Stage};

const RECORDS: u64 = 4000;
const PAYLOAD: usize = 128;
const FORCE_EVERY: u64 = 8;
const SERVERS: u64 = 4;

struct ScenarioResult {
    label: &'static str,
    elapsed_ms: f64,
    writes_per_sec: f64,
    forces_per_sec: f64,
    client: Vec<(Stage, HistogramSnapshot)>,
    server: Vec<(Stage, HistogramSnapshot)>,
    trace_events: u64,
    trace_dropped: u64,
}

fn stage_rows(obs_list: &[Obs]) -> Vec<(Stage, HistogramSnapshot)> {
    let mut merged: Vec<(Stage, HistogramSnapshot)> = Vec::new();
    for obs in obs_list {
        let Some(snap) = obs.snapshot() else { continue };
        for s in &snap.stages {
            match merged.iter_mut().find(|(st, _)| *st == s.stage) {
                Some((_, h)) => *h = h.merge(&s.hist),
                None => merged.push((s.stage, s.hist)),
            }
        }
    }
    merged.retain(|(_, h)| h.count() > 0);
    merged
}

fn run_scenario(label: &'static str, plan: FaultPlan) -> ScenarioResult {
    let mut opts = ClusterOptions::new(SERVERS);
    opts.plan = plan;
    opts.obs = ObsOptions::on();
    let cluster = Cluster::start(&format!("obs-bench-{label}"), opts);
    let mut log = cluster.client(1, 2, 8);
    log.initialize().expect("initialize");

    let start = Instant::now();
    let mut forces = 0u64;
    for i in 1..=RECORDS {
        log.write(payload(i, PAYLOAD)).expect("write");
        if i % FORCE_EVERY == 0 {
            log.force().expect("force");
            forces += 1;
        }
    }
    log.force().expect("final force");
    forces += 1;
    let elapsed = start.elapsed();

    let server_handles: Vec<Obs> = cluster
        .servers
        .iter()
        .map(|&sid| cluster.server_obs(sid))
        .collect();
    let (mut trace_events, mut trace_dropped) = (0u64, 0u64);
    for obs in server_handles.iter().chain(std::iter::once(&cluster.client_obs())) {
        if let Some(snap) = obs.snapshot() {
            trace_events += snap.trace_events;
            trace_dropped += snap.trace_dropped;
        }
    }
    ScenarioResult {
        label,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        writes_per_sec: RECORDS as f64 / elapsed.as_secs_f64(),
        forces_per_sec: forces as f64 / elapsed.as_secs_f64(),
        client: stage_rows(&[cluster.client_obs()]),
        server: stage_rows(&server_handles),
        trace_events,
        trace_dropped,
    }
}

fn stages_json(rows: &[(Stage, HistogramSnapshot)], indent: &str) -> String {
    let mut out = String::new();
    for (k, (stage, h)) in rows.iter().enumerate() {
        let comma = if k + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "{indent}\"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}}{comma}\n",
            stage.name(),
            h.count(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max
        ));
    }
    out
}

fn scenario_json(r: &ScenarioResult, last: bool) -> String {
    let comma = if last { "" } else { "," };
    format!(
        "    \"{}\": {{\n      \"elapsed_ms\": {:.1},\n      \"writes_per_sec\": {:.0},\n      \
         \"forces_per_sec\": {:.0},\n      \"trace_events\": {},\n      \"trace_dropped\": {},\n      \
         \"client_stages\": {{\n{}      }},\n      \"server_stages\": {{\n{}      }}\n    }}{comma}\n",
        r.label,
        r.elapsed_ms,
        r.writes_per_sec,
        r.forces_per_sec,
        r.trace_events,
        r.trace_dropped,
        stages_json(&r.client, "        "),
        stages_json(&r.server, "        ")
    )
}

fn main() {
    let reliable = run_scenario("reliable", FaultPlan::reliable());
    let flaky = run_scenario("flaky", FaultPlan::flaky(42));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"obs_bench\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"servers\": {SERVERS}, \"n\": 2, \"delta\": 8, \"records\": {RECORDS}, \
         \"payload_bytes\": {PAYLOAD}, \"force_every\": {FORCE_EVERY}}},\n"
    ));
    out.push_str("  \"scenarios\": {\n");
    out.push_str(&scenario_json(&reliable, false));
    out.push_str(&scenario_json(&flaky, true));
    out.push_str("  }\n}\n");

    let path = format!("{}/../../BENCH_PR3.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::write(&path, &out).expect("write BENCH_PR3.json");
    println!("{out}");
    eprintln!("wrote {path}");
}
