//! `obs_bench` — the PR 5 group-commit trajectory plus the PR 8
//! allocation gauge: drive real clusters under reliable and flaky fault
//! plans with tracing and histograms enabled, with force coalescing on
//! and off (the ablation), plus a concurrent multi-client scenario that
//! shows physical forces being amortized across clients, and a sharded
//! variant of it that runs every server as four shard event loops with
//! each client's logical log pinned to one replica (n = 1) — the
//! partitioned-log deployment the shard router exists for. Every
//! scenario also reports `allocs_per_write` — the process-wide
//! counting-allocator delta over the timed section divided by records
//! written, the number the zero-copy wire path exists to hold down.
//! Results go to `BENCH_PR10.json` at the repository root (or to
//! `--out <path>`).
//!
//! ```text
//! cargo run --release -p dlog-bench --bin obs_bench [-- --out fresh.json]
//! ```

use std::time::{Duration, Instant};

use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_net::FaultPlan;
use dlog_obs::{HistogramSnapshot, Obs, ObsOptions, Stage};

const RECORDS: u64 = 12000;
const PAYLOAD: usize = 128;
const FORCE_EVERY: u64 = 8;
const SERVERS: u64 = 4;
const COALESCE_WINDOW: Duration = Duration::from_millis(2);

struct ScenarioResult {
    label: &'static str,
    coalesce_window_us: u64,
    clients: u64,
    shards: u64,
    replicas: usize,
    elapsed_ms: f64,
    writes_per_sec: f64,
    forces_per_sec: f64,
    client: Vec<(Stage, HistogramSnapshot)>,
    server: Vec<(Stage, HistogramSnapshot)>,
    trace_events: u64,
    trace_dropped: u64,
    coalesced_forces: u64,
    group_commits: u64,
    allocs_per_write: f64,
}

fn stage_rows(obs_list: &[Obs]) -> Vec<(Stage, HistogramSnapshot)> {
    let mut merged: Vec<(Stage, HistogramSnapshot)> = Vec::new();
    for obs in obs_list {
        let Some(snap) = obs.snapshot() else { continue };
        for s in &snap.stages {
            match merged.iter_mut().find(|(st, _)| *st == s.stage) {
                Some((_, h)) => *h = h.merge(&s.hist),
                None => merged.push((s.stage, s.hist)),
            }
        }
    }
    merged.retain(|(_, h)| h.count() > 0);
    merged
}

/// Drive `clients` concurrent clients, each writing `RECORDS / clients`
/// records and forcing every `FORCE_EVERY`, against a fresh cluster
/// running `shards` shard event loops per server, with each client
/// replicating to `replicas` servers.
fn run_scenario(
    label: &'static str,
    plan: FaultPlan,
    window: Duration,
    clients: u64,
    shards: u64,
    replicas: usize,
) -> ScenarioResult {
    let mut opts = ClusterOptions::new(SERVERS);
    opts.plan = plan;
    opts.obs = ObsOptions::on();
    opts.coalesce_window = window;
    // Pin the shard count: scenario results must not change shape under
    // the DLOG_TEST_SHARDS matrix the test suite runs under.
    opts.shards = shards;
    let mut cluster = Cluster::start(&format!("obs-bench-{label}"), opts);

    let per_client = RECORDS / clients;
    // Construct and initialize clients outside the timed section so the
    // measured phase is purely the write/force pipeline.
    let mut logs = Vec::new();
    for c in 1..=clients {
        let mut log = cluster.client(c, replicas, 8);
        log.initialize().expect("initialize");
        logs.push(log);
    }
    // Payload synthesis is workload generation, not pipeline cost:
    // materialize every record up front so the timed section (and the
    // alloc gauge) measures the write/force path, not `vec!` fills.
    let payloads: Vec<dlog_types::LogData> = (1..=per_client)
        .map(|i| dlog_types::LogData::new(payload(i, PAYLOAD)))
        .collect();
    let mut forces = 0u64;
    // Process-wide allocation delta over the timed section: counts every
    // thread (clients and the server runners they drive), so it is the
    // end-to-end cost of a write, not just the ingest slice.
    let allocs_before = dlog_obs::gauge::process_allocs();
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for mut log in logs {
            let payloads = &payloads;
            handles.push(scope.spawn(move || {
                let mut forces = 0u64;
                for (i, data) in (1..=per_client).zip(payloads) {
                    log.write(data.share()).expect("write");
                    if i % FORCE_EVERY == 0 {
                        log.force().expect("force");
                        forces += 1;
                    }
                }
                log.force().expect("final force");
                forces + 1
            }));
        }
        for h in handles {
            forces += h.join().expect("client thread");
        }
    });
    let elapsed = start.elapsed();
    let allocs = dlog_obs::gauge::process_allocs() - allocs_before;

    let server_handles: Vec<Obs> = cluster
        .servers
        .iter()
        .flat_map(|&sid| cluster.server_shard_obs(sid))
        .collect();
    let (mut trace_events, mut trace_dropped) = (0u64, 0u64);
    for obs in server_handles
        .iter()
        .chain(std::iter::once(&cluster.client_obs()))
    {
        if let Some(snap) = obs.snapshot() {
            trace_events += snap.trace_events;
            trace_dropped += snap.trace_dropped;
        }
    }
    let client_stages = stage_rows(&[cluster.client_obs()]);
    let server_stages = stage_rows(&server_handles);
    let (mut coalesced_forces, mut group_commits) = (0u64, 0u64);
    for (_, st, _) in cluster.stop_all() {
        coalesced_forces += st.coalesced_forces;
        group_commits += st.group_commits;
    }
    ScenarioResult {
        label,
        coalesce_window_us: window.as_micros() as u64,
        clients,
        shards,
        replicas,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        writes_per_sec: (per_client * clients) as f64 / elapsed.as_secs_f64(),
        forces_per_sec: forces as f64 / elapsed.as_secs_f64(),
        client: client_stages,
        server: server_stages,
        trace_events,
        trace_dropped,
        coalesced_forces,
        group_commits,
        allocs_per_write: allocs as f64 / (per_client * clients) as f64,
    }
}

fn stages_json(rows: &[(Stage, HistogramSnapshot)], indent: &str) -> String {
    let mut out = String::new();
    for (k, (stage, h)) in rows.iter().enumerate() {
        let comma = if k + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "{indent}\"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}}}{comma}\n",
            stage.name(),
            h.count(),
            h.percentile(0.50),
            h.percentile(0.95),
            h.percentile(0.99),
            h.max
        ));
    }
    out
}

fn scenario_json(r: &ScenarioResult, last: bool) -> String {
    let comma = if last { "" } else { "," };
    format!(
        "    \"{}\": {{\n      \"coalesce_window_us\": {},\n      \"clients\": {},\n      \
         \"shards\": {},\n      \"replicas\": {},\n      \
         \"elapsed_ms\": {:.1},\n      \"writes_per_sec\": {:.0},\n      \
         \"forces_per_sec\": {:.0},\n      \"allocs_per_write\": {:.3},\n      \
         \"coalesced_forces\": {},\n      \
         \"group_commits\": {},\n      \"trace_events\": {},\n      \"trace_dropped\": {},\n      \
         \"client_stages\": {{\n{}      }},\n      \"server_stages\": {{\n{}      }}\n    }}{comma}\n",
        r.label,
        r.coalesce_window_us,
        r.clients,
        r.shards,
        r.replicas,
        r.elapsed_ms,
        r.writes_per_sec,
        r.forces_per_sec,
        r.allocs_per_write,
        r.coalesced_forces,
        r.group_commits,
        r.trace_events,
        r.trace_dropped,
        stages_json(&r.client, "        "),
        stages_json(&r.server, "        ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_PR10.json", env!("CARGO_MANIFEST_DIR")));

    // Throwaway warm-up: pays the process's one-time costs (lazy CRC
    // tables, allocator arenas, page faults, scheduler ramp-up) so the
    // first recorded scenario measures the pipeline, not cold start —
    // and so the CI gate's baseline/fresh comparison isn't skewed by
    // which run happened to be colder.
    let _ = run_scenario("warmup", FaultPlan::reliable(), COALESCE_WINDOW, 4, 1, 2);

    let scenarios = [
        // Headline numbers: coalescing on.
        run_scenario("reliable", FaultPlan::reliable(), COALESCE_WINDOW, 1, 1, 2),
        run_scenario("flaky", FaultPlan::flaky(42), COALESCE_WINDOW, 1, 1, 2),
        // Ablation: identical load, window zero (the synchronous path).
        run_scenario(
            "reliable_nocoalesce",
            FaultPlan::reliable(),
            Duration::ZERO,
            1,
            1,
            2,
        ),
        run_scenario(
            "flaky_nocoalesce",
            FaultPlan::flaky(42),
            Duration::ZERO,
            1,
            1,
            2,
        ),
        // Amortization: four concurrent clients share physical forces.
        run_scenario(
            "group_4clients",
            FaultPlan::reliable(),
            COALESCE_WINDOW,
            4,
            1,
            2,
        ),
        // Partitioned logical logs: every server runs four shard event
        // loops, and each client's log is pinned to a single replica —
        // per-record work drops to one ingest and one fan-out slot, the
        // deployment shape §2's logical-log split argues for.
        run_scenario(
            "group_4clients_sharded",
            FaultPlan::reliable(),
            COALESCE_WINDOW,
            4,
            4,
            1,
        ),
    ];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"obs_bench\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"servers\": {SERVERS}, \"n\": 2, \"delta\": 8, \"records\": {RECORDS}, \
         \"payload_bytes\": {PAYLOAD}, \"force_every\": {FORCE_EVERY}, \
         \"coalesce_window_us\": {}}},\n",
        COALESCE_WINDOW.as_micros()
    ));
    out.push_str("  \"scenarios\": {\n");
    for (i, r) in scenarios.iter().enumerate() {
        out.push_str(&scenario_json(r, i + 1 == scenarios.len()));
    }
    out.push_str("  }\n}\n");

    std::fs::write(&out_path, &out).expect("write bench json");
    println!("{out}");
    eprintln!("wrote {out_path}");
}
