//! **E10 — §5.4 load assignment**: switch rates, interval-list lengths,
//! load imbalance, and shed fractions for candidate assignment strategies
//! and client patience settings, under overload and server failures.
//!
//! Reproduces the section's qualitative warnings: a hot-spot strategy
//! saturates servers; hair-trigger switching ("a short timeout") produces
//! "very long interval lists".
//!
//! Regenerate with: `cargo run -p dlog-bench --bin load_assignment --release`

use dlog_analysis::table::{fmt2, Table};
use dlog_core::assign::AssignStrategy;
use dlog_sim::assign::{run, AssignSimParams};

fn main() {
    println!("E10: load-assignment strategies (50 clients x N=2 over 6 servers, capacity 20)\n");
    let params = AssignSimParams::paper_cluster();
    let mut t = Table::new(vec![
        "strategy",
        "switches",
        "mean interval list",
        "max interval list",
        "imbalance",
        "shed frac",
    ]);
    for (name, strategy) in [
        ("fixed (hot spot)", AssignStrategy::Fixed),
        ("striped", AssignStrategy::Striped),
        ("random", AssignStrategy::Random { seed: 5 }),
    ] {
        let r = run(&params, &strategy);
        t.row(vec![
            name.to_string(),
            r.switches.to_string(),
            fmt2(r.mean_interval_list_len),
            r.max_interval_list_len.to_string(),
            fmt2(r.imbalance),
            fmt2(r.shed_fraction),
        ]);
    }
    println!("{}", t.render());

    println!("E10b: client patience (striped strategy, capacity 15 — sustained pressure)\n");
    let mut t = Table::new(vec![
        "patience (ticks)",
        "switches",
        "mean interval list",
        "max interval list",
    ]);
    for patience in [1u32, 2, 4, 8, 16] {
        let mut p = AssignSimParams::paper_cluster();
        p.capacity = 15;
        p.patience = patience;
        let r = run(&p, &AssignStrategy::Striped);
        t.row(vec![
            patience.to_string(),
            r.switches.to_string(),
            fmt2(r.mean_interval_list_len),
            r.max_interval_list_len.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Short patience = the paper's \"short timeout\" failure mode: clients churn and\n\
         interval lists grow; a few ticks of patience stabilize the assignment."
    );
}
