//! **E6 — Figures 3-1, 3-2, 3-3**: drive the real client/server stack
//! through the paper's worked example — normal writes, a server switch, a
//! client crash with a partially written record, and the restart
//! procedure — printing each server's interval table at every stage.
//!
//! The figures' concrete epoch numbers (1, 3, 4) depend on the paper's
//! generator history; here epochs come from the live Appendix I generator
//! and are printed symbolically (e1 < e2 < ...). The *shapes* — which
//! LSN ranges sit on which servers at which epoch — match the figures.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin figure_states`

use dlog_bench::harness::{client_addr, server_addr};
use dlog_bench::{payload, Cluster, ClusterOptions};
use dlog_core::assign::AssignStrategy;
use dlog_net::wire::{Message, Packet, Request, Response};
use dlog_net::Endpoint;
use dlog_types::{ClientId, ServerId};

/// Ask a server for a client's interval list directly.
fn interval_list(cluster: &Cluster, s: ServerId, c: ClientId) -> String {
    let ep = cluster.net.endpoint(client_addr(ClientId(900 + s.0)));
    ep.send(
        server_addr(s),
        &Packet::bare(Message::Request {
            id: 1,
            body: Request::IntervalList { client: c },
        }),
    )
    .unwrap();
    match ep.recv(std::time::Duration::from_secs(1)).unwrap() {
        Some((_, pkt)) => match pkt.msg {
            Message::Response {
                body: Response::Intervals { intervals },
                ..
            } => {
                if intervals.is_empty() {
                    "(empty)".to_string()
                } else {
                    intervals
                        .intervals()
                        .iter()
                        .map(|iv| format!("LSN {}..{} @epoch {}", iv.lo, iv.hi, iv.epoch))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            }
            other => format!("unexpected: {other:?}"),
        },
        None => "(down)".to_string(),
    }
}

fn dump(cluster: &Cluster, c: ClientId, caption: &str) {
    println!("--- {caption}");
    for &s in &cluster.servers {
        println!("  Server {}: {}", s.0, interval_list(cluster, s, c));
    }
    println!();
}

fn main() {
    let cluster = Cluster::start("figures", ClusterOptions::new(3));
    let c = ClientId(7);

    // Stage 1 (toward Figure 3-1): epoch e1, records 1..3 on servers 1+2.
    {
        let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
        log.initialize().unwrap();
        for i in 1..=3u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        dump(
            &cluster,
            c,
            "after writing records 1-3 to servers 1 and 2 (epoch e1)",
        );
        // Client crashes (dropped).
    }

    // Stage 2: restart with server 2 unreachable — the init quorum is
    // servers 1+3 (M-N+1 = 2). Recovery copies record 3 with epoch e2 to
    // servers 1+3 and masks LSN 4 (δ = 1). Then records 5..9 are written,
    // switching so the middle lands on different pairs as in Figure 3-1.
    cluster
        .net
        .partition(client_addr(c), server_addr(ServerId(2)));
    {
        let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
        // Fixed strategy would pick servers 1+2; 2 is partitioned, so the
        // client fails over to 3 during recovery.
        log.initialize().unwrap();
        for i in 5..=7u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        cluster.net.heal(client_addr(c), server_addr(ServerId(2)));
        for i in 8..=9u64 {
            log.write(payload(i, 40)).unwrap();
        }
        log.force().unwrap();
        dump(
            &cluster,
            c,
            "Figure 3-1 analogue: after restart without server 2, then records 5-9 (epoch e2)",
        );

        // Stage 3 (Figure 3-2): record 10 is written to only ONE server —
        // we cut one target and stream asynchronously, then crash.
        let t2 = log.targets()[1];
        cluster.net.partition(client_addr(c), server_addr(t2));
        log.write(payload(10, 40)).unwrap();
        log.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(100));
        cluster.net.heal(client_addr(c), server_addr(t2));
        // Crash with record 10 partially written.
    }
    dump(
        &cluster,
        c,
        "Figure 3-2 analogue: record 10 partially written, client crashed",
    );

    // Stage 4 (Figure 3-3): restart. The recovery procedure copies the
    // doubtful tail with a new epoch e3 and appends a not-present record.
    {
        let mut log = cluster.client_with(c.0, 2, 1, AssignStrategy::Fixed);
        log.initialize().unwrap();
        dump(
            &cluster,
            c,
            "Figure 3-3 analogue: after the restart procedure (copy + not-present, epoch e3)",
        );
        println!("end of log after recovery: {}", log.end_of_log().unwrap());
        println!(
            "log remains writable: next write gets LSN {}",
            log.write(vec![1u8; 8]).unwrap()
        );
        log.force().unwrap();
    }
}
