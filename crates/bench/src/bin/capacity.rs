//! **E3 — §4.1 capacity analysis**: the paper's target load (50 clients ×
//! 10 ET1 TPS, six servers, N = 2) evaluated analytically, next to a
//! *measured* scaled-down live run on the in-process cluster whose
//! per-transaction packet and byte counts validate the model's inputs.
//!
//! Regenerate with: `cargo run -p dlog-bench --bin capacity --release`

use dlog_analysis::table::{fmt1, fmt2, Table};
use dlog_analysis::CapacityParams;
use dlog_bench::{Cluster, ClusterOptions};
use dlog_types::Lsn;
use dlog_workload::et1::profile;
use dlog_workload::recovery::LogMode;
use dlog_workload::{BankDb, Et1Config, RecoveryManager};

fn main() {
    analytic();
    measured();
    concurrent();
}

fn analytic() {
    let r = CapacityParams::paper_target().report();
    println!("Section 4.1 capacity analysis — paper target (500 TPS, 6 servers, N=2)\n");
    let mut t = Table::new(vec!["quantity", "model", "paper"]);
    t.row(vec![
        "messages/server/s, ungrouped".into(),
        fmt1(r.messages_per_server_ungrouped),
        "~2400".to_string(),
    ]);
    t.row(vec![
        "RPCs/server/s, grouped".into(),
        fmt1(r.rpcs_per_server_grouped),
        "~170".to_string(),
    ]);
    t.row(vec![
        "grouping factor".into(),
        fmt1(r.grouping_factor),
        "7".to_string(),
    ]);
    t.row(vec![
        "network Mbit/s".into(),
        fmt2(r.network_megabits_per_sec),
        "~7".to_string(),
    ]);
    t.row(vec![
        "comm CPU fraction".into(),
        fmt2(r.comm_cpu_fraction),
        "<0.10".to_string(),
    ]);
    t.row(vec![
        "logging CPU fraction".into(),
        fmt2(r.logging_cpu_fraction),
        "0.10-0.20".to_string(),
    ]);
    t.row(vec![
        "disk utilization".into(),
        fmt2(r.disk_utilization),
        "~0.50".to_string(),
    ]);
    t.row(vec![
        "GB/server/day".into(),
        fmt1(r.gb_per_server_per_day),
        "~10".to_string(),
    ]);
    println!("{}", t.render());
}

fn measured() {
    // Scaled-down live validation: 5 clients, 6 servers, N=2, 200 ET1
    // transactions each. We verify the model's per-transaction inputs —
    // records, bytes, forces, packets — on the real protocol stack.
    let clients = 5u64;
    let txns_per_client = 200u64;
    let mut cluster = Cluster::start("capacity", ClusterOptions::new(6));
    let mut total_records = 0u64;
    let mut total_payload = 0u64;
    let mut total_packets_out = 0u64;
    let start = std::time::Instant::now();
    for c in 0..clients {
        let mut log = cluster.client(c + 1, 2, 16);
        log.initialize().unwrap();
        let db = BankDb::new(10_000, 100, 10);
        let mut mgr = RecoveryManager::new(log, db, LogMode::Classic, 1 << 20);
        let mut gen = dlog_workload::Et1Generator::new(Et1Config::small(c));
        for _ in 0..txns_per_client {
            mgr.run_et1(&gen.next_txn()).unwrap();
        }
        let log = mgr.log_mut();
        let end = dlog_workload::recovery::LogAccess::end_of_log(log).unwrap();
        assert_eq!(end, Lsn(txns_per_client * profile::RECORDS_PER_TXN as u64));
        total_records += end.0;
        total_payload += log.stats().bytes_written;
        total_packets_out += log.net_stats().packets_out;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = cluster.stop_all();

    println!(
        "Measured mini-cluster ({clients} clients x {txns_per_client} ET1 txns, 6 servers, N=2)\n"
    );
    let txns = clients * txns_per_client;
    let mut t = Table::new(vec!["quantity", "measured", "model input"]);
    t.row(vec![
        "records per txn".into(),
        fmt2(total_records as f64 / txns as f64),
        "7".to_string(),
    ]);
    t.row(vec![
        "log bytes per txn".into(),
        fmt2(total_payload as f64 / txns as f64),
        "700".to_string(),
    ]);
    t.row(vec![
        "client packets out per txn (incl. epoch + init)".into(),
        fmt2(total_packets_out as f64 / txns as f64),
        "N = 2 forces + acks".to_string(),
    ]);
    let server_in: u64 = stats.iter().map(|(_, s, _)| s.packets_in).sum();
    let server_out: u64 = stats.iter().map(|(_, s, _)| s.packets_out).sum();
    t.row(vec![
        "server packets (in+out) per txn".into(),
        fmt2((server_in + server_out) as f64 / txns as f64),
        "~4 (2 in + 2 acks)".to_string(),
    ]);
    let stored: u64 = stats.iter().map(|(_, s, _)| s.records_stored).sum();
    t.row(vec![
        "stored copies per record".into(),
        fmt2(stored as f64 / total_records as f64),
        "2 (N)".to_string(),
    ]);
    t.row(vec![
        "aggregate TPS achieved (wall clock)".into(),
        fmt1(txns as f64 / elapsed),
        "(in-process; sequential clients)".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "Model check: grouping keeps server packet counts at ~4/txn instead of ~4*{} = {}/txn.",
        profile::RECORDS_PER_TXN,
        4 * profile::RECORDS_PER_TXN
    );
}

/// The paper\'s configuration in miniature, under real concurrency: 10
/// client threads sharing 6 servers, each committing ET1 transactions as
/// fast as the protocol allows. The paper targets 500 TPS aggregate on
/// 1987 hardware; the shape claim is simply that the shared servers are
/// nowhere near the bottleneck.
fn concurrent() {
    let clients = 10u64;
    let txns_per_client = 150u64;
    let cluster = Cluster::start("capacity-conc", ClusterOptions::new(6));
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let cluster = &cluster;
            scope.spawn(move || {
                let mut log = cluster.client(c + 1, 2, 16);
                log.initialize().unwrap();
                let db = BankDb::new(10_000, 100, 10);
                let mut mgr = RecoveryManager::new(log, db, LogMode::Classic, 1 << 20);
                let mut gen = dlog_workload::Et1Generator::new(Et1Config::small(c));
                for _ in 0..txns_per_client {
                    mgr.run_et1(&gen.next_txn()).unwrap();
                }
                assert!(mgr.db().conserved());
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let txns = clients * txns_per_client;
    println!(
        "\nConcurrent phase: {clients} client threads x {txns_per_client} ET1 txns over 6 shared \
         servers\n  aggregate: {:.0} TPS ({:.1} ms total) — the paper\'s 500 TPS target load is \
         {:.1}x below this machine\'s capacity.",
        txns as f64 / elapsed,
        elapsed * 1e3,
        (txns as f64 / elapsed) / 500.0
    );
}
