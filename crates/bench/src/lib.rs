//! Shared harness for the experiment binaries, criterion benches, and
//! repo-level integration tests: builds in-process clusters of real log
//! servers (threaded, storage-backed) and replicated-log clients over
//! them, on either the fault-injectable in-memory network or real UDP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod harness;
pub mod scenario;

pub use harness::{payload, Cluster, ClusterOptions};
