//! Reusable seeded soak scenario: a randomized schedule of server
//! kills, reboots, partitions, heals, client crashes, and writes runs
//! against a real cluster; afterwards the log must contain exactly the
//! records whose forces succeeded, and every server's trace must
//! satisfy the force-before-ack ordering invariant.
//!
//! `tests/soak.rs` runs it over a small sweep of seeds and
//! `tests/seed_corpus.rs` pins a corpus of previously interesting seeds
//! so they never rot out of coverage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::{client_addr, server_addr};
use crate::{payload, Cluster, ClusterOptions};
use dlog_types::{DlogError, Lsn, ServerId};

/// One seeded scenario with observability enabled. Returns the size of
/// the forced (durable) record set that was verified.
///
/// # Panics
/// On any lost or altered durable record, on trace-ring overflow, and
/// on a force-before-ack trace violation.
#[must_use]
pub fn run_soak_scenario(seed: u64) -> u64 {
    let m = 4u64;
    let mut opts = ClusterOptions::new(m);
    opts.obs = dlog_obs::ObsOptions::on();
    let mut cluster = Cluster::start(&format!("soak-{seed}"), opts);
    let mut rng = StdRng::seed_from_u64(seed);
    let client_id = 1u64;

    let mut log = cluster.client(client_id, 2, 4);
    log.initialize().unwrap();

    // Ground truth: (lsn, payload tag) for every record whose force
    // completed.
    let mut durable: Vec<(u64, u64)> = Vec::new();
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let mut down: Vec<ServerId> = Vec::new();
    let mut partitioned: Vec<ServerId> = Vec::new();
    let mut tag = 0u64;

    for _step in 0..60 {
        match rng.gen_range(0..10) {
            // Write a record (buffered).
            0..=3 => {
                tag += 1;
                if let Ok(lsn) = log.write(payload(tag, 60)) {
                    pending.push((lsn.0, tag));
                }
            }
            // Force: on success everything pending becomes durable.
            4..=5 => {
                if log.force().is_ok() {
                    durable.append(&mut pending);
                } else {
                    // A failed force leaves records in limbo; we make no
                    // claim about them (the client would retry). Drop our
                    // expectation.
                    pending.clear();
                }
            }
            // Kill a server (at most M−2 down so a quorum always exists).
            6 => {
                if down.len() < (m - 2) as usize {
                    let victim = ServerId(rng.gen_range(1..=m));
                    if !down.contains(&victim) {
                        cluster.kill_server(victim);
                        down.push(victim);
                    }
                }
            }
            // Reboot a downed server.
            7 => {
                if let Some(&s) = down.first() {
                    cluster.boot_server(s);
                    down.retain(|&x| x != s);
                }
            }
            // Partition the client from one server / heal it.
            8 => {
                let s = ServerId(rng.gen_range(1..=m));
                if partitioned.contains(&s) {
                    cluster
                        .net
                        .heal(client_addr(log.client_id()), server_addr(s));
                    partitioned.retain(|&x| x != s);
                } else if partitioned.is_empty() {
                    cluster
                        .net
                        .partition(client_addr(log.client_id()), server_addr(s));
                    partitioned.push(s);
                }
            }
            // Client crash + restart.
            _ => {
                pending.clear(); // unforced records may legitimately vanish
                drop(log);
                // Heal everything so initialization has its quorum.
                for &s in &partitioned {
                    cluster
                        .net
                        .heal(client_addr(dlog_types::ClientId(client_id)), server_addr(s));
                }
                partitioned.clear();
                for &s in &down.clone() {
                    cluster.boot_server(s);
                }
                down.clear();
                log = cluster.client(client_id, 2, 4);
                log.initialize().unwrap();
            }
        }
    }

    // Final settle: heal, reboot, force, audit.
    for &s in &partitioned {
        cluster
            .net
            .heal(client_addr(log.client_id()), server_addr(s));
    }
    for &s in &down.clone() {
        cluster.boot_server(s);
    }
    if log.force().is_ok() {
        durable.append(&mut pending);
    }

    for &(lsn, tag) in &durable {
        match log.read(Lsn(lsn)) {
            Ok(d) => assert_eq!(
                d.as_bytes(),
                payload(tag, 60).as_slice(),
                "seed {seed}: lsn {lsn} content changed"
            ),
            Err(e) => panic!("seed {seed}: durable lsn {lsn} lost: {e}"),
        }
    }
    // Reads past the end fail cleanly.
    let end = log.end_of_log().unwrap();
    assert!(matches!(
        log.read(end.next()),
        Err(DlogError::NoSuchRecord { .. })
    ));

    check_trace_invariants(&cluster, seed);
    durable.len() as u64
}

/// Every server's trace must satisfy the runtime twin of dlog-lint's
/// `ack-after-force` rule: a forced `AckHighLsn` event is preceded by a
/// `Force` event for the same client and LSN. The trace ring must not
/// have overflowed, or the check would be vacuous.
fn check_trace_invariants(cluster: &Cluster, seed: u64) {
    for &sid in &cluster.servers {
        let obs = cluster.server_obs(sid);
        let snap = obs
            .snapshot()
            .unwrap_or_else(|| panic!("seed {seed}: server {sid} has no obs snapshot"));
        assert_eq!(
            snap.trace_dropped, 0,
            "seed {seed}: server {sid} dropped trace events; grow the ring"
        );
        assert!(
            snap.trace_events > 0,
            "seed {seed}: server {sid} recorded no trace events"
        );
        if let Err(violation) = dlog_obs::check_force_before_ack(&snap.trace) {
            panic!("seed {seed}: server {sid}: {violation}");
        }
    }
}
