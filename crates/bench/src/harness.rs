//! In-process cluster harness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dlog_core::assign::AssignStrategy;
use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::wire::NodeAddr;
use dlog_net::{FaultPlan, MemEndpoint, MemNetwork};
use dlog_server::gen::GenStore;
use dlog_server::runner::ServerRunner;
use dlog_server::{LogServer, ServerConfig, ServerStats};
use dlog_storage::store::Durability;
use dlog_storage::{LogStore, NvramDevice, StoreOptions, StoreStats};
use dlog_types::{ClientId, ReplicationConfig, ServerId};

static CASE: AtomicU64 = AtomicU64::new(0);

/// Server addresses are their ids; clients live at 1000 + id.
#[must_use]
pub fn server_addr(s: ServerId) -> NodeAddr {
    NodeAddr(s.0)
}

/// Client node address.
#[must_use]
pub fn client_addr(c: ClientId) -> NodeAddr {
    NodeAddr(1000 + c.0)
}

/// Cluster construction knobs.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Log servers to start.
    pub servers: u64,
    /// Network fault plan.
    pub plan: FaultPlan,
    /// `fsync` server segment files (on for durability benchmarks, off
    /// for protocol tests on tmp dirs).
    pub fsync: bool,
    /// Force durability policy (NVRAM vs fsync-per-force; E8).
    pub durability: Durability,
    /// NVRAM device capacity per server.
    pub nvram_bytes: usize,
    /// Track size (NVRAM flush threshold).
    pub track_bytes: usize,
    /// Segment size override (`None`: the store default).
    pub segment_bytes: Option<u64>,
    /// Attach an archive tier (a local-directory object store per
    /// server) to every server.
    pub archive: bool,
    /// Observability: when enabled, every server (and every client built
    /// by [`Cluster::client`]) gets a tracing/histogram handle.
    pub obs: dlog_obs::ObsOptions,
    /// Group-commit coalescing window for every server (`ZERO`: the
    /// synchronous force-per-message path).
    pub coalesce_window: std::time::Duration,
    /// Where to place server directories (`None`: a temp dir).
    pub root: Option<PathBuf>,
}

impl ClusterOptions {
    /// Defaults: reliable network, no fsync, NVRAM durability.
    #[must_use]
    pub fn new(servers: u64) -> Self {
        ClusterOptions {
            servers,
            plan: FaultPlan::reliable(),
            fsync: false,
            durability: Durability::Nvram,
            nvram_bytes: 1 << 20,
            track_bytes: 64 * 1024,
            segment_bytes: None,
            archive: false,
            obs: dlog_obs::ObsOptions::off(),
            coalesce_window: std::time::Duration::ZERO,
            root: None,
        }
    }
}

/// A running in-process cluster.
pub struct Cluster {
    /// The network (partition / down control lives here).
    pub net: MemNetwork,
    /// The servers' ids.
    pub servers: Vec<ServerId>,
    opts: ClusterOptions,
    runners: HashMap<ServerId, ServerRunner>,
    nvrams: HashMap<ServerId, NvramDevice>,
    /// One observability handle per server; it survives kills and
    /// reboots so a scenario's trace spans the server's incarnations.
    server_obs: HashMap<ServerId, dlog_obs::Obs>,
    /// One handle shared by every client this cluster builds.
    client_obs: dlog_obs::Obs,
    root: PathBuf,
    cleanup: bool,
}

impl Cluster {
    /// Start a cluster.
    #[must_use]
    pub fn start(tag: &str, opts: ClusterOptions) -> Cluster {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let (root, cleanup) = match &opts.root {
            Some(r) => (r.clone(), false),
            None => (
                std::env::temp_dir()
                    .join("dlog-bench")
                    .join(format!("{tag}-{}-{case}", std::process::id())),
                true,
            ),
        };
        let _ = std::fs::remove_dir_all(&root);
        let net = MemNetwork::new(opts.plan);
        let client_obs = dlog_obs::Obs::new(&opts.obs);
        let mut cluster = Cluster {
            net,
            servers: (1..=opts.servers).map(ServerId).collect(),
            opts,
            runners: HashMap::new(),
            nvrams: HashMap::new(),
            server_obs: HashMap::new(),
            client_obs,
            root,
            cleanup,
        };
        for sid in cluster.servers.clone() {
            cluster
                .nvrams
                .insert(sid, NvramDevice::new(cluster.opts.nvram_bytes));
            cluster
                .server_obs
                .insert(sid, dlog_obs::Obs::new(&cluster.opts.obs));
            cluster.boot_server(sid);
        }
        cluster
    }

    fn server_dir(&self, sid: ServerId) -> PathBuf {
        self.root.join(format!("server-{}", sid.0))
    }

    /// Each server's archive tier lives beside its data directory.
    #[must_use]
    pub fn archive_dir(&self, sid: ServerId) -> PathBuf {
        self.root.join(format!("archive-{}", sid.0))
    }

    /// (Re)start a server from its on-disk + NVRAM state.
    pub fn boot_server(&mut self, sid: ServerId) {
        let dir = self.server_dir(sid);
        let mut store_opts = StoreOptions {
            fsync: self.opts.fsync,
            durability: self.opts.durability,
            track_bytes: self.opts.track_bytes,
            checkpoint_every: 0,
            ..StoreOptions::default()
        };
        if let Some(sb) = self.opts.segment_bytes {
            store_opts.segment_bytes = sb;
        }
        let nvram = self.nvrams.get(&sid).expect("registered").clone();
        let store = LogStore::open(&dir, store_opts, nvram).expect("open store");
        let gens = GenStore::open(dir.join("gens")).expect("open gens");
        let mut config = ServerConfig::new(sid);
        config.coalesce_window = self.opts.coalesce_window;
        let mut server = LogServer::new(config, store, gens).expect("server");
        if self.opts.archive {
            let objects =
                dlog_archive::LocalDirStore::open(self.archive_dir(sid)).expect("open archive dir");
            server
                .attach_archive(
                    std::sync::Arc::new(objects),
                    std::time::Duration::from_millis(10),
                )
                .expect("attach archive");
        }
        // An obs handle registered before this boot means the server ran
        // earlier in this cluster's life — this boot is a recovery, and
        // the surviving handle gets a `Stage::Recover` marker so the
        // trace reads crash → recover in one timeline.
        let rebooting = self.server_obs.contains_key(&sid);
        let obs = self
            .server_obs
            .entry(sid)
            .or_insert_with(|| dlog_obs::Obs::new(&self.opts.obs))
            .clone();
        server.set_obs(obs.clone());
        if rebooting {
            obs.event(
                dlog_obs::Stage::Recover,
                server.store_mut().stream_end(),
                sid.0,
            );
        }
        let mut ep = self.net.endpoint(server_addr(sid));
        ep.set_obs(obs);
        self.net.set_down(server_addr(sid), false);
        self.runners.insert(sid, ServerRunner::spawn(server, ep));
    }

    /// The server's observability handle (disabled unless
    /// [`ClusterOptions::obs`] enabled it).
    #[must_use]
    pub fn server_obs(&self, sid: ServerId) -> dlog_obs::Obs {
        self.server_obs.get(&sid).cloned().unwrap_or_default()
    }

    /// The handle shared by every client this cluster builds.
    #[must_use]
    pub fn client_obs(&self) -> dlog_obs::Obs {
        self.client_obs.clone()
    }

    /// Replace a server's NVRAM device with a fresh (empty) one —
    /// models battery loss or a board swap alongside media events.
    pub fn nvram_reset(&mut self, sid: ServerId) {
        self.nvrams
            .insert(sid, NvramDevice::new(self.opts.nvram_bytes));
    }

    /// Take a server down hard, stamping a `Stage::Crash` marker (with
    /// the durable stream end) into the server's trace so crash
    /// schedules are legible in observability dumps.
    pub fn kill_server(&mut self, sid: ServerId) {
        self.net.set_down(server_addr(sid), true);
        if let Some(r) = self.runners.remove(&sid) {
            let stream_end = r.crash();
            if let Some(obs) = self.server_obs.get(&sid) {
                obs.event(dlog_obs::Stage::Crash, stream_end, sid.0);
            }
        }
    }

    /// Stop a server gracefully and return it (for stats inspection).
    pub fn stop_server(&mut self, sid: ServerId) -> Option<LogServer> {
        self.net.set_down(server_addr(sid), true);
        self.runners.remove(&sid).map(ServerRunner::stop)
    }

    /// Stop every server and collect `(protocol stats, storage stats)`.
    pub fn stop_all(&mut self) -> Vec<(ServerId, ServerStats, StoreStats)> {
        let mut out = Vec::new();
        for sid in self.servers.clone() {
            if let Some(server) = self.stop_server(sid) {
                out.push((sid, server.stats(), server.store_stats()));
            }
        }
        out
    }

    /// Build a replicated-log client over this cluster.
    #[must_use]
    pub fn client(&self, id: u64, n: usize, delta: u64) -> ReplicatedLog<MemEndpoint> {
        self.client_with(id, n, delta, AssignStrategy::Striped)
    }

    /// Build a client with an explicit assignment strategy.
    #[must_use]
    pub fn client_with(
        &self,
        id: u64,
        n: usize,
        delta: u64,
        strategy: AssignStrategy,
    ) -> ReplicatedLog<MemEndpoint> {
        let cid = ClientId(id);
        let mut ep = self.net.endpoint(client_addr(cid));
        ep.set_obs(self.client_obs.clone());
        let addrs: HashMap<ServerId, NodeAddr> =
            self.servers.iter().map(|&s| (s, server_addr(s))).collect();
        let net = ClientNet::new(ep, addrs);
        let config = ReplicationConfig::new(self.servers.clone(), n, delta).expect("config");
        let mut copts = ClientOptions::new(config);
        copts.strategy = strategy;
        let mut log = ReplicatedLog::new(cid, copts, net);
        log.set_obs(self.client_obs.clone());
        log
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (_, r) in self.runners.drain() {
            drop(r);
        }
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

/// A recognizable payload per LSN.
#[must_use]
pub fn payload(i: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    if let Some(first) = v.first_mut() {
        *first = (i % 127) as u8;
    }
    v
}
