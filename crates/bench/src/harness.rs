//! In-process cluster harness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dlog_core::assign::AssignStrategy;
use dlog_core::client::{ClientOptions, ReplicatedLog};
use dlog_core::net::ClientNet;
use dlog_net::wire::NodeAddr;
use dlog_net::{FaultPlan, MemEndpoint, MemNetwork};
use dlog_server::gen::GenStore;
use dlog_server::runner::ServerRunner;
use dlog_server::shard::ShardSupervisor;
use dlog_server::{LogServer, ServerConfig, ServerStats};
use dlog_storage::store::Durability;
use dlog_storage::{LogStore, NvramDevice, StoreOptions, StoreStats};
use dlog_types::{ClientId, ReplicationConfig, ServerId};

static CASE: AtomicU64 = AtomicU64::new(0);

/// Server addresses are their ids; clients live at 1000 + id.
#[must_use]
pub fn server_addr(s: ServerId) -> NodeAddr {
    NodeAddr(s.0)
}

/// Client node address.
#[must_use]
pub fn client_addr(c: ClientId) -> NodeAddr {
    NodeAddr(1000 + c.0)
}

/// Cluster construction knobs.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Log servers to start.
    pub servers: u64,
    /// Network fault plan.
    pub plan: FaultPlan,
    /// `fsync` server segment files (on for durability benchmarks, off
    /// for protocol tests on tmp dirs).
    pub fsync: bool,
    /// Force durability policy (NVRAM vs fsync-per-force; E8).
    pub durability: Durability,
    /// NVRAM device capacity per server.
    pub nvram_bytes: usize,
    /// Track size (NVRAM flush threshold).
    pub track_bytes: usize,
    /// Segment size override (`None`: the store default).
    pub segment_bytes: Option<u64>,
    /// Attach an archive tier (a local-directory object store per
    /// server) to every server.
    pub archive: bool,
    /// Observability: when enabled, every server (and every client built
    /// by [`Cluster::client`]) gets a tracing/histogram handle.
    pub obs: dlog_obs::ObsOptions,
    /// Group-commit coalescing window for every server (`ZERO`: the
    /// synchronous force-per-message path).
    pub coalesce_window: std::time::Duration,
    /// Shard event loops per server (1: the classic single-loop runner).
    /// Defaults to `DLOG_TEST_SHARDS` from the environment so the whole
    /// test suite can be re-run against a sharded topology unchanged.
    pub shards: u64,
    /// Where to place server directories (`None`: a temp dir).
    pub root: Option<PathBuf>,
}

impl ClusterOptions {
    /// Defaults: reliable network, no fsync, NVRAM durability,
    /// `DLOG_TEST_SHARDS` shards (1 when unset).
    #[must_use]
    pub fn new(servers: u64) -> Self {
        ClusterOptions {
            servers,
            plan: FaultPlan::reliable(),
            fsync: false,
            durability: Durability::Nvram,
            nvram_bytes: 1 << 20,
            track_bytes: 64 * 1024,
            segment_bytes: None,
            archive: false,
            obs: dlog_obs::ObsOptions::off(),
            coalesce_window: std::time::Duration::ZERO,
            shards: test_shards(),
            root: None,
        }
    }
}

/// The suite-wide shard count: `DLOG_TEST_SHARDS` (CI runs the whole
/// workspace at 1 and at 4), clamped to at least 1.
#[must_use]
pub fn test_shards() -> u64 {
    std::env::var("DLOG_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(1, |v| v.max(1))
}

/// A server's event loops: the classic single-loop runner, or a shard
/// supervisor fanning a dispatcher into N loops.
enum Backend {
    Single(ServerRunner),
    Sharded(ShardSupervisor),
}

/// A running in-process cluster.
pub struct Cluster {
    /// The network (partition / down control lives here).
    pub net: MemNetwork,
    /// The servers' ids.
    pub servers: Vec<ServerId>,
    opts: ClusterOptions,
    backends: HashMap<ServerId, Backend>,
    nvrams: HashMap<(ServerId, u64), NvramDevice>,
    /// One observability handle per server *shard*; they survive kills
    /// and reboots so a scenario's trace spans the server's
    /// incarnations, and sharded stats never double-count.
    server_obs: HashMap<ServerId, Vec<dlog_obs::Obs>>,
    /// One handle shared by every client this cluster builds.
    client_obs: dlog_obs::Obs,
    root: PathBuf,
    cleanup: bool,
}

impl Cluster {
    /// Start a cluster.
    #[must_use]
    pub fn start(tag: &str, opts: ClusterOptions) -> Cluster {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let (root, cleanup) = match &opts.root {
            Some(r) => (r.clone(), false),
            None => (
                std::env::temp_dir()
                    .join("dlog-bench")
                    .join(format!("{tag}-{}-{case}", std::process::id())),
                true,
            ),
        };
        let _ = std::fs::remove_dir_all(&root);
        let net = MemNetwork::new(opts.plan);
        let client_obs = dlog_obs::Obs::new(&opts.obs);
        let mut cluster = Cluster {
            net,
            servers: (1..=opts.servers).map(ServerId).collect(),
            opts,
            backends: HashMap::new(),
            nvrams: HashMap::new(),
            server_obs: HashMap::new(),
            client_obs,
            root,
            cleanup,
        };
        let shards = cluster.opts.shards.max(1);
        for sid in cluster.servers.clone() {
            for k in 0..shards {
                cluster
                    .nvrams
                    .insert((sid, k), NvramDevice::new(cluster.opts.nvram_bytes));
            }
            cluster.server_obs.insert(
                sid,
                (0..shards)
                    .map(|_| dlog_obs::Obs::new(&cluster.opts.obs))
                    .collect(),
            );
            cluster.boot_server(sid);
        }
        cluster
    }

    fn server_dir(&self, sid: ServerId) -> PathBuf {
        self.root.join(format!("server-{}", sid.0))
    }

    /// Shard `k`'s storage root: the server directory itself for an
    /// unsharded server (the classic layout), a `shard-k/` subdirectory
    /// otherwise — each shard recovers its own root independently.
    fn shard_dir(&self, sid: ServerId, k: u64) -> PathBuf {
        if self.opts.shards.max(1) == 1 {
            self.server_dir(sid)
        } else {
            self.server_dir(sid).join(format!("shard-{k}"))
        }
    }

    /// Each server's archive tier lives beside its data directory.
    #[must_use]
    pub fn archive_dir(&self, sid: ServerId) -> PathBuf {
        self.root.join(format!("archive-{}", sid.0))
    }

    /// (Re)start a server from its on-disk + NVRAM state — every shard,
    /// each recovering from its own storage root.
    pub fn boot_server(&mut self, sid: ServerId) {
        let shards = self.opts.shards.max(1);
        // An obs handle registered before this boot means the server ran
        // earlier in this cluster's life — this boot is a recovery, and
        // the surviving handles get a `Stage::Recover` marker so the
        // trace reads crash → recover in one timeline.
        let rebooting = self.server_obs.contains_key(&sid);
        let obs_list: Vec<dlog_obs::Obs> = self
            .server_obs
            .entry(sid)
            .or_insert_with(|| {
                (0..shards)
                    .map(|_| dlog_obs::Obs::new(&self.opts.obs))
                    .collect()
            })
            .clone();
        let mut servers = Vec::with_capacity(shards as usize);
        for k in 0..shards {
            let dir = self.shard_dir(sid, k);
            let mut store_opts = StoreOptions {
                fsync: self.opts.fsync,
                durability: self.opts.durability,
                track_bytes: self.opts.track_bytes,
                checkpoint_every: 0,
                ..StoreOptions::default()
            };
            if let Some(sb) = self.opts.segment_bytes {
                store_opts.segment_bytes = sb;
            }
            let nvram = self
                .nvrams
                .entry((sid, k))
                .or_insert_with(|| NvramDevice::new(self.opts.nvram_bytes))
                .clone();
            let store = LogStore::open(&dir, store_opts, nvram).expect("open store");
            let gens = GenStore::open(dir.join("gens")).expect("open gens");
            let mut config = ServerConfig::new(sid).for_shard(k, shards);
            config.coalesce_window = self.opts.coalesce_window;
            let mut server = LogServer::new(config, store, gens).expect("server");
            if self.opts.archive {
                let archive_dir = if shards == 1 {
                    self.archive_dir(sid)
                } else {
                    self.archive_dir(sid).join(format!("shard-{k}"))
                };
                let objects =
                    dlog_archive::LocalDirStore::open(archive_dir).expect("open archive dir");
                server
                    .attach_archive(
                        std::sync::Arc::new(objects),
                        std::time::Duration::from_millis(10),
                    )
                    .expect("attach archive");
            }
            let obs = obs_list.get(k as usize).cloned().unwrap_or_default();
            server.set_obs(obs.clone());
            if rebooting {
                obs.event(
                    dlog_obs::Stage::Recover,
                    server.store_mut().stream_end(),
                    sid.0,
                );
            }
            servers.push(server);
        }
        let mut ep = self.net.endpoint(server_addr(sid));
        ep.set_obs(obs_list.first().cloned().unwrap_or_default());
        self.net.set_down(server_addr(sid), false);
        let backend = match (shards, servers.pop()) {
            (1, Some(only)) => Backend::Single(ServerRunner::spawn(only, ep)),
            (_, Some(last)) => {
                servers.push(last);
                // The in-memory transport routes frames to shard queues
                // itself (sender-side, from the wire header), so the
                // sharded backend runs without a dispatcher thread.
                Backend::Sharded(ShardSupervisor::spawn_routed(servers, ep))
            }
            (_, None) => unreachable!("shards >= 1"),
        };
        self.backends.insert(sid, backend);
    }

    /// The server's observability handle — shard 0's on a sharded
    /// server (disabled unless [`ClusterOptions::obs`] enabled it); use
    /// [`Cluster::server_shard_obs`] for every shard's handle.
    #[must_use]
    pub fn server_obs(&self, sid: ServerId) -> dlog_obs::Obs {
        self.server_obs
            .get(&sid)
            .and_then(|v| v.first().cloned())
            .unwrap_or_default()
    }

    /// Every shard's observability handle for `sid` (one entry on an
    /// unsharded server).
    #[must_use]
    pub fn server_shard_obs(&self, sid: ServerId) -> Vec<dlog_obs::Obs> {
        self.server_obs.get(&sid).cloned().unwrap_or_default()
    }

    /// The handle shared by every client this cluster builds.
    #[must_use]
    pub fn client_obs(&self) -> dlog_obs::Obs {
        self.client_obs.clone()
    }

    /// Replace a server's NVRAM devices (every shard's) with fresh
    /// (empty) ones — models battery loss or a board swap alongside
    /// media events.
    pub fn nvram_reset(&mut self, sid: ServerId) {
        for k in 0..self.opts.shards.max(1) {
            self.nvrams
                .insert((sid, k), NvramDevice::new(self.opts.nvram_bytes));
        }
    }

    /// Take a server down hard, stamping a `Stage::Crash` marker (with
    /// the durable stream end) into each shard's trace so crash
    /// schedules are legible in observability dumps.
    pub fn kill_server(&mut self, sid: ServerId) {
        self.net.set_down(server_addr(sid), true);
        let ends = match self.backends.remove(&sid) {
            Some(Backend::Single(r)) => vec![r.crash()],
            Some(Backend::Sharded(s)) => s.crash(),
            None => return,
        };
        if let Some(obs_list) = self.server_obs.get(&sid) {
            for (obs, end) in obs_list.iter().zip(ends) {
                obs.event(dlog_obs::Stage::Crash, end, sid.0);
            }
        }
    }

    /// Stop a server gracefully and return its per-shard servers in
    /// shard order (a single element on an unsharded server; empty when
    /// the server is not running).
    pub fn stop_server(&mut self, sid: ServerId) -> Vec<LogServer> {
        self.net.set_down(server_addr(sid), true);
        match self.backends.remove(&sid) {
            Some(Backend::Single(r)) => vec![r.stop()],
            Some(Backend::Sharded(s)) => s.stop(),
            None => Vec::new(),
        }
    }

    /// Stop every server and collect `(protocol stats, storage stats)`
    /// — one entry per shard on a sharded cluster.
    pub fn stop_all(&mut self) -> Vec<(ServerId, ServerStats, StoreStats)> {
        let mut out = Vec::new();
        for sid in self.servers.clone() {
            for server in self.stop_server(sid) {
                out.push((sid, server.stats(), server.store_stats()));
            }
        }
        out
    }

    /// Build a replicated-log client over this cluster.
    #[must_use]
    pub fn client(&self, id: u64, n: usize, delta: u64) -> ReplicatedLog<MemEndpoint> {
        self.client_with(id, n, delta, AssignStrategy::Striped)
    }

    /// Build a client with an explicit assignment strategy.
    #[must_use]
    pub fn client_with(
        &self,
        id: u64,
        n: usize,
        delta: u64,
        strategy: AssignStrategy,
    ) -> ReplicatedLog<MemEndpoint> {
        let cid = ClientId(id);
        let mut ep = self.net.endpoint(client_addr(cid));
        ep.set_obs(self.client_obs.clone());
        let addrs: HashMap<ServerId, NodeAddr> =
            self.servers.iter().map(|&s| (s, server_addr(s))).collect();
        let net = ClientNet::new(ep, addrs);
        let config = ReplicationConfig::new(self.servers.clone(), n, delta).expect("config");
        let mut copts = ClientOptions::new(config);
        copts.strategy = strategy;
        let mut log = ReplicatedLog::new(cid, copts, net);
        log.set_obs(self.client_obs.clone());
        log
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for (_, r) in self.backends.drain() {
            drop(r);
        }
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

/// A recognizable payload per LSN.
#[must_use]
pub fn payload(i: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    if let Some(first) = v.first_mut() {
        *first = (i % 127) as u8;
    }
    v
}
