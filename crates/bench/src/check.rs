//! Bench-regression comparator: parse two `obs_bench` JSON reports (a
//! committed baseline and a fresh run) and fail when throughput fell or
//! the client force tail grew beyond a tolerance. Used by the
//! `bench-regression` CI job via `cargo run -p dlog-bench --bin
//! bench_check`.
//!
//! The JSON parser is deliberately minimal — just enough for the
//! reports `obs_bench` itself writes — because the workspace takes no
//! external dependencies.

use std::collections::BTreeMap;

/// A parsed JSON value (the subset `obs_bench` emits).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as f64 (bench reports carry no u64 that loses
    /// precision at f64 scale).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document.
    ///
    /// # Errors
    /// Describes the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Walk a dotted path of object keys (`"scenarios.flaky.writes_per_sec"`).
    #[must_use]
    pub fn at(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            match cur {
                Json::Obj(m) => cur = m.get(key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value at a dotted path, if present.
    #[must_use]
    pub fn num_at(&self, path: &str) -> Option<f64> {
        match self.at(path) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Object keys at a dotted path (empty when absent or not an object).
    #[must_use]
    pub fn keys_at(&self, path: &str) -> Vec<String> {
        match self.at(path) {
            Some(Json::Obj(m)) => m.keys().cloned().collect(),
            _ => Vec::new(),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos = pos.saturating_add(1);
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos = pos.saturating_add(1);
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    let end = pos.saturating_add(lit.len());
    if b.get(*pos..end) == Some(lit.as_bytes()) {
        *pos = end;
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos = pos.saturating_add(1);
    }
    let s = std::str::from_utf8(b.get(start..*pos).unwrap_or_default())
        .map_err(|_| format!("bad number at byte {start}"))?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{s}' at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos = pos.saturating_add(1);
                return Ok(out);
            }
            Some(b'\\') => {
                *pos = pos.saturating_add(1);
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                });
                *pos = pos.saturating_add(1);
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through byte by byte; the
                // final String is rebuilt from valid input text.
                out.push(c as char);
                *pos = pos.saturating_add(1);
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos = pos.saturating_add(1);
        return Ok(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        let k = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        m.insert(k, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos = pos.saturating_add(1),
            Some(b'}') => {
                *pos = pos.saturating_add(1);
                return Ok(Json::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut a = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos = pos.saturating_add(1);
        return Ok(Json::Arr(a));
    }
    loop {
        a.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos = pos.saturating_add(1),
            Some(b']') => {
                *pos = pos.saturating_add(1);
                return Ok(Json::Arr(a));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

/// Compare a fresh `obs_bench` report against a committed baseline.
///
/// For every scenario the baseline names:
/// * `writes_per_sec` must not fall below `baseline × (1 − tolerance)`;
/// * the client-side `force` p99 must not exceed
///   `baseline × (1 + tolerance)` (checked only when both reports carry
///   the gauge);
/// * `allocs_per_write` must not exceed `baseline × (1 + tolerance)`
///   (checked only when both reports carry the gauge) — the zero-copy
///   wire path's allocation budget is a gated artifact, not a hope.
///
/// Returns the list of regressions — empty means pass. Scenarios only
/// present in the fresh report are ignored (adding scenarios is not a
/// regression); scenarios *missing* from the fresh report fail.
#[must_use]
pub fn compare(baseline: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for scenario in baseline.keys_at("scenarios") {
        let base_wps = baseline.num_at(&format!("scenarios.{scenario}.writes_per_sec"));
        let fresh_wps = fresh.num_at(&format!("scenarios.{scenario}.writes_per_sec"));
        match (base_wps, fresh_wps) {
            (Some(b), Some(f)) => {
                let floor = b * (1.0 - tolerance);
                if f < floor {
                    failures.push(format!(
                        "{scenario}: writes_per_sec {f:.0} below {floor:.0} \
                         (baseline {b:.0}, tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
            (Some(_), None) => {
                failures.push(format!("{scenario}: missing from fresh report"));
            }
            _ => {}
        }
        let p99 = format!("scenarios.{scenario}.client_stages.force.p99_ns");
        if let (Some(b), Some(f)) = (baseline.num_at(&p99), fresh.num_at(&p99)) {
            // The latency histogram is power-of-two bucketed, so a value
            // sitting near a bucket edge quantizes to the next bucket —
            // a 2× "jump" — under pure scheduling jitter. Grant one
            // bucket of slack on top of the tolerance: the gate trips on
            // a ≥ 2-bucket (≥ 4×) tail regression, which no edge effect
            // can produce.
            let ceil = (b * (1.0 + tolerance)).max(b.mul_add(2.0, 1.0));
            if f > ceil {
                failures.push(format!(
                    "{scenario}: client force p99 {f:.0}ns above {ceil:.0}ns \
                     (baseline {b:.0}ns, tolerance {:.0}%)",
                    tolerance * 100.0
                ));
            }
        }
        let apw = format!("scenarios.{scenario}.allocs_per_write");
        if let (Some(b), Some(f)) = (baseline.num_at(&apw), fresh.num_at(&apw)) {
            let ceil = b * (1.0 + tolerance);
            if f > ceil {
                failures.push(format!(
                    "{scenario}: allocs_per_write {f:.3} above {ceil:.3} \
                     (baseline {b:.3}, tolerance {:.0}%)",
                    tolerance * 100.0
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wps_reliable: f64, wps_flaky: f64, p99_flaky: f64) -> String {
        format!(
            r#"{{
              "bench": "obs_bench",
              "scenarios": {{
                "reliable": {{
                  "writes_per_sec": {wps_reliable},
                  "client_stages": {{ "force": {{ "p99_ns": 100000 }} }}
                }},
                "flaky": {{
                  "writes_per_sec": {wps_flaky},
                  "client_stages": {{ "force": {{ "p99_ns": {p99_flaky} }} }}
                }}
              }}
            }}"#
        )
    }

    #[test]
    fn parser_roundtrips_bench_shape() {
        let j = Json::parse(&report(117000.0, 5400.0, 2e6)).unwrap();
        assert_eq!(
            j.num_at("scenarios.reliable.writes_per_sec"),
            Some(117000.0)
        );
        assert_eq!(
            j.num_at("scenarios.flaky.client_stages.force.p99_ns"),
            Some(2e6)
        );
        assert_eq!(j.keys_at("scenarios"), vec!["flaky", "reliable"]);
        assert_eq!(j.num_at("scenarios.absent.writes_per_sec"), None);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a": }"#).is_err());
        assert!(Json::parse(r#"{"a": 1} trailing"#).is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let base = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        let fresh = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        assert!(compare(&base, &fresh, 0.30).is_empty());
    }

    #[test]
    fn small_wobble_within_tolerance_passes() {
        let base = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        let fresh = Json::parse(&report(85000.0, 4200.0, 1.2e6)).unwrap();
        assert!(compare(&base, &fresh, 0.30).is_empty());
    }

    #[test]
    fn degraded_throughput_fails() {
        let base = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        // Flaky throughput collapsed far past the 30% tolerance.
        let fresh = Json::parse(&report(100000.0, 500.0, 1e6)).unwrap();
        let fails = compare(&base, &fresh, 0.30);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("flaky"), "{fails:?}");
        assert!(fails[0].contains("writes_per_sec"), "{fails:?}");
    }

    #[test]
    fn degraded_force_tail_fails() {
        let base = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        let fresh = Json::parse(&report(100000.0, 5000.0, 1e8)).unwrap();
        let fails = compare(&base, &fresh, 0.30);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("p99"), "{fails:?}");
    }

    #[test]
    fn force_tail_single_bucket_jump_is_quantization_not_regression() {
        // 131071 → 262143 is one power-of-two histogram bucket: edge
        // jitter, not a regression. Two buckets (524287) trips the gate.
        let base = Json::parse(&report(100000.0, 5000.0, 131071.0)).unwrap();
        let one = Json::parse(&report(100000.0, 5000.0, 262143.0)).unwrap();
        assert!(compare(&base, &one, 0.30).is_empty());
        let two = Json::parse(&report(100000.0, 5000.0, 524287.0)).unwrap();
        let fails = compare(&base, &two, 0.30);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("p99"), "{fails:?}");
    }

    fn report_with_allocs(apw_reliable: f64) -> String {
        format!(
            r#"{{
              "scenarios": {{
                "reliable": {{
                  "writes_per_sec": 100000,
                  "allocs_per_write": {apw_reliable}
                }}
              }}
            }}"#
        )
    }

    #[test]
    fn alloc_regression_fails() {
        let base = Json::parse(&report_with_allocs(4.0)).unwrap();
        let fresh = Json::parse(&report_with_allocs(9.5)).unwrap();
        let fails = compare(&base, &fresh, 0.30);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("allocs_per_write"), "{fails:?}");
    }

    #[test]
    fn alloc_within_tolerance_passes() {
        let base = Json::parse(&report_with_allocs(4.0)).unwrap();
        let fresh = Json::parse(&report_with_allocs(4.9)).unwrap();
        assert!(compare(&base, &fresh, 0.30).is_empty());
    }

    #[test]
    fn missing_alloc_gauge_is_not_checked() {
        // Old baselines predate the gauge; the row only arms when both
        // reports carry it.
        let base = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        let fresh = Json::parse(&report_with_allocs(50.0)).unwrap();
        let fails = compare(&base, &fresh, 0.30);
        assert!(
            !fails.iter().any(|f| f.contains("allocs_per_write")),
            "{fails:?}"
        );
    }

    #[test]
    fn missing_scenario_fails() {
        let base = Json::parse(&report(100000.0, 5000.0, 1e6)).unwrap();
        let fresh =
            Json::parse(r#"{"scenarios": {"reliable": {"writes_per_sec": 100000}}}"#).unwrap();
        let fails = compare(&base, &fresh, 0.30);
        assert!(
            fails
                .iter()
                .any(|f| f.contains("flaky") && f.contains("missing")),
            "{fails:?}"
        );
    }

    #[test]
    fn extra_fresh_scenarios_ignored() {
        let base =
            Json::parse(r#"{"scenarios": {"reliable": {"writes_per_sec": 100000}}}"#).unwrap();
        let fresh = Json::parse(&report(100000.0, 1.0, 9e9)).unwrap();
        assert!(compare(&base, &fresh, 0.30).is_empty());
    }
}
