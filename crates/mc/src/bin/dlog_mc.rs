//! `dlog-mc` — run the explicit-state model checker from the command
//! line.
//!
//! Exhaustive BFS by default; `--walk N` switches to N seeded random
//! walks. Exit status: 0 = explored clean, 1 = invariant violated
//! (counterexample printed, and written to `--out` if given), 2 = usage
//! error.

use std::process::ExitCode;

use dlog_mc::explore::{default_scratch, Explorer};
use dlog_mc::{render_counterexample, McConfig, Mutation, Report};

const USAGE: &str = "\
dlog-mc: explicit-state model checker for the dlog protocol core

USAGE:
    dlog-mc [OPTIONS]

OPTIONS:
    --depth N        BFS depth bound in actions (default 7)
    --servers N      log servers (default 2)
    --shards N       shard event loops per server (default 1)
    --clients N      model clients (default 1)
    --delta N        client window bound δ (default 2)
    --need-n N       servers that must hold a record (default 2)
    --script S       per-client op script, w=write f=force (default \"wf\")
    --batch N        group-commit batch cap (default 2)
    --crashes N      crash budget per path (default 1)
    --dups N         duplicate budget per path (default 1)
    --rexmits N      retransmit budget per client (default 1)
    --mutation M     seeded bug: none, early-ack, skip-force,
                     lost-ack, amnesia (default none)
    --walk N         run N random walks instead of exhaustive BFS
    --walk-depth N   actions per walk (default 4 * depth)
    --seed N         walk RNG seed (default 1)
    --json           machine-readable report on stdout
    --out FILE       also write the rendered counterexample to FILE
    --help           this text
";

struct Cli {
    cfg: McConfig,
    depth: usize,
    walks: u64,
    walk_depth: usize,
    seed: u64,
    json: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: McConfig::default(),
        depth: 7,
        walks: 0,
        walk_depth: 0,
        seed: 1,
        json: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--json" => cli.json = true,
            "--depth" => cli.depth = parse_num(&take("--depth")?)? as usize,
            "--servers" => cli.cfg.servers = parse_num(&take("--servers")?)?,
            "--shards" => cli.cfg.shards = parse_num(&take("--shards")?)?.max(1),
            "--clients" => cli.cfg.clients = parse_num(&take("--clients")?)?,
            "--delta" => cli.cfg.delta = parse_num(&take("--delta")?)?,
            "--need-n" => cli.cfg.need_n = parse_num(&take("--need-n")?)? as usize,
            "--script" => cli.cfg.script = McConfig::parse_script(&take("--script")?)?,
            "--batch" => cli.cfg.coalesce_max_batch = parse_num(&take("--batch")?)? as usize,
            "--crashes" => cli.cfg.max_crashes = parse_num(&take("--crashes")?)? as u32,
            "--dups" => cli.cfg.max_dups = parse_num(&take("--dups")?)? as u32,
            "--rexmits" => cli.cfg.max_rexmits = parse_num(&take("--rexmits")?)? as u32,
            "--mutation" => cli.cfg.mutation = Mutation::parse(&take("--mutation")?)?,
            "--walk" => cli.walks = parse_num(&take("--walk")?)?,
            "--walk-depth" => cli.walk_depth = parse_num(&take("--walk-depth")?)? as usize,
            "--seed" => cli.seed = parse_num(&take("--seed")?)?,
            "--out" => cli.out = Some(take("--out")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cli.cfg.servers == 0 || cli.cfg.clients == 0 {
        return Err("need at least one server and one client".to_string());
    }
    if cli.cfg.need_n == 0 || cli.cfg.need_n > cli.cfg.servers as usize {
        return Err(format!(
            "--need-n must be in 1..={} (the server count)",
            cli.cfg.servers
        ));
    }
    if cli.walk_depth == 0 {
        cli.walk_depth = cli.depth.saturating_mul(4);
    }
    Ok(cli)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_report(report: &Report, mode: &str) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"mode\":\"{}\",", json_escape(mode)));
    out.push_str(&format!("\"states_unique\":{},", report.states_unique));
    out.push_str(&format!("\"dedup_hits\":{},", report.dedup_hits));
    out.push_str(&format!("\"replays\":{},", report.replays));
    out.push_str(&format!("\"actions_applied\":{},", report.actions_applied));
    out.push_str(&format!("\"max_depth\":{},", report.max_depth));
    out.push_str(&format!("\"elapsed_ms\":{},", report.elapsed_ms));
    match &report.violation {
        None => out.push_str("\"violation\":null"),
        Some(ce) => {
            let trace: Vec<String> = ce
                .trace
                .iter()
                .map(|a| format!("\"{}\"", json_escape(&a.to_string())))
                .collect();
            out.push_str(&format!(
                "\"violation\":{{\"invariant\":\"{}\",\"detail\":\"{}\",\
                 \"original_len\":{},\"trace\":[{}]}}",
                json_escape(ce.violation.invariant),
                json_escape(&ce.violation.detail),
                ce.original_len,
                trace.join(",")
            ));
        }
    }
    out.push('}');
    out
}

fn run() -> Result<u8, String> {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return Ok(0);
        }
        Err(e) => {
            eprintln!("dlog-mc: {e}\n\n{USAGE}");
            return Ok(2);
        }
    };
    let explorer = Explorer::new(&cli.cfg, &default_scratch("cli"));
    let (report, mode) = if cli.walks > 0 {
        (
            explorer.run_walk(cli.walks, cli.walk_depth, cli.seed)?,
            "walk",
        )
    } else {
        (explorer.run_bfs(cli.depth)?, "bfs")
    };

    if cli.json {
        println!("{}", json_report(&report, mode));
    } else {
        println!(
            "dlog-mc ({mode}): {} unique states, {} dedup hits, {} replays, \
             {} actions, depth {}, {} ms",
            report.states_unique,
            report.dedup_hits,
            report.replays,
            report.actions_applied,
            report.max_depth,
            report.elapsed_ms
        );
    }
    let Some(ce) = &report.violation else {
        if !cli.json {
            println!("no invariant violations.");
        }
        return Ok(0);
    };
    let rendered = render_counterexample(&cli.cfg, ce, &default_scratch("render"))?;
    eprintln!("{rendered}");
    if let Some(path) = &cli.out {
        std::fs::write(path, &rendered).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("counterexample written to {path}");
    }
    Ok(1)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("dlog-mc: {e}");
            ExitCode::from(2)
        }
    }
}
