//! Frontier exploration: breadth-first search over action prefixes with
//! visited-state dedup, a seeded random-walk mode for depths the
//! exhaustive frontier cannot reach, counterexample minimization, and
//! trace replay for pinned regressions.
//!
//! `LogServer` owns real files and cannot be cloned, so a state is
//! restored by replaying its action prefix from a fresh root world in
//! the scratch directory (every transition is deterministic — see the
//! crate docs). BFS therefore costs one replay per *edge*, which is
//! exactly why the model keeps its per-state footprint tiny: a replay
//! is a directory wipe, a couple of store opens, and a handful of
//! in-memory packet routes.

use std::collections::{HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::time::Instant;

use dlog_obs::ObsSnapshot;

use crate::model::{Action, McConfig, McWorld, Violation};

/// A violating action trace, minimized and replayable.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The minimized trace; replaying it from a fresh world reproduces
    /// the violation on its final action.
    pub trace: Vec<Action>,
    /// What broke.
    pub violation: Violation,
    /// Length of the trace as originally found, before minimization.
    pub original_len: usize,
}

impl CounterExample {
    /// The trace in its replayable text form (one action per line, the
    /// same syntax `Action::from_str` parses).
    #[must_use]
    pub fn trace_text(&self) -> String {
        let mut out = String::new();
        for a in &self.trace {
            out.push_str(&a.to_string());
            out.push('\n');
        }
        out
    }
}

/// What an exploration did and found.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Distinct states visited (by canonical fingerprint).
    pub states_unique: u64,
    /// Successor states that deduplicated onto an already-visited
    /// fingerprint.
    pub dedup_hits: u64,
    /// Fresh root worlds built (one per edge in BFS, one per walk in
    /// walk mode, plus minimization probes).
    pub replays: u64,
    /// Total actions applied across all replays.
    pub actions_applied: u64,
    /// Deepest trace length reached.
    pub max_depth: usize,
    /// Wall-clock time.
    pub elapsed_ms: u64,
    /// The minimized counterexample, if an invariant broke.
    pub violation: Option<CounterExample>,
}

struct Counters {
    replays: u64,
    actions: u64,
}

enum Outcome {
    Clean(Box<McWorld>),
    Violated {
        at: usize,
        violation: Violation,
    },
    /// The trace is not applicable from the root state (an action
    /// referenced a bag slot or budget that does not exist) — possible
    /// only for hand-edited or minimization-candidate traces.
    Invalid(String),
}

/// Replay `trace` from a fresh root world in `dir`, stopping at the
/// first violation. Actions before index `checked_from` are applied
/// with the fast path ([`McWorld::apply_unchecked`]) — BFS uses this
/// for prefixes already verified clean when first explored; pass 0 to
/// fully check every action (pinned replays, minimization candidates).
fn run_trace(
    cfg: &McConfig,
    dir: &Path,
    trace: &[Action],
    checked_from: usize,
    counters: &mut Counters,
) -> Result<Outcome, String> {
    let mut world = McWorld::new(cfg, dir)?;
    counters.replays = counters.replays.saturating_add(1);
    for (at, action) in trace.iter().enumerate() {
        counters.actions = counters.actions.saturating_add(1);
        let stepped = if at < checked_from {
            world.apply_unchecked(*action)
        } else {
            world.apply(*action)
        };
        match stepped {
            Ok(None) => {}
            Ok(Some(violation)) => return Ok(Outcome::Violated { at, violation }),
            Err(e) => return Ok(Outcome::Invalid(e)),
        }
    }
    Ok(Outcome::Clean(Box::new(world)))
}

/// Replay a pinned trace from a fresh world under `dir`, returning the
/// violation it reproduces (or `None` if it runs clean).
///
/// # Errors
/// Scratch-dir failures, or a trace that is not applicable from the
/// initial state.
pub fn replay_trace(
    cfg: &McConfig,
    trace: &[Action],
    dir: &Path,
) -> Result<Option<Violation>, String> {
    let mut counters = Counters {
        replays: 0,
        actions: 0,
    };
    match run_trace(cfg, dir, trace, 0, &mut counters)? {
        Outcome::Clean(_) => Ok(None),
        Outcome::Violated { violation, .. } => Ok(Some(violation)),
        Outcome::Invalid(e) => Err(format!("trace not applicable: {e}")),
    }
}

/// The bounded explorer. One instance owns one scratch directory; the
/// root world is rebuilt there for every replay.
pub struct Explorer {
    cfg: McConfig,
    scratch: PathBuf,
}

/// A scratch directory for world state: RAM-backed when the platform
/// offers `/dev/shm` (a replay is a directory wipe plus store reopens,
/// so keeping it off rotating storage is the single biggest speedup),
/// falling back to the system temp dir.
#[must_use]
pub fn default_scratch(tag: &str) -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    let base = if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    };
    base.join(format!("dlog-mc-{}-{tag}", std::process::id()))
}

impl Explorer {
    /// An explorer for `cfg` working under `scratch` (created/wiped on
    /// demand).
    #[must_use]
    pub fn new(cfg: &McConfig, scratch: &Path) -> Explorer {
        Explorer {
            cfg: cfg.clone(),
            scratch: scratch.to_path_buf(),
        }
    }

    /// Exhaustive breadth-first exploration of every action
    /// interleaving up to `max_depth` actions, deduplicating on
    /// canonical fingerprints. Returns on the first invariant violation
    /// (with a minimized counterexample) or when the frontier is
    /// exhausted.
    ///
    /// # Errors
    /// Scratch-dir failures, or an internal inconsistency (an enabled
    /// action failing to apply on replay).
    pub fn run_bfs(&self, max_depth: usize) -> Result<Report, String> {
        let started = Instant::now();
        let mut counters = Counters {
            replays: 0,
            actions: 0,
        };
        let mut report = Report::default();
        let mut visited: HashSet<u64> = HashSet::new();

        let mut root = match run_trace(&self.cfg, &self.scratch, &[], 0, &mut counters)? {
            Outcome::Clean(w) => w,
            Outcome::Violated { violation, .. } => {
                // The initial state itself is broken — nothing to
                // minimize.
                report.violation = Some(CounterExample {
                    trace: Vec::new(),
                    violation,
                    original_len: 0,
                });
                return Ok(self.finish(report, counters, started));
            }
            Outcome::Invalid(e) => return Err(e),
        };
        visited.insert(root.fingerprint());
        report.states_unique = 1;

        let mut frontier: VecDeque<(Vec<Action>, Vec<Action>)> = VecDeque::new();
        frontier.push_back((Vec::new(), root.enabled_actions()));

        while let Some((prefix, enabled)) = frontier.pop_front() {
            for action in enabled {
                let mut trace = prefix.clone();
                trace.push(action);
                report.max_depth = report.max_depth.max(trace.len());
                let outcome = run_trace(
                    &self.cfg,
                    &self.scratch,
                    &trace,
                    prefix.len(),
                    &mut counters,
                )?;
                let mut world = match outcome {
                    Outcome::Clean(w) => w,
                    Outcome::Violated { at, violation } => {
                        trace.truncate(at.saturating_add(1));
                        report.violation = Some(self.minimize(&trace, violation, &mut counters)?);
                        return Ok(self.finish(report, counters, started));
                    }
                    Outcome::Invalid(e) => {
                        return Err(format!(
                            "enabled action {action} failed on replay of {}-action \
                             prefix: {e}",
                            prefix.len()
                        ));
                    }
                };
                let fp = world.fingerprint();
                if !visited.insert(fp) {
                    report.dedup_hits = report.dedup_hits.saturating_add(1);
                    continue;
                }
                report.states_unique = report.states_unique.saturating_add(1);
                if trace.len() < max_depth {
                    let next = world.enabled_actions();
                    if !next.is_empty() {
                        frontier.push_back((trace, next));
                    }
                }
            }
        }
        Ok(self.finish(report, counters, started))
    }

    /// Seeded random walks: `walks` independent runs of up to `depth`
    /// actions each, sampling one enabled action per step with an
    /// xorshift generator. Reaches interleaving depths the exhaustive
    /// frontier cannot, at the price of coverage guarantees.
    ///
    /// # Errors
    /// Scratch-dir failures.
    pub fn run_walk(&self, walks: u64, depth: usize, seed: u64) -> Result<Report, String> {
        let started = Instant::now();
        let mut counters = Counters {
            replays: 0,
            actions: 0,
        };
        let mut report = Report::default();
        let mut visited: HashSet<u64> = HashSet::new();
        // Xorshift needs a nonzero state; fold seed 0 onto the golden
        // ratio constant.
        let mut s: u64 = if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        };

        for _ in 0..walks {
            let mut world = McWorld::new(&self.cfg, &self.scratch)?;
            counters.replays = counters.replays.saturating_add(1);
            let mut trace: Vec<Action> = Vec::new();
            for _ in 0..depth {
                let enabled = world.enabled_actions();
                if enabled.is_empty() {
                    break;
                }
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let idx = (s % enabled.len() as u64) as usize;
                let Some(action) = enabled.get(idx).copied() else {
                    break;
                };
                trace.push(action);
                report.max_depth = report.max_depth.max(trace.len());
                counters.actions = counters.actions.saturating_add(1);
                match world.apply(action) {
                    Ok(None) => {}
                    Ok(Some(violation)) => {
                        report.violation = Some(self.minimize(&trace, violation, &mut counters)?);
                        return Ok(self.finish(report, counters, started));
                    }
                    Err(e) => return Err(format!("enabled action {action} failed mid-walk: {e}")),
                }
                let fp = world.fingerprint();
                if visited.insert(fp) {
                    report.states_unique = report.states_unique.saturating_add(1);
                } else {
                    report.dedup_hits = report.dedup_hits.saturating_add(1);
                }
            }
        }
        Ok(self.finish(report, counters, started))
    }

    /// Shrink a violating trace: repeatedly try removing one action at
    /// a time (right to left), keeping a removal when the replay still
    /// violates the *same* invariant. Candidates that become
    /// inapplicable (e.g. a `recover` whose `crash` was removed) are
    /// skipped. Also truncates to the violating action, since nothing
    /// after it matters.
    fn minimize(
        &self,
        trace: &[Action],
        violation: Violation,
        counters: &mut Counters,
    ) -> Result<CounterExample, String> {
        let original_len = trace.len();
        let invariant = violation.invariant;
        let mut current = trace.to_vec();
        let mut best = violation;
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = current.len();
            while i > 0 {
                i = i.saturating_sub(1);
                let mut candidate = current.clone();
                candidate.remove(i);
                match run_trace(&self.cfg, &self.scratch, &candidate, 0, counters)? {
                    Outcome::Violated { at, violation: v } if v.invariant == invariant => {
                        candidate.truncate(at.saturating_add(1));
                        current = candidate;
                        best = v;
                        changed = true;
                        // Keep scanning from the same index in the now
                        // shorter trace.
                        i = i.min(current.len());
                    }
                    _ => {}
                }
            }
        }
        Ok(CounterExample {
            trace: current,
            violation: best,
            original_len,
        })
    }

    fn finish(&self, mut report: Report, counters: Counters, started: Instant) -> Report {
        report.replays = counters.replays;
        report.actions_applied = counters.actions;
        report.elapsed_ms = started.elapsed().as_millis() as u64;
        let _ = std::fs::remove_dir_all(&self.scratch);
        report
    }
}

fn push_trace_lines(out: &mut String, snap: &ObsSnapshot) {
    for e in &snap.trace {
        out.push_str(&format!(
            "  [{:>4}] {:<12} lsn={:<6} detail={}\n",
            e.seq,
            e.stage.name(),
            e.lsn,
            e.detail
        ));
    }
}

/// Replay a counterexample and render it for humans: the violated
/// invariant, the minimized action trace in replayable syntax, and the
/// world + per-server observability traces (crash/recover markers
/// inline), all through the `dlog-obs` stage machinery.
///
/// # Errors
/// Scratch-dir failures while replaying.
pub fn render_counterexample(
    cfg: &McConfig,
    ce: &CounterExample,
    dir: &Path,
) -> Result<String, String> {
    let mut world = McWorld::new(cfg, dir)?;
    let mut replayed = Violation {
        invariant: ce.violation.invariant,
        detail: ce.violation.detail.clone(),
    };
    for action in &ce.trace {
        if let Some(v) = world.apply(*action)? {
            replayed = v;
            break;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "violated invariant: {}\n  {}\n",
        replayed.invariant, replayed.detail
    ));
    out.push_str(&format!(
        "minimized trace ({} actions, found at {}):\n",
        ce.trace.len(),
        ce.original_len
    ));
    for action in &ce.trace {
        out.push_str(&format!("  {action}\n"));
    }
    if let Some(snap) = world.world_obs().snapshot() {
        out.push_str("world trace:\n");
        push_trace_lines(&mut out, &snap);
    }
    for (sid, obs) in world.server_obs() {
        if let Some(snap) = obs.snapshot() {
            out.push_str(&format!("server {sid} trace:\n"));
            push_trace_lines(&mut out, &snap);
        }
    }
    let _ = std::fs::remove_dir_all(dir);
    Ok(out)
}
