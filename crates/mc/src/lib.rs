//! `dlog-mc`: an explicit-state model checker for the protocol core.
//!
//! The paper's correctness story rests on a handful of invariants —
//! WriteLog atomicity via epoch + present flags (§3.1.2), δ-bounded
//! recovery and ack-after-force (§4.2), and the group-commit obligation
//! rule (no `ForceLog` ack without a completed durable round). The
//! property-test suites check them on the interleavings proptest
//! happens to sample; this crate checks them on **all** interleavings
//! of {deliver, drop, duplicate, client step, retransmit, group-commit
//! flush, server crash, server recover} up to a bounded depth, driving
//! the *real* `LogServer` and `LogStore` — not an abstraction — through
//! a nondeterministic packet bag.
//!
//! Layout:
//!
//! * [`harness`] — the synchronous sans-I/O cluster (`SyncWorld` /
//!   `SyncEndpoint`) shared by `tests/trace_determinism.rs` and
//!   `tests/group_commit.rs`, which used to carry private copies.
//! * [`model`] — the checker's world: the action alphabet, a steppable
//!   model client, crash/recover semantics, canonical state
//!   fingerprinting, and the invariant catalog.
//! * [`explore`] — BFS frontier exploration with visited-state dedup, a
//!   random-walk mode for beyond-frontier depths, counterexample
//!   minimization, and trace replay for pinned regressions.
//!
//! States are restored by **replay**: `LogServer` holds real files and
//! cannot be cloned, so each explored state is reached by replaying its
//! action prefix from a fresh root world in a scratch directory. Every
//! action is deterministic (the checker draws no randomness inside a
//! transition), so replay is exact — which is also what makes a found
//! counterexample a replayable artifact rather than a flaky anecdote.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod harness;
pub mod model;

pub use explore::{render_counterexample, replay_trace, CounterExample, Explorer, Report};
pub use model::{mc_payload, Action, ClientOp, McConfig, McWorld, Mutation, Violation};
