//! The checker's world: real `LogServer`s over a nondeterministic
//! packet bag, a steppable sans-I/O model client, crash/recover
//! semantics, the action alphabet, canonical state fingerprinting, and
//! the invariant catalog.
//!
//! Nondeterminism lives **between** transitions, never inside one: an
//! [`Action`] names one atomic choice (deliver this packet, crash that
//! server, …) and applying it is fully deterministic. Reordering needs
//! no action of its own — it emerges from the order bag slots are
//! delivered in. That determinism is what lets the explorer restore any
//! state by replaying its action prefix, and what makes counterexample
//! traces replayable artifacts.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::time::Duration;

use dlog_net::wire::{Message, NodeAddr, Packet};
use dlog_obs::{check_force_before_ack, Obs, ObsOptions, Stage};
use dlog_server::LogServer;
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, Interval, LogId, Lsn, ServerId};

/// NVRAM capacity per modelled server — comfortably larger than any
/// bounded-depth workload, so durability never hinges on fsync (which
/// the scratch stores run with off).
const NVRAM_CAP: usize = 1 << 20;

/// Client addresses start here; server `i` is `NodeAddr(i)`.
const CLIENT_ADDR_BASE: u64 = 1000;

/// One step of a model client's scripted workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientOp {
    /// Assign the next LSN and send a `WriteLog` to every server.
    Write,
    /// Send a `ForceLog` carrying each server's unacked suffix.
    Force,
}

/// A deliberately seeded protocol bug, used to test the checker itself:
/// each mutation must be caught with a minimized, replayable
/// counterexample (see `tests/model_check.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The faithful protocol.
    #[default]
    None,
    /// A server acknowledges a `ForceLog` the moment it arrives,
    /// before any durability round — the classic ack-before-force bug.
    /// Caught by the `ack-after-force` trace invariant.
    EarlyAck,
    /// A group-commit flush acknowledges its obligations without
    /// running the physical `force_batch` — the "ack despite a failed
    /// force" bug PR 5's obligation rule exists to prevent. Caught by
    /// `ack-after-force` (the acks have no covering `Force` events).
    SkipForce,
    /// A group-commit flush runs the durable round but the obligation
    /// acks never leave the server — obligations silently leak and the
    /// clients' forces hang forever. Caught by `obligation-safety`.
    LostAck,
    /// Recovery reopens the store with a blank NVRAM device, losing the
    /// durable tail that had not reached the on-disk stream. Caught by
    /// `recovery-consistency`.
    Amnesia,
}

impl Mutation {
    /// Parse a CLI name.
    ///
    /// # Errors
    /// Names the unknown mutation.
    pub fn parse(name: &str) -> Result<Mutation, String> {
        match name {
            "none" => Ok(Mutation::None),
            "early-ack" => Ok(Mutation::EarlyAck),
            "skip-force" => Ok(Mutation::SkipForce),
            "lost-ack" => Ok(Mutation::LostAck),
            "amnesia" => Ok(Mutation::Amnesia),
            other => Err(format!(
                "unknown mutation `{other}` (known: none, early-ack, skip-force, lost-ack, amnesia)"
            )),
        }
    }
}

/// One atomic transition of the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Route bag slot `slot` to its destination (removing it).
    Deliver {
        /// Index into the in-flight packet bag.
        slot: usize,
    },
    /// Remove bag slot `slot` without delivering it.
    Drop {
        /// Index into the in-flight packet bag.
        slot: usize,
    },
    /// Route a **copy** of bag slot `slot`, keeping the original in
    /// flight (bounded by the duplication budget).
    Duplicate {
        /// Index into the in-flight packet bag.
        slot: usize,
    },
    /// Run client `client`'s next scripted op.
    ClientStep {
        /// Zero-based client index.
        client: usize,
    },
    /// Client `client`'s retransmit timer fires: re-send each lagging
    /// server its unacked suffix as a `ForceLog` (bounded by the
    /// retransmit budget).
    Retransmit {
        /// Zero-based client index.
        client: usize,
    },
    /// Server `server`'s group-commit window expires: flush pending
    /// force obligations in one physical round.
    FlushForces {
        /// Server id (1-based).
        server: u64,
    },
    /// Crash server `server`: volatile state (sessions, unacked
    /// counters, pending obligations) is lost; NVRAM and the on-disk
    /// stream survive. In-flight packets to it stay in the bag and are
    /// only deliverable again after recovery.
    Crash {
        /// Server id (1-based).
        server: u64,
    },
    /// Recover a crashed server: reopen the store (checkpoint load,
    /// tail scan, NVRAM replay) and resume serving.
    Recover {
        /// Server id (1-based).
        server: u64,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Deliver { slot } => write!(f, "deliver:{slot}"),
            Action::Drop { slot } => write!(f, "drop:{slot}"),
            Action::Duplicate { slot } => write!(f, "dup:{slot}"),
            Action::ClientStep { client } => write!(f, "step:{client}"),
            Action::Retransmit { client } => write!(f, "rexmit:{client}"),
            Action::FlushForces { server } => write!(f, "flush:{server}"),
            Action::Crash { server } => write!(f, "crash:{server}"),
            Action::Recover { server } => write!(f, "recover:{server}"),
        }
    }
}

impl FromStr for Action {
    type Err = String;

    fn from_str(s: &str) -> Result<Action, String> {
        let Some((kind, arg)) = s.split_once(':') else {
            return Err(format!("malformed action `{s}` (want kind:arg)"));
        };
        let n: u64 = arg
            .parse()
            .map_err(|_| format!("malformed action arg in `{s}`"))?;
        let slot = n as usize;
        match kind {
            "deliver" => Ok(Action::Deliver { slot }),
            "drop" => Ok(Action::Drop { slot }),
            "dup" => Ok(Action::Duplicate { slot }),
            "step" => Ok(Action::ClientStep { client: slot }),
            "rexmit" => Ok(Action::Retransmit { client: slot }),
            "flush" => Ok(Action::FlushForces { server: n }),
            "crash" => Ok(Action::Crash { server: n }),
            "recover" => Ok(Action::Recover { server: n }),
            other => Err(format!("unknown action kind `{other}` in `{s}`")),
        }
    }
}

/// Model configuration: the shape of the explored system.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Number of log servers (ids `1..=servers`).
    pub servers: u64,
    /// Shard event loops per server. With more than one, every packet a
    /// server receives is routed to the shard its logical log hashes to
    /// (the same pure `LogId::shard` the real dispatcher uses), each
    /// shard owns a private store and obligation table, and the
    /// `router-stability` invariant checks that a client's records only
    /// ever land on that client's shard.
    pub shards: u64,
    /// Number of model clients.
    pub clients: u64,
    /// Each client's scripted workload.
    pub script: Vec<ClientOp>,
    /// The δ window: a client may have at most this many records
    /// written but not yet known replicated on `need_n` servers.
    pub delta: u64,
    /// How many servers must cumulatively ack a record before the
    /// client deems it replicated (the paper's N).
    pub need_n: usize,
    /// `coalesce_max_batch` for every server. Coalescing is always on
    /// in the model (window = 1 hour), so a force ack happens only via
    /// an explicit [`Action::FlushForces`] or the batch cap — making
    /// group-commit timing part of the explored nondeterminism.
    pub coalesce_max_batch: usize,
    /// Crash budget: total `Crash` actions allowed along one path.
    pub max_crashes: u32,
    /// Duplication budget: total `Duplicate` actions along one path.
    pub max_dups: u32,
    /// Retransmit budget per client along one path.
    pub max_rexmits: u32,
    /// Record payload length in bytes.
    pub payload_len: usize,
    /// Seeded bug, if any.
    pub mutation: Mutation,
}

impl Default for McConfig {
    fn default() -> McConfig {
        McConfig {
            servers: 2,
            shards: 1,
            clients: 1,
            script: vec![ClientOp::Write, ClientOp::Force],
            delta: 2,
            need_n: 2,
            coalesce_max_batch: 2,
            max_crashes: 1,
            max_dups: 1,
            max_rexmits: 1,
            payload_len: 8,
            mutation: Mutation::None,
        }
    }
}

impl McConfig {
    /// Parse a script string: `w` = write, `f` = force.
    ///
    /// # Errors
    /// Names the offending character.
    pub fn parse_script(s: &str) -> Result<Vec<ClientOp>, String> {
        s.chars()
            .map(|c| match c {
                'w' | 'W' => Ok(ClientOp::Write),
                'f' | 'F' => Ok(ClientOp::Force),
                other => Err(format!("unknown script op `{other}` (want w/f)")),
            })
            .collect()
    }
}

/// A violated invariant, with enough detail to act on.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable invariant identifier (`ack-after-force`,
    /// `ack-monotonicity`, `readback-atomicity`, `durable-prefix`,
    /// `delta-window`, `obligation-safety`, `obligation-cap`,
    /// `recovery-consistency`, `router-stability`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// The deterministic record payload: ground truth for every byte-level
/// read-back check. Collision-free enough across the tiny (client, lsn)
/// spaces a bounded exploration reaches.
#[must_use]
pub fn mc_payload(client: u64, lsn: u64, len: usize) -> Vec<u8> {
    let tag = (client.rotate_left(17) ^ lsn.rotate_left(8) ^ lsn) % 251;
    let mut out = vec![tag as u8; len.max(2)];
    if let Some(first) = out.first_mut() {
        *first = (lsn % 127) as u8;
    }
    out
}

/// An in-flight packet.
#[derive(Clone)]
struct Envelope {
    from: NodeAddr,
    to: NodeAddr,
    pkt: Packet,
}

/// One client's durable holdings on one server: client id, interval
/// list, and every stored record's bytes keyed by LSN.
type ClientImage = (u64, Vec<Interval>, Vec<(u64, Vec<u8>)>);

/// The durable state a server held at the moment it crashed, used both
/// as that server's fingerprint while down and as the expectation
/// recovery is checked against. A process crash takes every shard down
/// at once, so the image is indexed by shard.
struct CrashImage {
    fp: u64,
    state: Vec<Vec<ClientImage>>,
}

/// A steppable sans-I/O client speaking the wire protocol directly.
///
/// `ReplicatedLog` blocks (pump loops, jittered backoff sleeps), so the
/// checker drives this small model client instead: same message shapes,
/// same cumulative-ack bookkeeping, but every step is one transition.
/// The client never crashes in the current model, so it stays in epoch
/// 1 and the §3.1.2 present-flag masking path stays quiet.
struct ModelClient {
    id: ClientId,
    addr: NodeAddr,
    epoch: Epoch,
    next_lsn: Lsn,
    pc: usize,
    /// Per-server cumulative acked high LSN (`NewHighLsn` is cumulative:
    /// the tightened first-contact rule in `LogServer::ingest` is what
    /// makes that reading honest).
    acked: BTreeMap<u64, Lsn>,
    /// Highest LSN known replicated on `need_n` servers.
    completed: Lsn,
    rexmits_left: u32,
}

impl ModelClient {
    fn new(index: u64, max_rexmits: u32) -> ModelClient {
        ModelClient {
            id: ClientId(index.saturating_add(1)),
            addr: NodeAddr(CLIENT_ADDR_BASE.saturating_add(index)),
            epoch: Epoch(1),
            next_lsn: Lsn::FIRST,
            pc: 0,
            acked: BTreeMap::new(),
            completed: Lsn::ZERO,
            rexmits_left: max_rexmits,
        }
    }

    /// Highest LSN this client has assigned (0 when none).
    fn written_hi(&self) -> u64 {
        self.next_lsn.0.saturating_sub(1)
    }

    fn outstanding(&self) -> u64 {
        self.written_hi().saturating_sub(self.completed.0)
    }

    fn step_enabled(&self, cfg: &McConfig) -> bool {
        match cfg.script.get(self.pc) {
            None => false,
            Some(ClientOp::Write) => self.outstanding() < cfg.delta,
            Some(ClientOp::Force) => true,
        }
    }

    /// The unacked suffix for server `sid`, as wire records.
    fn suffix_for(&self, sid: u64, payload_len: usize) -> Vec<(Lsn, dlog_types::LogData)> {
        let from = self.acked.get(&sid).copied().unwrap_or(Lsn::ZERO).next();
        let mut records = Vec::new();
        let mut at = from;
        while at.0 <= self.written_hi() {
            records.push((at, mc_payload(self.id.0, at.0, payload_len).into()));
            at = at.next();
        }
        records
    }

    fn recompute_completed(&mut self, need_n: usize) {
        let mut highs: Vec<u64> = self.acked.values().map(|l| l.0).collect();
        highs.sort_unstable_by(|a, b| b.cmp(a));
        self.completed = Lsn(highs.get(need_n.saturating_sub(1)).copied().unwrap_or(0));
    }
}

/// The model checker's world. See the module docs for the shape.
pub struct McWorld {
    cfg: McConfig,
    dir: PathBuf,
    /// Live servers: one `LogServer` per shard, indexed by shard — the
    /// model twin of `ShardSupervisor`'s per-shard event loops.
    servers: BTreeMap<u64, Vec<LogServer>>,
    /// Per-shard observability; handles survive crashes so a shard's
    /// trace spans its whole life, crash markers included.
    obs: BTreeMap<u64, Vec<Obs>>,
    /// Each shard's NVRAM device handle — the durable buffer a crash
    /// must not lose.
    nvrams: BTreeMap<u64, Vec<NvramDevice>>,
    crashed: BTreeMap<u64, CrashImage>,
    bag: Vec<Envelope>,
    clients: Vec<ModelClient>,
    /// Highest ack each (server, client) pair has emitted, checked at
    /// the source for monotonicity.
    last_ack: BTreeMap<(u64, u64), Lsn>,
    dups_left: u32,
    crashes_left: u32,
    /// `ClientWrite` / `PacketSend` / `Crash` / `Recover` for the
    /// counterexample rendering.
    world_obs: Obs,
}

impl McWorld {
    /// Build the root world under `dir` (wiped first).
    ///
    /// # Errors
    /// Propagates scratch-dir and store-open failures as strings.
    pub fn new(cfg: &McConfig, dir: &Path) -> Result<McWorld, String> {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut servers = BTreeMap::new();
        let mut obs = BTreeMap::new();
        let mut nvrams = BTreeMap::new();
        for sid in 1..=cfg.servers {
            let mut shard_servers = Vec::new();
            let mut shard_obs = Vec::new();
            let mut shard_nvrams = Vec::new();
            for k in 0..cfg.shards.max(1) {
                let (server, handle, nvram) = Self::boot(cfg, dir, sid, k, None)?;
                shard_servers.push(server);
                shard_obs.push(handle);
                shard_nvrams.push(nvram);
            }
            servers.insert(sid, shard_servers);
            obs.insert(sid, shard_obs);
            nvrams.insert(sid, shard_nvrams);
        }
        let clients = (0..cfg.clients)
            .map(|i| ModelClient::new(i, cfg.max_rexmits))
            .collect();
        Ok(McWorld {
            dir: dir.to_path_buf(),
            servers,
            obs,
            nvrams,
            crashed: BTreeMap::new(),
            bag: Vec::new(),
            clients,
            last_ack: BTreeMap::new(),
            dups_left: cfg.max_dups,
            crashes_left: cfg.max_crashes,
            world_obs: Obs::new(&ObsOptions::on()),
            cfg: cfg.clone(),
        })
    }

    /// Open (or reopen) shard `shard` of server `sid`. `nvram` is
    /// `None` on first boot and the surviving device on recovery —
    /// except under [`Mutation::Amnesia`], which hands recovery a blank
    /// device.
    fn boot(
        cfg: &McConfig,
        dir: &Path,
        sid: u64,
        shard: u64,
        nvram: Option<NvramDevice>,
    ) -> Result<(LogServer, Obs, NvramDevice), String> {
        let d = if cfg.shards <= 1 {
            dir.join(format!("server-{sid}"))
        } else {
            dir.join(format!("server-{sid}"))
                .join(format!("shard-{shard}"))
        };
        let device = nvram.unwrap_or_else(|| NvramDevice::new(NVRAM_CAP));
        let opts = dlog_storage::StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..dlog_storage::StoreOptions::default()
        };
        let store = dlog_storage::LogStore::open(&d, opts, device.clone())
            .map_err(|e| format!("open store {sid}: {e}"))?;
        let gens = dlog_server::gen::GenStore::open(d.join("gens"))
            .map_err(|e| format!("open gens {sid}: {e}"))?;
        let mut config = dlog_server::ServerConfig::new(ServerId(sid)).for_shard(shard, cfg.shards);
        // Force acks must never happen behind the model's back: lazy
        // acks off, and a coalescing window no transition can outwait —
        // flushing happens only via FlushForces or the batch cap.
        config.ack_every = 0;
        config.coalesce_window = Duration::from_secs(3600);
        config.coalesce_max_batch = cfg.coalesce_max_batch;
        let mut server = dlog_server::LogServer::new(config, store, gens)
            .map_err(|e| format!("boot server {sid}: {e}"))?;
        let handle = Obs::new(&ObsOptions::on());
        server.set_obs(handle.clone());
        Ok((server, handle, device))
    }

    /// The model configuration this world runs.
    #[must_use]
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// Number of packets currently in flight.
    #[must_use]
    pub fn bag_len(&self) -> usize {
        self.bag.len()
    }

    /// The world-level observability handle (`ClientWrite`,
    /// `PacketSend`, `Crash`, `Recover`).
    #[must_use]
    pub fn world_obs(&self) -> &Obs {
        &self.world_obs
    }

    /// Per-shard observability handles (alive or crashed), in (server,
    /// shard) order; unsharded worlds yield one handle per server.
    #[must_use]
    pub fn server_obs(&self) -> Vec<(u64, Obs)> {
        self.obs
            .iter()
            .flat_map(|(sid, handles)| handles.iter().map(|o| (*sid, o.clone())))
            .collect()
    }

    /// The shard client `client`'s logical log hashes to — the same
    /// pure function the real dispatcher applies to the wire packet.
    fn client_shard(&self, client: ClientId) -> usize {
        LogId::for_client(client).shard(self.cfg.shards as usize)
    }

    /// Every action enabled in this state, in a fixed, deterministic
    /// order. The explorer branches on exactly this list.
    #[must_use]
    pub fn enabled_actions(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            if c.step_enabled(&self.cfg) {
                out.push(Action::ClientStep { client: i });
            }
        }
        for (i, c) in self.clients.iter().enumerate() {
            let lagging = (1..=self.cfg.servers)
                .any(|sid| c.acked.get(&sid).copied().unwrap_or(Lsn::ZERO).0 < c.written_hi());
            if c.rexmits_left > 0 && c.written_hi() > 0 && lagging {
                out.push(Action::Retransmit { client: i });
            }
        }
        for (sid, shards) in &self.servers {
            if shards.iter().any(LogServer::has_pending_forces) {
                out.push(Action::FlushForces { server: *sid });
            }
        }
        if self.crashes_left > 0 {
            for sid in self.servers.keys() {
                out.push(Action::Crash { server: *sid });
            }
        }
        for sid in self.crashed.keys() {
            out.push(Action::Recover { server: *sid });
        }
        for (slot, env) in self.bag.iter().enumerate() {
            let to_crashed = self.crashed.contains_key(&env.to.0);
            if !to_crashed {
                out.push(Action::Deliver { slot });
            }
            out.push(Action::Drop { slot });
            if !to_crashed && self.dups_left > 0 {
                out.push(Action::Duplicate { slot });
            }
        }
        out
    }

    fn bag_push(&mut self, from: NodeAddr, to: NodeAddr, pkt: Packet) {
        self.world_obs
            .event(Stage::PacketSend, pkt.lsn_hint(), to.0);
        self.bag.push(Envelope { from, to, pkt });
    }

    /// Route server output into the bag, checking ack monotonicity at
    /// the source.
    fn emit_server_output(&mut self, sid: u64, out: Vec<(NodeAddr, Packet)>) -> Option<Violation> {
        for (to, pkt) in out {
            if let Message::NewHighLsn { client, lsn } = &pkt.msg {
                let key = (sid, client.0);
                let prev = self.last_ack.get(&key).copied().unwrap_or(Lsn::ZERO);
                if *lsn < prev {
                    return Some(Violation {
                        invariant: "ack-monotonicity",
                        detail: format!(
                            "server {sid} acked {lsn:?} for client {} after {prev:?}",
                            client.0
                        ),
                    });
                }
                self.last_ack.insert(key, *lsn);
            }
            self.bag_push(NodeAddr(sid), to, pkt);
        }
        None
    }

    /// Deliver one envelope to its destination (used by both `Deliver`
    /// and `Duplicate`).
    fn route(&mut self, env: Envelope) -> Result<Option<Violation>, String> {
        let to = env.to.0;
        if to >= 1 && to <= self.cfg.servers {
            if self.crashed.contains_key(&to) {
                return Err(format!("deliver to crashed server {to}"));
            }
            // The dispatcher's routing decision: hash the packet's
            // logical log to a shard. Packets with no route key (none
            // occur in the modelled workload, but keep the dispatcher's
            // semantics) are broadcast to every shard.
            let shard = env
                .pkt
                .route_key()
                .map(|l| l.shard(self.cfg.shards as usize));
            let Some(shards) = self.servers.get_mut(&to) else {
                return Err(format!("no server {to}"));
            };
            let out = match shard {
                Some(k) => {
                    let Some(server) = shards.get_mut(k) else {
                        return Err(format!("no shard {k} on server {to}"));
                    };
                    server.handle(env.from, &env.pkt)
                }
                None => {
                    let mut all = Vec::new();
                    for server in shards.iter_mut() {
                        all.extend(server.handle(env.from, &env.pkt));
                    }
                    all
                }
            };
            // Seeded bug: fabricate the force ack the moment the
            // ForceLog arrives, before any durability round.
            let fabricated = if self.cfg.mutation == Mutation::EarlyAck {
                if let Message::ForceLog { client, .. } = &env.pkt.msg {
                    self.fabricate_ack(to, *client, env.from)
                } else {
                    Vec::new()
                }
            } else {
                Vec::new()
            };
            if let Some(v) = self.emit_server_output(to, out) {
                return Ok(Some(v));
            }
            for (ato, apkt) in fabricated {
                self.bag_push(NodeAddr(to), ato, apkt);
            }
            return Ok(None);
        }
        // Client-bound: the sender's server id is the envelope source.
        let sid = env.from.0;
        let Some(ci) = self.clients.iter().position(|c| c.addr == env.to) else {
            return Err(format!("no endpoint at {:?}", env.to));
        };
        match &env.pkt.msg {
            Message::NewHighLsn { client, lsn } => {
                let matches = self.clients.get(ci).is_some_and(|c| c.id == *client);
                if matches {
                    self.deliver_ack(sid, *client, *lsn);
                }
            }
            Message::MissingInterval { client, lo, .. } => {
                // §4.2 prompt NAK: the server names the first gap it
                // sees and refuses everything after it, so the suffix
                // from the gap's low edge is exactly what it misses.
                // The model client still holds every record (bounded
                // scripts never trim the window), so it resends the
                // whole suffix as a force — the real client's NAK path.
                let resend = {
                    let Some(c) = self.clients.get(ci) else {
                        return Err(format!("no client at {:?}", env.to));
                    };
                    if c.id != *client {
                        None
                    } else {
                        let mut records = Vec::new();
                        let mut at = *lo;
                        while at.0 <= c.written_hi() {
                            records
                                .push((at, mc_payload(c.id.0, at.0, self.cfg.payload_len).into()));
                            at = at.next();
                        }
                        if records.is_empty() {
                            None
                        } else {
                            Some((
                                c.addr,
                                Packet::bare(Message::ForceLog {
                                    client: c.id,
                                    epoch: c.epoch,
                                    records,
                                }),
                            ))
                        }
                    }
                };
                if let Some((from, pkt)) = resend {
                    self.bag_push(from, env.from, pkt);
                }
            }
            _ => {}
        }
        Ok(None)
    }

    /// A buggy server's fabricated forced ack: the trace event carries
    /// the forced bit, so the `ack-after-force` checker sees exactly
    /// what a real premature ack would emit.
    fn fabricate_ack(
        &mut self,
        sid: u64,
        client: ClientId,
        reply_to: NodeAddr,
    ) -> Vec<(NodeAddr, Packet)> {
        let k = self.client_shard(client);
        let hi = self
            .servers
            .get_mut(&sid)
            .and_then(|v| v.get_mut(k))
            .and_then(|s| s.store_mut().last_interval(client))
            .map(|iv| iv.hi);
        let Some(hi) = hi else { return Vec::new() };
        if let Some(obs) = self.obs.get(&sid).and_then(|v| v.get(k)) {
            obs.event(Stage::AckHighLsn, hi.0, (client.0 << 1) | 1);
        }
        self.last_ack.insert((sid, client.0), hi);
        vec![(
            reply_to,
            Packet::bare(Message::NewHighLsn { client, lsn: hi }),
        )]
    }

    /// Apply one action. `Ok(None)` = clean transition; `Ok(Some(v))` =
    /// an invariant broke; `Err` = the action is not applicable in this
    /// state (malformed or stale trace).
    ///
    /// # Errors
    /// Invalid actions and I/O failures, as strings.
    pub fn apply(&mut self, action: Action) -> Result<Option<Violation>, String> {
        if let Some(v) = self.apply_inner(action)? {
            return Ok(Some(v));
        }
        Ok(self.check_invariants())
    }

    /// Apply one action skipping the global invariant scan. The inline,
    /// path-dependent checks (ack monotonicity at emission, obligation
    /// safety at flush, recovery consistency at recover) still run.
    ///
    /// Replay restoration uses this for prefixes that were already
    /// verified clean when first explored — transitions are
    /// deterministic, so re-scanning them would find nothing new and
    /// costs the bulk of a replay.
    ///
    /// # Errors
    /// Same contract as [`McWorld::apply`].
    pub fn apply_unchecked(&mut self, action: Action) -> Result<Option<Violation>, String> {
        self.apply_inner(action)
    }

    fn apply_inner(&mut self, action: Action) -> Result<Option<Violation>, String> {
        match action {
            Action::ClientStep { client } => self.do_client_step(client),
            Action::Retransmit { client } => self.do_retransmit(client),
            Action::Deliver { slot } => {
                if slot >= self.bag.len() {
                    return Err(format!("deliver: no bag slot {slot}"));
                }
                let env = self.bag.remove(slot);
                self.route(env)
            }
            Action::Drop { slot } => {
                if slot >= self.bag.len() {
                    return Err(format!("drop: no bag slot {slot}"));
                }
                self.bag.remove(slot);
                Ok(None)
            }
            Action::Duplicate { slot } => {
                if self.dups_left == 0 {
                    return Err("duplicate budget exhausted".to_string());
                }
                let Some(env) = self.bag.get(slot).cloned() else {
                    return Err(format!("dup: no bag slot {slot}"));
                };
                self.dups_left -= 1;
                self.route(env)
            }
            Action::FlushForces { server } => self.do_flush(server),
            Action::Crash { server } => self.do_crash(server),
            Action::Recover { server } => self.do_recover(server),
        }
    }

    fn do_client_step(&mut self, ci: usize) -> Result<Option<Violation>, String> {
        let (id, addr, epoch, op) = {
            let Some(c) = self.clients.get(ci) else {
                return Err(format!("no client {ci}"));
            };
            if !c.step_enabled(&self.cfg) {
                return Err(format!("client {ci} step not enabled"));
            }
            let Some(op) = self.cfg.script.get(c.pc).copied() else {
                return Err(format!("client {ci} script exhausted"));
            };
            (c.id, c.addr, c.epoch, op)
        };
        match op {
            ClientOp::Write => {
                let lsn = {
                    let Some(c) = self.clients.get_mut(ci) else {
                        return Err(format!("no client {ci}"));
                    };
                    let lsn = c.next_lsn;
                    c.next_lsn = c.next_lsn.next();
                    c.pc = c.pc.saturating_add(1);
                    lsn
                };
                let data = mc_payload(id.0, lsn.0, self.cfg.payload_len);
                self.world_obs
                    .event(Stage::ClientWrite, lsn.0, data.len() as u64);
                for sid in 1..=self.cfg.servers {
                    let pkt = Packet::bare(Message::WriteLog {
                        client: id,
                        epoch,
                        records: vec![(lsn, data.clone().into())],
                    });
                    self.bag_push(addr, NodeAddr(sid), pkt);
                }
            }
            ClientOp::Force => {
                let suffixes: Vec<(u64, Vec<(Lsn, dlog_types::LogData)>)> = {
                    let Some(c) = self.clients.get_mut(ci) else {
                        return Err(format!("no client {ci}"));
                    };
                    c.pc = c.pc.saturating_add(1);
                    (1..=self.cfg.servers)
                        .map(|sid| (sid, c.suffix_for(sid, self.cfg.payload_len)))
                        .collect()
                };
                for (sid, records) in suffixes {
                    let pkt = Packet::bare(Message::ForceLog {
                        client: id,
                        epoch,
                        records,
                    });
                    self.bag_push(addr, NodeAddr(sid), pkt);
                }
            }
        }
        Ok(None)
    }

    fn do_retransmit(&mut self, ci: usize) -> Result<Option<Violation>, String> {
        let (id, addr, epoch, suffixes) = {
            let Some(c) = self.clients.get_mut(ci) else {
                return Err(format!("no client {ci}"));
            };
            if c.rexmits_left == 0 {
                return Err(format!("client {ci} retransmit budget exhausted"));
            }
            c.rexmits_left -= 1;
            let suffixes: Vec<(u64, Vec<(Lsn, dlog_types::LogData)>)> = (1..=self.cfg.servers)
                .filter(|sid| c.acked.get(sid).copied().unwrap_or(Lsn::ZERO).0 < c.written_hi())
                .map(|sid| (sid, c.suffix_for(sid, self.cfg.payload_len)))
                .collect();
            (c.id, c.addr, c.epoch, suffixes)
        };
        for (sid, records) in suffixes {
            if records.is_empty() {
                continue;
            }
            let pkt = Packet::bare(Message::ForceLog {
                client: id,
                epoch,
                records,
            });
            self.bag_push(addr, NodeAddr(sid), pkt);
        }
        Ok(None)
    }

    fn do_flush(&mut self, sid: u64) -> Result<Option<Violation>, String> {
        // The real supervisor's window expiry drains every shard whose
        // window is due; model the expiry as one action that flushes
        // each shard with pending obligations.
        let pending: Vec<(usize, Vec<ClientId>)> = {
            let Some(shards) = self.servers.get(&sid) else {
                return Err(format!("flush: server {sid} not live"));
            };
            let p: Vec<(usize, Vec<ClientId>)> = shards
                .iter()
                .enumerate()
                .filter(|(_, s)| s.has_pending_forces())
                .map(|(k, s)| (k, s.coalescing_obligations()))
                .collect();
            if p.is_empty() {
                return Err(format!("flush: server {sid} has no pending forces"));
            }
            p
        };
        for (k, obligations) in pending {
            if self.cfg.mutation == Mutation::SkipForce {
                // Seeded bug: ack every obligation without the physical
                // force round (as if a failed `force_batch` were ignored).
                // Obligations stay queued server-side; the violation is
                // already detectable from the fabricated acks.
                let mut fabricated = Vec::new();
                for client in obligations {
                    fabricated.extend(self.fabricate_ack(sid, client, NodeAddr(CLIENT_ADDR_BASE)));
                }
                for (to, pkt) in fabricated {
                    self.bag_push(NodeAddr(sid), to, pkt);
                }
                continue;
            }
            let out = {
                let Some(server) = self.servers.get_mut(&sid).and_then(|v| v.get_mut(k)) else {
                    return Err(format!("flush: server {sid} not live"));
                };
                server.flush_pending_forces()
            };
            if self.cfg.mutation == Mutation::LostAck {
                // Seeded bug: the durable round ran but every obligation
                // ack is dropped on the floor — the obligations leak.
                if let Some(v) = self.obligation_check(sid, k, &obligations, &[]) {
                    return Ok(Some(v));
                }
                continue;
            }
            let acked: Vec<u64> = out
                .iter()
                .filter_map(|(_, p)| match &p.msg {
                    Message::NewHighLsn { client, .. } => Some(client.0),
                    _ => None,
                })
                .collect();
            if let Some(v) = self.emit_server_output(sid, out) {
                return Ok(Some(v));
            }
            if let Some(v) = self.obligation_check(sid, k, &obligations, &acked) {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Every flushed obligation whose client has stored records must
    /// have produced an ack — a flush that silently discharges an
    /// obligation leaves that client's force hanging forever.
    fn obligation_check(
        &mut self,
        sid: u64,
        shard: usize,
        obligations: &[ClientId],
        acked: &[u64],
    ) -> Option<Violation> {
        for client in obligations {
            let stored = self
                .servers
                .get_mut(&sid)
                .and_then(|v| v.get_mut(shard))
                .and_then(|s| s.store_mut().last_interval(*client))
                .is_some();
            if stored && !acked.contains(&client.0) {
                return Some(Violation {
                    invariant: "obligation-safety",
                    detail: format!(
                        "server {sid}: group-commit obligation for client {} \
                         discharged without an ack",
                        client.0
                    ),
                });
            }
        }
        None
    }

    fn do_crash(&mut self, sid: u64) -> Result<Option<Violation>, String> {
        if self.crashes_left == 0 {
            return Err("crash budget exhausted".to_string());
        }
        if !self.servers.contains_key(&sid) {
            return Err(format!("crash: server {sid} not live"));
        }
        let image = self.durable_image(sid)?;
        let mut last_end = 0;
        if let Some(shards) = self.servers.get_mut(&sid) {
            for (k, server) in shards.iter_mut().enumerate() {
                let stream_end = server.store_mut().stream_end();
                last_end = stream_end;
                if let Some(obs) = self.obs.get(&sid).and_then(|v| v.get(k)) {
                    obs.event(Stage::Crash, stream_end, sid);
                }
            }
        }
        self.world_obs.event(Stage::Crash, last_end, sid);
        self.servers.remove(&sid);
        self.crashed.insert(sid, image);
        self.crashes_left -= 1;
        Ok(None)
    }

    fn do_recover(&mut self, sid: u64) -> Result<Option<Violation>, String> {
        if !self.crashed.contains_key(&sid) {
            return Err(format!("recover: server {sid} not crashed"));
        }
        let dir = self.dir.clone();
        let mut shard_servers = Vec::new();
        let mut last_end = 0;
        for k in 0..self.cfg.shards.max(1) {
            let device = if self.cfg.mutation == Mutation::Amnesia {
                // Seeded bug: recovery forgets the NVRAM tail.
                NvramDevice::new(NVRAM_CAP)
            } else {
                let Some(d) = self.nvrams.get(&sid).and_then(|v| v.get(k as usize)) else {
                    return Err(format!("recover: no NVRAM handle for {sid}/{k}"));
                };
                d.clone()
            };
            let (mut server, _fresh_obs, _device) =
                Self::boot(&self.cfg, &dir, sid, k, Some(device))?;
            if let Some(handle) = self.obs.get(&sid).and_then(|v| v.get(k as usize)) {
                // Same handle as before the crash: the shard's trace
                // spans its whole life, with the Crash/Recover markers
                // inline.
                server.set_obs(handle.clone());
            }
            let stream_end = server.store_mut().stream_end();
            last_end = stream_end;
            if let Some(obs) = self.obs.get(&sid).and_then(|v| v.get(k as usize)) {
                obs.event(Stage::Recover, stream_end, sid);
            }
            shard_servers.push(server);
        }
        self.world_obs.event(Stage::Recover, last_end, sid);
        self.servers.insert(sid, shard_servers);
        let Some(image) = self.crashed.remove(&sid) else {
            return Err(format!("recover: lost crash image for {sid}"));
        };
        Ok(self.recovery_check(sid, &image))
    }

    /// Recovery must reproduce exactly the durable state the crash
    /// preserved: same interval lists, byte-identical records ("crash
    /// truncates to the durable index; replay reaches a consistent
    /// prefix").
    fn recovery_check(&mut self, sid: u64, image: &CrashImage) -> Option<Violation> {
        for (k, shard_state) in image.state.iter().enumerate() {
            for (client_id, intervals, records) in shard_state {
                let client = ClientId(*client_id);
                let Some(server) = self.servers.get_mut(&sid).and_then(|v| v.get_mut(k)) else {
                    return Some(Violation {
                        invariant: "recovery-consistency",
                        detail: format!("server {sid} shard {k} vanished during recovery check"),
                    });
                };
                let got = server.store_mut().interval_list(client);
                if got.intervals() != intervals.as_slice() {
                    return Some(Violation {
                        invariant: "recovery-consistency",
                        detail: format!(
                            "server {sid} shard {k} client {client_id}: intervals {:?} after \
                             recovery, expected {:?}",
                            got.intervals(),
                            intervals
                        ),
                    });
                }
                for (lsn, bytes) in records {
                    let rec = server.store_mut().read(client, Lsn(*lsn)).ok().flatten();
                    let ok = rec
                        .as_ref()
                        .is_some_and(|r| r.present && r.data.as_bytes() == bytes.as_slice());
                    if !ok {
                        return Some(Violation {
                            invariant: "recovery-consistency",
                            detail: format!(
                                "server {sid} shard {k} client {client_id} lsn {lsn}: durable \
                                 record lost or corrupted by recovery"
                            ),
                        });
                    }
                }
            }
        }
        None
    }

    /// Snapshot server `sid`'s durable contents across every shard
    /// (used at crash time).
    fn durable_image(&mut self, sid: u64) -> Result<CrashImage, String> {
        let Some(shards) = self.servers.get_mut(&sid) else {
            return Err(format!("no server {sid}"));
        };
        let mut state = Vec::new();
        let mut h = Fnv::new();
        for server in shards.iter_mut() {
            let store = server.store_mut();
            let mut clients = store.clients();
            clients.sort_unstable();
            let mut shard_state = Vec::new();
            for client in clients {
                let intervals: Vec<Interval> = store.interval_list(client).intervals().to_vec();
                let mut records = Vec::new();
                for iv in &intervals {
                    let mut at = iv.lo;
                    while at <= iv.hi {
                        if let Ok(Some(rec)) = store.read(client, at) {
                            records.push((at.0, rec.data.as_bytes().to_vec()));
                        }
                        at = at.next();
                    }
                }
                shard_state.push((client.0, intervals, records));
            }
            hash_image(&mut h, &shard_state);
            state.push(shard_state);
        }
        Ok(CrashImage {
            fp: h.finish(),
            state,
        })
    }

    /// The global invariants checked after every transition. Returns
    /// the first violation found.
    fn check_invariants(&mut self) -> Option<Violation> {
        // 1. ack-after-force, per shard trace (the runtime twin of the
        //    lint rule; forced acks carry bit 0 of the detail word).
        for (sid, handles) in &self.obs {
            for (k, obs) in handles.iter().enumerate() {
                let Some(snap) = obs.snapshot() else { continue };
                if let Err(e) = check_force_before_ack(&snap.trace) {
                    return Some(Violation {
                        invariant: "ack-after-force",
                        detail: format!("server {sid} shard {k}: {e}"),
                    });
                }
            }
        }
        // 2. WriteLog atomicity / byte-identical read-back: everything
        //    a live server stores must match what the client wrote.
        let live: Vec<u64> = self.servers.keys().copied().collect();
        for sid in live {
            if let Some(v) = self.readback_check(sid) {
                return Some(v);
            }
        }
        // 3. δ-window and durable-prefix, per client.
        for ci in 0..self.clients.len() {
            if let Some(v) = self.client_checks(ci) {
                return Some(v);
            }
        }
        // 4. Obligation cap: no shard's batch outgrows its configured
        //    bound (the cap triggers an inline flush).
        for (sid, shards) in &self.servers {
            for (k, server) in shards.iter().enumerate() {
                let n = server.coalescing_obligations().len();
                if n > self.cfg.coalesce_max_batch {
                    return Some(Violation {
                        invariant: "obligation-cap",
                        detail: format!(
                            "server {sid} shard {k}: {n} pending obligations exceed the \
                             batch cap {}",
                            self.cfg.coalesce_max_batch
                        ),
                    });
                }
            }
        }
        None
    }

    fn readback_check(&mut self, sid: u64) -> Option<Violation> {
        let shard_count = self.cfg.shards as usize;
        let shards = self.servers.get_mut(&sid)?;
        for (k, server) in shards.iter_mut().enumerate() {
            let store = server.store_mut();
            let mut clients = store.clients();
            clients.sort_unstable();
            for client in clients {
                // router-stability: every record a shard holds must be
                // for a logical log that hashes to that shard. Routing
                // is a pure function of the log id, so the same client
                // can never land on two shards — which is exactly what
                // makes "same-LogId ops never reorder across shards"
                // hold: one log, one shard, one ordered event loop.
                let want_shard = LogId::for_client(client).shard(shard_count);
                if want_shard != k {
                    return Some(Violation {
                        invariant: "router-stability",
                        detail: format!(
                            "server {sid}: client {}'s records landed on shard {k}, but its \
                             logical log hashes to shard {want_shard}",
                            client.0
                        ),
                    });
                }
                let intervals: Vec<Interval> = store.interval_list(client).intervals().to_vec();
                for iv in &intervals {
                    let mut at = iv.lo;
                    while at <= iv.hi {
                        let rec = store.read(client, at).ok().flatten();
                        let want = mc_payload(client.0, at.0, self.cfg.payload_len);
                        let ok = rec
                            .as_ref()
                            .is_some_and(|r| r.present && r.data.as_bytes() == want.as_slice());
                        if !ok {
                            return Some(Violation {
                                invariant: "readback-atomicity",
                                detail: format!(
                                    "server {sid} shard {k} client {} lsn {}: stored record \
                                     missing or not byte-identical to the write",
                                    client.0, at.0
                                ),
                            });
                        }
                        at = at.next();
                    }
                }
            }
        }
        None
    }

    fn client_checks(&mut self, ci: usize) -> Option<Violation> {
        let (id, completed, outstanding, written_hi) = {
            let c = self.clients.get(ci)?;
            (c.id, c.completed, c.outstanding(), c.written_hi())
        };
        if outstanding > self.cfg.delta {
            return Some(Violation {
                invariant: "delta-window",
                detail: format!(
                    "client {}: {outstanding} records outstanding exceeds δ = {}",
                    id.0, self.cfg.delta
                ),
            });
        }
        if completed.0 > written_hi {
            return Some(Violation {
                invariant: "durable-prefix",
                detail: format!(
                    "client {}: completion {completed:?} beyond highest write {written_hi} \
                     (a server overstated its cumulative ack)",
                    id.0
                ),
            });
        }
        // Every record the client deems replicated must be durably held
        // by at least need_n servers — counting crashed servers'
        // preserved durable state (they will recover with it).
        let mut at = Lsn::FIRST;
        while at <= completed {
            let mut holders = 0usize;
            for sid in 1..=self.cfg.servers {
                let holds = if let Some(image) = self.crashed.get(&sid) {
                    image.state.iter().flatten().any(|(cid, intervals, _)| {
                        *cid == id.0 && intervals.iter().any(|iv| iv.contains(at))
                    })
                } else if let Some(shards) = self.servers.get_mut(&sid) {
                    shards.iter_mut().any(|server| {
                        server
                            .store_mut()
                            .interval_list(id)
                            .intervals()
                            .iter()
                            .any(|iv| iv.contains(at))
                    })
                } else {
                    false
                };
                if holds {
                    holders = holders.saturating_add(1);
                }
            }
            if holders < self.cfg.need_n {
                return Some(Violation {
                    invariant: "durable-prefix",
                    detail: format!(
                        "client {}: lsn {} is inside the completed prefix ({:?}) but only \
                         {holders} of the required {} servers hold it durably",
                        id.0, at.0, completed, self.cfg.need_n
                    ),
                });
            }
            at = at.next();
        }
        None
    }

    /// The canonical state fingerprint: a 64-bit FNV-1a hash over every
    /// behavior-relevant component — per-server durable content (store
    /// bytes + interval lists), volatile protocol state (pending
    /// group-commit obligations, interval grants), the in-flight packet
    /// multiset, each client's window/ack state, and the remaining
    /// fault budgets. Two states with equal fingerprints behave
    /// identically under every action sequence, so the explorer visits
    /// one of them.
    #[must_use]
    pub fn fingerprint(&mut self) -> u64 {
        let mut h = Fnv::new();
        for sid in 1..=self.cfg.servers {
            if let Some(image) = self.crashed.get(&sid) {
                h.u64(0xdead);
                h.u64(image.fp);
                continue;
            }
            h.u64(0xa11e);
            let shard_count = self.servers.get(&sid).map_or(0, Vec::len);
            h.u64(shard_count as u64);
            for k in 0..shard_count {
                let obligations = self
                    .servers
                    .get(&sid)
                    .and_then(|v| v.get(k))
                    .map(LogServer::coalescing_obligations)
                    .unwrap_or_default();
                let grants = self
                    .servers
                    .get(&sid)
                    .and_then(|v| v.get(k))
                    .map(LogServer::interval_grants)
                    .unwrap_or_default();
                if let Some(server) = self.servers.get_mut(&sid).and_then(|v| v.get_mut(k)) {
                    let store = server.store_mut();
                    let mut clients = store.clients();
                    clients.sort_unstable();
                    h.u64(clients.len() as u64);
                    for client in clients {
                        h.u64(client.0);
                        let intervals: Vec<Interval> =
                            store.interval_list(client).intervals().to_vec();
                        h.u64(intervals.len() as u64);
                        for iv in &intervals {
                            h.u64(iv.epoch.0);
                            h.u64(iv.lo.0);
                            h.u64(iv.hi.0);
                            let mut at = iv.lo;
                            while at <= iv.hi {
                                if let Ok(Some(rec)) = store.read(client, at) {
                                    h.bytes(rec.data.as_bytes());
                                } else {
                                    h.u64(0xbad);
                                }
                                at = at.next();
                            }
                        }
                    }
                }
                h.u64(obligations.len() as u64);
                for c in obligations {
                    h.u64(c.0);
                }
                h.u64(grants.len() as u64);
                for (c, e, l) in grants {
                    h.u64(c.0);
                    h.u64(e.0);
                    h.u64(l.0);
                }
            }
        }
        // The bag as a multiset: delivery order among slots is already
        // the explorer's choice, so two bags with the same contents are
        // the same state.
        let mut encoded: Vec<Vec<u8>> = self
            .bag
            .iter()
            .map(|env| {
                let mut b = Vec::new();
                b.extend_from_slice(&env.from.0.to_le_bytes());
                b.extend_from_slice(&env.to.0.to_le_bytes());
                b.extend_from_slice(&env.pkt.encode());
                b
            })
            .collect();
        encoded.sort_unstable();
        h.u64(encoded.len() as u64);
        for b in &encoded {
            h.bytes(b);
        }
        for c in &self.clients {
            h.u64(c.id.0);
            h.u64(c.epoch.0);
            h.u64(c.next_lsn.0);
            h.u64(c.pc as u64);
            h.u64(c.completed.0);
            h.u64(u64::from(c.rexmits_left));
            h.u64(c.acked.len() as u64);
            for (sid, lsn) in &c.acked {
                h.u64(*sid);
                h.u64(lsn.0);
            }
        }
        h.u64(u64::from(self.dups_left));
        h.u64(u64::from(self.crashes_left));
        h.u64(self.last_ack.len() as u64);
        for ((sid, cid), lsn) in &self.last_ack {
            h.u64(*sid);
            h.u64(*cid);
            h.u64(lsn.0);
        }
        h.finish()
    }

    /// Route an ack to the model client it belongs to. Called by
    /// [`McWorld::route`] via the bag — split out so the borrow checker
    /// can see the disjoint client/server access.
    fn deliver_ack(&mut self, sid: u64, client: ClientId, lsn: Lsn) {
        let need_n = self.cfg.need_n;
        if let Some(c) = self.clients.iter_mut().find(|c| c.id == client) {
            let entry = c.acked.entry(sid).or_insert(Lsn::ZERO);
            if lsn > *entry {
                *entry = lsn;
            }
            c.recompute_completed(need_n);
        }
    }
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.u64(bs.len() as u64);
        for &b in bs {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_image(h: &mut Fnv, state: &[ClientImage]) {
    h.u64(state.len() as u64);
    for (client, intervals, records) in state {
        h.u64(*client);
        h.u64(intervals.len() as u64);
        for iv in intervals {
            h.u64(iv.epoch.0);
            h.u64(iv.lo.0);
            h.u64(iv.hi.0);
        }
        h.u64(records.len() as u64);
        for (lsn, bytes) in records {
            h.u64(*lsn);
            h.bytes(bytes);
        }
    }
}
