//! The synchronous sans-I/O cluster: real `LogServer`s pumped inline on
//! the calling thread, with `FaultPlan`-style loss, duplication, and
//! reordering drawn from a seeded RNG consumed only per send.
//!
//! Threads are the only source of nondeterminism in the full harness,
//! so driving `LogServer::handle` synchronously — under one lock, on
//! the test thread — makes whole runs replay deterministically. Both
//! `tests/trace_determinism.rs` and `tests/group_commit.rs` are built
//! on this world (they used to carry private near-copies of it); the
//! model checker's [`crate::model::McWorld`] replaces the seeded RNG
//! with explicit action enumeration but reuses the same server
//! construction.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_net::wire::{Message, NodeAddr, Packet};
use dlog_net::{Endpoint, FaultPlan};
use dlog_obs::{Obs, ObsOptions, Stage};
use dlog_server::gen::GenStore;
use dlog_server::{LogServer, ServerConfig};
use dlog_storage::{LogStore, NvramDevice, StoreOptions};
use dlog_types::{Lsn, Result, ServerId};

/// How the servers of a [`SyncWorld`] attach observability.
pub enum ObsMode {
    /// Client, servers, and the network share ONE handle, so the
    /// interleaved event stream is totally ordered by the shared
    /// sequence counter — the determinism suite's configuration. The
    /// world itself emits `PacketSend` events on this handle.
    Shared(Obs),
    /// Each server gets its own fresh handle, so per-server invariants
    /// (`check_force_before_ack`, ack monotonicity) can be checked on
    /// each server's own trace — the group-commit suite's
    /// configuration. The world emits no `PacketSend` events.
    PerServer,
}

/// Construction knobs for [`build_world`].
pub struct SyncWorldOptions {
    /// Number of servers; server `i` listens on `NodeAddr(i)` for
    /// `i in 1..=servers`.
    pub servers: u64,
    /// The fault schedule (loss / duplication / reordering).
    pub plan: FaultPlan,
    /// RNG seed for the fault schedule. Callers that need schedule
    /// diversity beyond the plan seed can mix in their own salt.
    pub rng_seed: u64,
    /// Probability of flushing a server's pending group-commit
    /// obligations right after it handles a packet — exercises
    /// partial-batch group commits. Zero disables the roll entirely.
    pub flush_p: f64,
    /// `ServerConfig::coalesce_window` for every server.
    pub coalesce_window: Duration,
    /// `ServerConfig::coalesce_max_batch` for every server.
    pub coalesce_max_batch: usize,
    /// Observability wiring.
    pub obs: ObsMode,
}

impl SyncWorldOptions {
    /// The determinism suite's shape: shared observability, no
    /// coalescing, faults drawn from `plan.seed`.
    #[must_use]
    pub fn shared(servers: u64, plan: FaultPlan, obs: Obs) -> SyncWorldOptions {
        SyncWorldOptions {
            servers,
            rng_seed: plan.seed,
            plan,
            flush_p: 0.0,
            coalesce_window: Duration::ZERO,
            coalesce_max_batch: 64,
            obs: ObsMode::Shared(obs),
        }
    }

    /// The group-commit suite's shape: per-server observability,
    /// coalescing on, seeded flush rolls.
    #[must_use]
    pub fn coalescing(
        servers: u64,
        plan: FaultPlan,
        rng_seed: u64,
        window: Duration,
        max_batch: usize,
        flush_p: f64,
    ) -> SyncWorldOptions {
        SyncWorldOptions {
            servers,
            plan,
            rng_seed,
            flush_p,
            coalesce_window: window,
            coalesce_max_batch: max_batch,
            obs: ObsMode::PerServer,
        }
    }
}

/// The single-threaded cluster: servers are pumped inline on delivery.
pub struct SyncWorld {
    /// Live servers keyed by address.
    pub servers: HashMap<NodeAddr, LogServer>,
    /// Packets awaiting the client's next `recv`.
    pub inbox: VecDeque<(NodeAddr, Packet)>,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Seeded fault-roll RNG, consumed only per send.
    pub rng: StdRng,
    /// Probability of a post-handle flush roll (see
    /// [`SyncWorldOptions::flush_p`]).
    pub flush_p: f64,
    /// Highest forced-ack LSN each server has *generated* (pre-fault):
    /// the ack-monotonicity invariant is checked where acks are born,
    /// before the fault schedule gets a chance to drop or reorder them.
    pub last_ack: HashMap<NodeAddr, Lsn>,
    /// `PacketSend` events are emitted here in [`ObsMode::Shared`].
    world_obs: Option<Obs>,
}

impl SyncWorld {
    /// One send attempt: trace it, check ack monotonicity at the
    /// source, roll the fault schedule, and route every surviving copy.
    /// Server replies are routed recursively (servers only ever reply
    /// toward the client, so depth is bounded).
    pub fn deliver(&mut self, from: NodeAddr, to: NodeAddr, pkt: &Packet) {
        if let Some(obs) = &self.world_obs {
            obs.event(Stage::PacketSend, pkt.lsn_hint(), to.0);
        }
        if self.servers.contains_key(&from) {
            if let Message::NewHighLsn { lsn, .. } = &pkt.msg {
                let prev = self.last_ack.entry(from).or_insert(Lsn::ZERO);
                assert!(
                    *lsn >= *prev,
                    "server {from:?} acked {lsn:?} after {prev:?} (out of order)"
                );
                *prev = *lsn;
            }
        }
        if self.plan.loss > 0.0 && self.rng.gen_bool(self.plan.loss) {
            return;
        }
        let copies = if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            self.route(from, to, pkt.clone());
        }
    }

    fn route(&mut self, from: NodeAddr, to: NodeAddr, pkt: Packet) {
        if self.servers.contains_key(&to) {
            let (replies, flushed) = {
                let Some(server) = self.servers.get_mut(&to) else {
                    return;
                };
                let replies = server.handle(from, &pkt);
                // Order matters for replay determinism: the flush roll
                // is drawn only when obligations are actually pending,
                // exactly as the original group-commit world did.
                let flush = self.flush_p > 0.0
                    && server.has_pending_forces()
                    && self.rng.gen_bool(self.flush_p);
                let flushed = if flush {
                    server.flush_pending_forces()
                } else {
                    Vec::new()
                };
                (replies, flushed)
            };
            for (rto, rpkt) in replies.into_iter().chain(flushed) {
                self.deliver(to, rto, &rpkt);
            }
        } else if self.plan.reorder > 0.0
            && !self.inbox.is_empty()
            && self.rng.gen_bool(self.plan.reorder)
        {
            // Client-bound: occasionally deliver behind the packet that
            // is already queued (reordering).
            let idx = self.inbox.len() - 1;
            self.inbox.insert(idx, (from, pkt));
        } else {
            self.inbox.push_back((from, pkt));
        }
    }

    /// The inbox ran dry while the client is waiting: flush every
    /// server's deferred obligations (the sync-world analogue of the
    /// runner's idle flush). A no-op when coalescing is off.
    pub fn idle_flush(&mut self) {
        let addrs: Vec<NodeAddr> = self.servers.keys().copied().collect();
        for a in addrs {
            let out = self
                .servers
                .get_mut(&a)
                .map(LogServer::flush_pending_forces)
                .unwrap_or_default();
            for (to, pkt) in out {
                self.deliver(a, to, &pkt);
            }
        }
    }
}

/// The client's endpoint over the synchronous world: `send` delivers
/// inline, `recv` never blocks (everything that will ever arrive is
/// already in the inbox), and a dry inbox triggers the idle flush.
pub struct SyncEndpoint {
    addr: NodeAddr,
    world: Arc<Mutex<SyncWorld>>,
}

impl SyncEndpoint {
    /// An endpoint at `addr` over `world`.
    #[must_use]
    pub fn new(addr: NodeAddr, world: Arc<Mutex<SyncWorld>>) -> SyncEndpoint {
        SyncEndpoint { addr, world }
    }
}

impl Endpoint for SyncEndpoint {
    fn local_addr(&self) -> NodeAddr {
        self.addr
    }

    fn send(&self, to: NodeAddr, packet: &Packet) -> io::Result<()> {
        let Ok(mut w) = self.world.lock() else {
            return Err(io::Error::other("sync world lock poisoned"));
        };
        w.deliver(self.addr, to, packet);
        Ok(())
    }

    fn recv(&self, _timeout: Duration) -> io::Result<Option<(NodeAddr, Packet)>> {
        let Ok(mut w) = self.world.lock() else {
            return Err(io::Error::other("sync world lock poisoned"));
        };
        if w.inbox.is_empty() {
            w.idle_flush();
        }
        Ok(w.inbox.pop_front())
    }
}

/// Open one synchronous-world server: store (fsync off — durability is
/// modelled by the NVRAM device, and the sync world never crashes the
/// host), generator state, protocol wrapper.
///
/// # Errors
/// Propagates store/generator open failures.
pub fn open_server(
    dir: &Path,
    id: ServerId,
    coalesce_window: Duration,
    coalesce_max_batch: usize,
    ack_every: u64,
) -> Result<LogServer> {
    let opts = StoreOptions {
        fsync: false,
        checkpoint_every: 0,
        ..StoreOptions::default()
    };
    let store = LogStore::open(dir, opts, NvramDevice::new(1 << 20))?;
    let gens = GenStore::open(dir.join("gens"))?;
    let mut config = ServerConfig::new(id);
    config.coalesce_window = coalesce_window;
    config.coalesce_max_batch = coalesce_max_batch;
    config.ack_every = ack_every;
    LogServer::new(config, store, gens)
}

/// What [`build_world`] hands back: the shared world handle plus each
/// server's observability handle in address order.
pub type BuiltWorld = (Arc<Mutex<SyncWorld>>, Vec<(NodeAddr, Obs)>);

/// Build a [`SyncWorld`] with `opts.servers` servers under `dir`
/// (server `i` stores under `dir/server-i`), returning the shared
/// world handle plus each server's observability handle in address
/// order.
///
/// # Errors
/// Propagates store/generator open failures.
pub fn build_world(dir: &Path, opts: SyncWorldOptions) -> Result<BuiltWorld> {
    let mut servers = HashMap::new();
    let mut observers = Vec::new();
    for id in 1..=opts.servers {
        let d = dir.join(format!("server-{id}"));
        let mut server = open_server(
            &d,
            ServerId(id),
            opts.coalesce_window,
            opts.coalesce_max_batch,
            ServerConfig::new(ServerId(id)).ack_every,
        )?;
        let obs = match &opts.obs {
            ObsMode::Shared(shared) => shared.clone(),
            ObsMode::PerServer => Obs::new(&ObsOptions::on()),
        };
        server.set_obs(obs.clone());
        observers.push((NodeAddr(id), obs));
        servers.insert(NodeAddr(id), server);
    }
    let world_obs = match &opts.obs {
        ObsMode::Shared(shared) => Some(shared.clone()),
        ObsMode::PerServer => None,
    };
    let world = Arc::new(Mutex::new(SyncWorld {
        servers,
        inbox: VecDeque::new(),
        plan: opts.plan,
        rng: StdRng::seed_from_u64(opts.rng_seed),
        flush_p: opts.flush_p,
        last_ack: HashMap::new(),
        world_obs,
    }));
    Ok((world, observers))
}
