//! The two checkpoint placements of §4.3 — "a known location on a
//! reusable disk or ... a write once disk along with the log data stream"
//! — must both survive crashes, and arbitrary disk corruption must never
//! panic recovery (it yields a clean prefix or a clean error).

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dlog_storage::store::{CheckpointPlacement, LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-ckpt-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts(placement: CheckpointPlacement) -> StoreOptions {
    StoreOptions {
        fsync: false,
        checkpoint_every: 1, // checkpoint at every opportunity
        checkpoint_placement: placement,
        track_bytes: 512,
        ..StoreOptions::default()
    }
}

fn fill(store: &mut LogStore, records: u64) {
    for i in 1..=records {
        store
            .write(
                ClientId(1),
                &LogRecord::present(Lsn(i), Epoch(1), vec![i as u8; 80]),
            )
            .unwrap();
    }
}

#[test]
fn in_stream_checkpoints_recover() {
    let dir = tmpdir("instream");
    let nvram = NvramDevice::new(1 << 20);
    {
        let mut store =
            LogStore::open(&dir, opts(CheckpointPlacement::InStream), nvram.clone()).unwrap();
        fill(&mut store, 60);
        assert!(
            store.stats().checkpoints > 0,
            "in-stream checkpoints must fire"
        );
        store.sync().unwrap();
        // No intervals.ckpt file in write-once mode.
        assert!(!dir.join("intervals.ckpt").exists());
    }
    let mut store = LogStore::open(&dir, opts(CheckpointPlacement::InStream), nvram).unwrap();
    for i in 1..=60u64 {
        let r = store.read(ClientId(1), Lsn(i)).unwrap().unwrap();
        assert_eq!(r.data.as_bytes(), vec![i as u8; 80].as_slice(), "lsn {i}");
    }
    let list = store.interval_list(ClientId(1));
    assert_eq!(list.last().unwrap().hi, Lsn(60));
}

#[test]
fn in_stream_checkpoints_interleave_with_copylog() {
    let dir = tmpdir("instream-copy");
    let nvram = NvramDevice::new(1 << 20);
    {
        let mut store =
            LogStore::open(&dir, opts(CheckpointPlacement::InStream), nvram.clone()).unwrap();
        fill(&mut store, 10);
        store
            .stage_copy(
                ClientId(1),
                &LogRecord::present(Lsn(10), Epoch(3), vec![9u8; 10]),
            )
            .unwrap();
        store
            .stage_copy(ClientId(1), &LogRecord::not_present(Lsn(11), Epoch(3)))
            .unwrap();
        store.install_copies(ClientId(1), Epoch(3)).unwrap();
        fill_more(&mut store, 12, 20, Epoch(3));
        store.sync().unwrap();
    }
    let mut store = LogStore::open(&dir, opts(CheckpointPlacement::InStream), nvram).unwrap();
    let r = store.read(ClientId(1), Lsn(10)).unwrap().unwrap();
    assert_eq!(r.epoch, Epoch(3));
    assert!(!store.read(ClientId(1), Lsn(11)).unwrap().unwrap().present);
    assert!(store.read(ClientId(1), Lsn(20)).unwrap().is_some());
}

fn fill_more(store: &mut LogStore, lo: u64, hi: u64, epoch: Epoch) {
    for i in lo..=hi {
        store
            .write(
                ClientId(1),
                &LogRecord::present(Lsn(i), epoch, vec![i as u8; 40]),
            )
            .unwrap();
    }
}

#[test]
fn both_placements_agree_after_recovery() {
    for placement in [CheckpointPlacement::File, CheckpointPlacement::InStream] {
        let dir = tmpdir(&format!("agree-{placement:?}"));
        let nvram = NvramDevice::new(1 << 20);
        {
            let mut store = LogStore::open(&dir, opts(placement), nvram.clone()).unwrap();
            fill(&mut store, 40);
            store.sync().unwrap();
        }
        let mut store = LogStore::open(&dir, opts(placement), nvram).unwrap();
        for i in 1..=40u64 {
            assert!(
                store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
                "{placement:?} lsn {i}"
            );
        }
    }
}

/// Random single-byte corruptions anywhere on disk must never panic the
/// store: recovery yields a working store over some valid prefix, or a
/// clean `Corrupt` error — this is the CRC framing earning its keep.
#[test]
fn random_disk_corruption_never_panics() {
    for seed in 0..20u64 {
        let dir = tmpdir(&format!("fuzz-{seed}"));
        {
            let mut store = LogStore::open(
                &dir,
                opts(CheckpointPlacement::File),
                NvramDevice::new(1 << 20),
            )
            .unwrap();
            fill(&mut store, 30);
            store.sync().unwrap();
        }
        // Corrupt a few random bytes across all files in the directory.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        for _ in 0..4 {
            let f = &files[rng.gen_range(0..files.len())];
            let mut bytes = std::fs::read(f).unwrap();
            if bytes.is_empty() {
                continue;
            }
            let idx = rng.gen_range(0..bytes.len());
            bytes[idx] ^= 1u8 << rng.gen_range(0..8);
            std::fs::write(f, bytes).unwrap();
        }
        // Fresh NVRAM (power loss lost it along with the corruption event).
        match LogStore::open(
            &dir,
            opts(CheckpointPlacement::File),
            NvramDevice::new(1 << 20),
        ) {
            Ok(mut store) => {
                // The guarantee is *no silent wrong data*: every read of
                // an indexed record returns the correct payload, nothing,
                // or a clean corruption error. (A flip underneath an
                // intact checkpoint is latent media damage — detected at
                // read time by the frame CRC; the replication layer's
                // repair restores it from another server.)
                let list = store.interval_list(ClientId(1));
                for iv in list.intervals().to_vec() {
                    for l in iv.lo.0..=iv.hi.0 {
                        match store.read(ClientId(1), Lsn(l)) {
                            Ok(Some(r)) => assert_eq!(
                                r.data.as_bytes(),
                                vec![l as u8; 80].as_slice(),
                                "seed {seed}: record {l} silently corrupted"
                            ),
                            Ok(None) => {}
                            Err(dlog_types::DlogError::Corrupt(_))
                            | Err(dlog_types::DlogError::Io(_)) => {}
                            Err(e) => panic!("seed {seed}: unexpected error for {l}: {e}"),
                        }
                    }
                }
            }
            Err(e) => {
                // A clean error is acceptable (e.g. corrupted segment
                // metadata); a panic is not.
                let _ = e;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
