//! Crash-consistency property tests for the log-server store.
//!
//! Random workloads of writes, forces, track flushes, and simulated
//! crashes (drop the store, keep the NVRAM device) must never lose a
//! record that was accepted by `write` — the store's durability point is
//! the NVRAM insert (§4.1).

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use dlog_storage::store::{Durability, LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

#[derive(Clone, Debug)]
enum Op {
    /// Write the next record for client (0..3).
    Write {
        client: u8,
        len: u16,
    },
    Force {
        client: u8,
    },
    Flush,
    Crash,
    Checkpoint,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (0u8..3, 1u16..300).prop_map(|(client, len)| Op::Write { client, len }),
            2 => (0u8..3).prop_map(|client| Op::Force { client }),
            1 => Just(Op::Flush),
            1 => Just(Op::Crash),
            1 => Just(Op::Checkpoint),
        ],
        1..120,
    )
}

fn tmpdir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-crash-props")
        .join(format!("case-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn opts() -> StoreOptions {
    StoreOptions {
        track_bytes: 700,
        segment_bytes: 4096,
        fsync: false,
        durability: Durability::Nvram,
        checkpoint_every: 0,
        ..StoreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn no_accepted_write_is_ever_lost(ops in arb_ops(), tag in 0u64..1_000_000) {
        let dir = tmpdir(tag);
        let nvram = NvramDevice::new(1 << 16);
        let mut store = LogStore::open(&dir, opts(), nvram.clone()).unwrap();

        // Model: per client, every accepted (lsn -> payload byte pattern).
        let mut model: BTreeMap<u8, BTreeMap<u64, u16>> = BTreeMap::new();
        let mut next_lsn: BTreeMap<u8, u64> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Write { client, len } => {
                    let lsn = next_lsn.entry(client).or_insert(1);
                    let record = LogRecord::present(
                        Lsn(*lsn),
                        Epoch(1),
                        vec![(len % 251) as u8; len as usize],
                    );
                    store.write(ClientId(u64::from(client)), &record).unwrap();
                    model.entry(client).or_default().insert(*lsn, len);
                    *lsn += 1;
                }
                Op::Force { client } => {
                    store.force(ClientId(u64::from(client))).unwrap();
                }
                Op::Flush => store.flush_track().unwrap(),
                Op::Checkpoint => store.checkpoint().unwrap(),
                Op::Crash => {
                    drop(store); // power failure; NVRAM device survives
                    store = LogStore::open(&dir, opts(), nvram.clone()).unwrap();
                }
            }
        }

        // Final crash + recovery, then audit everything.
        drop(store);
        let mut store = LogStore::open(&dir, opts(), nvram).unwrap();
        for (client, records) in &model {
            let cid = ClientId(u64::from(*client));
            for (&lsn, &len) in records {
                let got = store.read(cid, Lsn(lsn)).unwrap();
                let got = got.unwrap_or_else(|| panic!("client {client} lost LSN {lsn}"));
                prop_assert_eq!(got.data.len(), len as usize);
                prop_assert_eq!(got.data.as_bytes().first().copied(),
                    Some((len % 251) as u8));
            }
            // The interval list covers exactly 1..=max.
            let list = store.interval_list(cid);
            if let Some(&max) = records.keys().next_back() {
                prop_assert_eq!(list.last().unwrap().hi, Lsn(max));
                prop_assert_eq!(list.len(), 1, "single gap-free interval expected");
            }
            // Nothing beyond the model exists.
            let beyond = records.keys().next_back().map_or(1, |m| m + 1);
            prop_assert!(store.read(cid, Lsn(beyond)).unwrap().is_none());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
