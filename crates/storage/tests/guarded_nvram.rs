//! The §5.1 guarded-write protocol end to end: a store running in guarded
//! mode operates normally, while a foreign write to the NVRAM device is
//! detected on the store's next insert instead of silently corrupting the
//! log.

use std::path::PathBuf;

use dlog_storage::store::{LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, DlogError, Epoch, LogRecord, Lsn};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-guard-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts() -> StoreOptions {
    StoreOptions {
        fsync: false,
        checkpoint_every: 0,
        guarded_nvram: true,
        track_bytes: 512,
        ..StoreOptions::default()
    }
}

fn rec(lsn: u64) -> LogRecord {
    LogRecord::present(Lsn(lsn), Epoch(1), vec![lsn as u8; 64])
}

#[test]
fn guarded_store_operates_normally() {
    let dir = tmpdir("normal");
    let nvram = NvramDevice::new(1 << 16);
    {
        let mut store = LogStore::open(&dir, opts(), nvram.clone()).unwrap();
        for i in 1..=40u64 {
            store.write(ClientId(1), &rec(i)).unwrap();
        }
        store.force(ClientId(1)).unwrap();
        // Crash and recover with the same device.
    }
    let mut store = LogStore::open(&dir, opts(), nvram).unwrap();
    for i in 1..=40u64 {
        assert!(
            store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
            "lsn {i}"
        );
    }
    // And keep writing in guarded mode after recovery.
    for i in 41..=50u64 {
        store.write(ClientId(1), &rec(i)).unwrap();
    }
    assert!(store.read(ClientId(1), Lsn(50)).unwrap().is_some());
}

#[test]
fn foreign_write_is_detected() {
    let dir = tmpdir("foreign");
    let nvram = NvramDevice::new(1 << 16);
    let mut store = LogStore::open(&dir, opts(), nvram.clone()).unwrap();
    store.write(ClientId(1), &rec(1)).unwrap();

    // A stray component scribbles on the device directly (it cannot know
    // the store's seal chain).
    nvram.insert(b"wild pointer garbage").unwrap();

    match store.write(ClientId(1), &rec(2)) {
        Err(e @ DlogError::GuardViolation { .. }) => {
            assert!(e.to_string().contains("guard violation"), "{e}");
        }
        other => panic!("expected guard violation, got {other:?}"),
    }
}

#[test]
fn unguarded_store_ignores_seals() {
    // The default mode must be unaffected by seal bookkeeping.
    let dir = tmpdir("unguarded");
    let nvram = NvramDevice::new(1 << 16);
    let mut store = LogStore::open(
        &dir,
        StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        },
        nvram.clone(),
    )
    .unwrap();
    store.write(ClientId(1), &rec(1)).unwrap();
    // Direct device traffic does not bother an unguarded store... though
    // it would corrupt a real one — which is exactly §5.1's argument for
    // the guard.
    let seal_before = nvram.seal();
    let _ = seal_before;
    store.write(ClientId(1), &rec(2)).unwrap();
    assert!(store.read(ClientId(1), Lsn(2)).unwrap().is_some());
}
