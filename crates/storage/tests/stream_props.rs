//! Property tests for the segmented stream: random frame sequences
//! written through random flush patterns must read back exactly, across
//! segment boundaries, with torn tails cleanly truncated.

use std::path::PathBuf;

use proptest::prelude::*;

use dlog_storage::frame::Frame;
use dlog_storage::stream::SegmentedStream;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

fn tmpdir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-stream-props")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn frame(client: u64, lsn: u64, size: usize) -> Frame {
    Frame::Record {
        client: ClientId(client),
        record: LogRecord::present(Lsn(lsn), Epoch(1), vec![(lsn % 251) as u8; size]),
        staged: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Append frames of random sizes over a tiny segment capacity (so
    /// frames straddle boundaries constantly); scanning recovers exactly
    /// the appended sequence, also after reopening.
    #[test]
    fn scan_recovers_appended_frames(
        sizes in proptest::collection::vec(0usize..600, 1..40),
        seg_kb in 1u64..4,
        tag in 0u64..1_000_000,
    ) {
        let dir = tmpdir(tag);
        let seg_bytes = seg_kb * 1024;
        let mut expected = Vec::new();
        {
            let mut s = SegmentedStream::open(&dir, seg_bytes).unwrap();
            for (i, size) in sizes.iter().enumerate() {
                let f = frame(i as u64 % 3 + 1, i as u64 + 1, *size);
                let mut buf = Vec::new();
                f.encode_into(&mut buf);
                let pos = s.append(&buf).unwrap();
                expected.push((pos, f));
            }
            s.sync().unwrap();
            let mut seen = Vec::new();
            let end = s.scan_frames(0, |pos, f| seen.push((pos, f))).unwrap();
            prop_assert_eq!(&seen, &expected);
            prop_assert_eq!(end, s.end());
        }
        // Reopen: same result.
        let s = SegmentedStream::open(&dir, seg_bytes).unwrap();
        let mut seen = Vec::new();
        let end = s.scan_frames(0, |pos, f| seen.push((pos, f))).unwrap();
        prop_assert_eq!(&seen, &expected);
        prop_assert_eq!(end, s.end());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cutting the stream at any byte yields a valid prefix: the scan
    /// returns exactly the frames wholly before the cut.
    #[test]
    fn arbitrary_truncation_yields_clean_prefix(
        count in 1usize..20,
        cut_seed in any::<u64>(),
        tag in 0u64..1_000_000,
    ) {
        let dir = tmpdir(tag.wrapping_add(7_000_000));
        let mut s = SegmentedStream::open(&dir, 2048).unwrap();
        let mut boundaries = vec![0u64];
        for i in 0..count {
            let f = frame(1, i as u64 + 1, 100);
            let mut buf = Vec::new();
            f.encode_into(&mut buf);
            s.append(&buf).unwrap();
            boundaries.push(s.end());
        }
        let cut = cut_seed % (s.end() + 1);
        s.truncate(cut).unwrap();
        let mut seen = 0usize;
        let end = s.scan_frames(0, |_, _| seen += 1).unwrap();
        // Frames wholly before the cut survive.
        let expect = boundaries.iter().skip(1).filter(|&&b| b <= cut).count();
        prop_assert_eq!(seen, expect);
        prop_assert_eq!(end, boundaries[expect]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
