//! §5.3 retention enforcement: old segments are dropped, the interval
//! table forgets exactly the dropped records, and recovery after the
//! prune stays consistent.

use std::path::PathBuf;

use dlog_storage::store::{LogStore, StoreOptions};
use dlog_storage::NvramDevice;
use dlog_types::{ClientId, Epoch, LogRecord, Lsn};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir()
        .join("dlog-retention-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn opts() -> StoreOptions {
    StoreOptions {
        fsync: false,
        segment_bytes: 2048,
        track_bytes: 512,
        checkpoint_every: 0,
        ..StoreOptions::default()
    }
}

fn fill(store: &mut LogStore, client: u64, lo: u64, hi: u64) {
    for i in lo..=hi {
        store
            .write(
                ClientId(client),
                &LogRecord::present(Lsn(i), Epoch(1), vec![i as u8; 100]),
            )
            .unwrap();
    }
}

#[test]
fn retention_drops_old_records_keeps_new() {
    let dir = tmpdir("basic");
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    fill(&mut store, 1, 1, 80);
    store.sync().unwrap();
    let before = store.on_disk_bytes();
    assert!(before > 4096);

    let freed = store.enforce_retention(4096).unwrap().freed;
    assert!(freed > 0);
    assert!(store.on_disk_bytes() <= before - freed + 1);

    // The tail is intact; the head is forgotten (served by other replicas
    // or offline media in a real deployment).
    let list = store.interval_list(ClientId(1));
    let surviving_lo = list.intervals().first().unwrap().lo;
    assert!(surviving_lo > Lsn(1), "head must have been pruned");
    assert_eq!(list.last().unwrap().hi, Lsn(80));
    for i in 1..surviving_lo.0 {
        assert!(
            store.read(ClientId(1), Lsn(i)).unwrap().is_none(),
            "lsn {i}"
        );
    }
    for i in surviving_lo.0..=80 {
        let r = store.read(ClientId(1), Lsn(i)).unwrap().unwrap();
        assert_eq!(r.data.as_bytes(), vec![i as u8; 100].as_slice(), "lsn {i}");
    }
}

#[test]
fn retention_survives_restart() {
    let dir = tmpdir("restart");
    let nvram = NvramDevice::new(1 << 20);
    let surviving_lo;
    {
        let mut store = LogStore::open(&dir, opts(), nvram.clone()).unwrap();
        fill(&mut store, 1, 1, 80);
        store.sync().unwrap();
        store.enforce_retention(4096).unwrap();
        surviving_lo = store.interval_list(ClientId(1)).intervals()[0].lo;
    }
    let mut store = LogStore::open(&dir, opts(), nvram).unwrap();
    let list = store.interval_list(ClientId(1));
    assert_eq!(list.intervals()[0].lo, surviving_lo);
    assert_eq!(list.last().unwrap().hi, Lsn(80));
    for i in surviving_lo.0..=80 {
        assert!(
            store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
            "lsn {i}"
        );
    }
    // Writes continue normally after the prune + restart.
    fill(&mut store, 1, 81, 90);
    assert!(store.read(ClientId(1), Lsn(90)).unwrap().is_some());
}

#[test]
fn retention_noop_when_under_budget() {
    let dir = tmpdir("noop");
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    fill(&mut store, 1, 1, 5);
    store.sync().unwrap();
    assert_eq!(store.enforce_retention(1 << 30).unwrap().freed, 0);
    for i in 1..=5u64 {
        assert!(store.read(ClientId(1), Lsn(i)).unwrap().is_some());
    }
}

#[test]
fn retention_refuses_to_outrun_archiver() {
    // Safety property: with archival configured, a sealed segment that has
    // not been confirmed archived is the only durable copy this server
    // holds — retention must keep it and report the bytes as pending.
    let dir = tmpdir("archive-gate");
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    store.enable_archival();
    fill(&mut store, 1, 1, 80);
    store.sync().unwrap();
    let before = store.on_disk_bytes();
    assert!(before > 4096);

    // Nothing archived yet: nothing may be freed.
    let report = store.enforce_retention(4096).unwrap();
    assert_eq!(report.freed, 0);
    assert_eq!(report.pending, before - 4096);
    assert_eq!(store.on_disk_bytes(), before);

    // Confirm part of the stream archived: only that prefix is droppable.
    store.note_archived(store.stream_end() / 2);
    let report = store.enforce_retention(4096).unwrap();
    assert!(report.freed > 0);
    assert!(report.pending > 0, "unarchived tail still over budget");
    assert!(store.stream_start() <= store.archived_to().unwrap());

    // Fully archived: retention behaves as without an archiver.
    store.note_archived(store.stream_end());
    let report = store.enforce_retention(4096).unwrap();
    assert!(report.pending < 2048, "only segment-granularity remainder");
    assert_eq!(store.interval_list(ClientId(1)).last().unwrap().hi, Lsn(80));
}

#[test]
fn retention_prunes_per_client_fairly() {
    // Interleaved clients: pruning cuts both clients' heads, and each
    // client's surviving interval list stays well-formed.
    let dir = tmpdir("multi");
    let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
    for i in 1..=40u64 {
        for c in 1..=2u64 {
            store
                .write(
                    ClientId(c),
                    &LogRecord::present(Lsn(i), Epoch(1), vec![c as u8; 100]),
                )
                .unwrap();
        }
    }
    store.sync().unwrap();
    store.enforce_retention(4096).unwrap();
    for c in 1..=2u64 {
        let list = store.interval_list(ClientId(c));
        assert!(!list.is_empty(), "client {c} must keep its tail");
        assert_eq!(list.last().unwrap().hi, Lsn(40));
        let lo = list.intervals()[0].lo;
        for i in lo.0..=40 {
            assert!(
                store.read(ClientId(c), Lsn(i)).unwrap().is_some(),
                "c{c} lsn {i}"
            );
        }
    }
}
