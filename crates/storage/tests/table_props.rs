//! Property tests for the interval table (the server's core in-memory
//! state): random valid append sequences against a brute-force model,
//! including epoch rewinds, checkpoint round trips, and pruning.

use std::collections::HashMap;

use proptest::prelude::*;

use dlog_storage::intervals::IntervalTable;
use dlog_types::{ClientId, Epoch, Lsn};

/// A generated storage history: accepted (client, lsn, epoch, pos) rows in
/// server write order.
fn arb_history() -> impl Strategy<Value = Vec<(u64, u64, u64, u64)>> {
    // Per step: client 1..3, epoch bump 0..2, lsn move.
    proptest::collection::vec(
        (
            1u64..4,
            0u64..3,
            prop_oneof![Just(0u64), Just(1), Just(5)],
            1u64..4,
        ),
        0..120,
    )
    .prop_map(|steps| {
        // Track per-client (epoch, hi) cursors, mimicking a legal
        // server history: epochs never decrease; within an epoch LSNs
        // strictly increase; a new epoch may rewind (CopyLog).
        let mut cursors: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut pos = 0u64;
        let mut out = Vec::new();
        for (client, epoch_bump, gap, rewind) in steps {
            let (epoch, hi) = cursors.get(&client).copied().unwrap_or((1, 0));
            let (new_epoch, lsn) = if epoch_bump > 0 {
                // New epoch may rewind the cursor (but stay >= 1).
                let lsn = hi.saturating_sub(rewind).max(1);
                (epoch + epoch_bump, lsn)
            } else {
                (epoch, hi + 1 + gap)
            };
            pos += 100;
            out.push((client, lsn, new_epoch, pos));
            cursors.insert(client, (new_epoch, lsn));
        }
        out
    })
}

/// Brute-force model lookup: highest-epoch entry for (client, lsn).
fn model_lookup(history: &[(u64, u64, u64, u64)], client: u64, lsn: u64) -> Option<(u64, u64)> {
    history
        .iter()
        .filter(|&&(c, l, _, _)| c == client && l == lsn)
        .max_by_key(|&&(_, _, e, _)| e)
        .map(|&(_, _, e, p)| (e, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn table_matches_model(history in arb_history()) {
        let mut table = IntervalTable::new();
        for &(c, l, e, p) in &history {
            table
                .append(ClientId(c), Lsn(l), Epoch(e), p)
                .unwrap_or_else(|err| panic!("legal history rejected: {err}"));
        }
        for c in 1..4u64 {
            for l in 1..40u64 {
                let got = table.lookup(ClientId(c), Lsn(l));
                let expected = model_lookup(&history, c, l).map(|(e, p)| (Epoch(e), p));
                prop_assert_eq!(got, expected, "client {} lsn {}", c, l);
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip(history in arb_history()) {
        let mut table = IntervalTable::new();
        for &(c, l, e, p) in &history {
            table.append(ClientId(c), Lsn(l), Epoch(e), p).unwrap();
        }
        let decoded = IntervalTable::decode(&table.encode()).unwrap();
        prop_assert_eq!(decoded.record_count(), table.record_count());
        for c in 1..4u64 {
            let a = decoded.interval_list(ClientId(c));
            let b = table.interval_list(ClientId(c));
            prop_assert_eq!(a.intervals(), b.intervals());
            for l in 1..40u64 {
                prop_assert_eq!(
                    decoded.lookup(ClientId(c), Lsn(l)),
                    table.lookup(ClientId(c), Lsn(l))
                );
            }
        }
    }

    #[test]
    fn prune_matches_model(history in arb_history(), cut_step in 0usize..120) {
        let mut table = IntervalTable::new();
        for &(c, l, e, p) in &history {
            table.append(ClientId(c), Lsn(l), Epoch(e), p).unwrap();
        }
        // Cut at the position of an arbitrary step (positions are step*100).
        let cut = (cut_step as u64) * 100;
        table.prune_below(cut);
        for c in 1..4u64 {
            for l in 1..40u64 {
                let got = table.lookup(ClientId(c), Lsn(l));
                // Model: the winning entry survives iff its position >= cut.
                let expected = model_lookup(&history, c, l)
                    .filter(|&(_, p)| p >= cut)
                    .map(|(e, p)| (Epoch(e), p));
                prop_assert_eq!(got, expected, "after prune {}: client {} lsn {}", cut, c, l);
            }
            // Surviving interval lists remain structurally valid (push
            // re-validates ordering internally via interval_list()).
            let _ = table.interval_list(ClientId(c));
        }
    }
}
