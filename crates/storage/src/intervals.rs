//! The in-memory interval table: per-client interval lists paired with
//! LSN → stream-position indexes.
//!
//! §4.3: "the server must store the interval lists describing the
//! consecutive sequences of log records stored for each client node. ...
//! Because interval lists are short, it is reasonable for a server to keep
//! them in volatile memory during normal operation." The table is
//! checkpointed (here: together with its record positions) and rebuilt
//! after a crash by scanning the stream tail from the checkpoint position.

use std::collections::HashMap;

use append_forest::LsnIndex;
use dlog_types::{ClientId, Epoch, Interval, IntervalList, Lsn};

/// Records indexed per append-forest node ("each page sized node of the
/// tree can index one thousand or more records", §4.3; kept small here so
/// tests exercise multi-node forests).
pub const INDEX_FANOUT: usize = 256;

/// One consecutive sequence of records and its position index.
#[derive(Clone, Debug)]
pub struct TableEntry {
    /// The interval `<epoch, lo..=hi>` this entry covers.
    pub interval: Interval,
    index: LsnIndex,
}

impl TableEntry {
    /// Stream position of the record at `lsn`, if this entry covers it.
    #[must_use]
    pub fn position(&self, lsn: Lsn) -> Option<u64> {
        self.index.lookup(lsn)
    }
}

/// Per-client interval lists with record positions.
#[derive(Clone, Debug, Default)]
pub struct IntervalTable {
    clients: HashMap<ClientId, Vec<TableEntry>>,
}

impl IntervalTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        IntervalTable::default()
    }

    /// Record that `client`'s record `<lsn, epoch>` lives at stream
    /// position `pos`. Extends the client's last interval when contiguous
    /// in the same epoch, otherwise starts a new interval (§3.1.2).
    ///
    /// # Errors
    /// Rejects records that violate server storage order (decreasing epoch,
    /// or non-increasing LSN within an epoch).
    pub fn append(
        &mut self,
        client: ClientId,
        lsn: Lsn,
        epoch: Epoch,
        pos: u64,
    ) -> Result<(), String> {
        // Static rejection reasons: append sits on the write hot path,
        // and callers log the offending <LSN, epoch> themselves.
        let entries = self.clients.entry(client).or_default();
        if let Some(last) = entries.last_mut() {
            if epoch < last.interval.epoch {
                return Err("epoch regression in server storage order".into());
            }
            if epoch == last.interval.epoch {
                if last.interval.hi.precedes(lsn) {
                    last.index
                        .append(lsn, pos)
                        .map_err(|_| "index gap within an interval")?;
                    last.interval.hi = lsn;
                    return Ok(());
                }
                if lsn <= last.interval.hi {
                    return Err("non-increasing LSN within an epoch".into());
                }
            }
        }
        let mut index = LsnIndex::new(INDEX_FANOUT);
        index
            .append(lsn, pos)
            .map_err(|_| "index gap within an interval")?;
        entries.push(TableEntry {
            interval: Interval::point(epoch, lsn),
            index,
        });
        Ok(())
    }

    /// The stream position and epoch of the *highest-epoch* record stored
    /// for `client` at `lsn` — the `ServerReadLog` lookup rule (§3.1.1).
    #[must_use]
    pub fn lookup(&self, client: ClientId, lsn: Lsn) -> Option<(Epoch, u64)> {
        let entries = self.clients.get(&client)?;
        // Later entries never have smaller epochs, so scan backwards.
        for e in entries.iter().rev() {
            if e.interval.contains(lsn) {
                let pos = e.position(lsn)?;
                return Some((e.interval.epoch, pos));
            }
        }
        None
    }

    /// The client's interval list as reported by the `IntervalList`
    /// operation.
    #[must_use]
    pub fn interval_list(&self, client: ClientId) -> IntervalList {
        let mut list = IntervalList::new();
        if let Some(entries) = self.clients.get(&client) {
            for e in entries {
                list.push(e.interval)
                    .expect("table maintains interval order");
            }
        }
        list
    }

    /// Highest `<LSN, epoch>` stored for `client`.
    #[must_use]
    pub fn last(&self, client: ClientId) -> Option<Interval> {
        self.clients.get(&client)?.last().map(|e| e.interval)
    }

    /// All clients with stored records.
    pub fn clients(&self) -> impl Iterator<Item = ClientId> + '_ {
        self.clients.keys().copied()
    }

    /// Total records stored (LSNs may be counted once per epoch).
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.clients
            .values()
            .flat_map(|es| es.iter())
            .map(|e| e.interval.len())
            .sum()
    }

    /// Drop every record whose stream position is below `pos` (log space
    /// management, §5.3: old segments spooled off or deleted). Entries
    /// straddling the cut are shrunk; emptied entries are removed.
    pub fn prune_below(&mut self, pos: u64) {
        let mut positions: Vec<u64> = Vec::new();
        for entries in self.clients.values_mut() {
            let mut kept = Vec::with_capacity(entries.len());
            for e in entries.drain(..) {
                // Positions ascend within an entry (appends are in stream
                // order), so the survivors are a suffix.
                e.index.positions_into(&mut positions);
                let first_kept = positions.partition_point(|&p| p < pos);
                if first_kept >= positions.len() {
                    continue; // wholly below the cut
                }
                let new_lo = Lsn(e.interval.lo.0 + first_kept as u64);
                let kept_positions = positions.get(first_kept..).unwrap_or(&[]);
                kept.push(TableEntry {
                    interval: Interval::new(e.interval.epoch, new_lo, e.interval.hi),
                    index: LsnIndex::from_parts(INDEX_FANOUT, new_lo, kept_positions),
                });
            }
            *entries = kept;
        }
        self.clients.retain(|_, es| !es.is_empty());
    }

    /// Serialize the table (intervals and positions) for a checkpoint.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// [`IntervalTable::encode`] appended to a caller-supplied buffer
    /// (not cleared — checkpoint images embed the table after a header),
    /// so periodic checkpoints reuse one scratch vector instead of
    /// allocating per snapshot.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut clients: Vec<_> = self.clients.iter().collect();
        clients.sort_by_key(|(c, _)| **c);
        out.extend_from_slice(&(clients.len() as u32).to_le_bytes());
        for (client, entries) in clients {
            out.extend_from_slice(&client.0.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for e in entries {
                out.extend_from_slice(&e.interval.epoch.0.to_le_bytes());
                out.extend_from_slice(&e.interval.lo.0.to_le_bytes());
                out.extend_from_slice(&e.interval.hi.0.to_le_bytes());
                for p in e.index.positions_iter() {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
        }
    }

    /// Rebuild a table from [`IntervalTable::encode`] output.
    ///
    /// # Errors
    /// Returns a description of the corruption on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<IntervalTable, String> {
        let mut r = Reader { buf: bytes, off: 0 };
        let mut table = IntervalTable::new();
        let nclients = r.u32()?;
        for _ in 0..nclients {
            let client = ClientId(r.u64()?);
            let nentries = r.u32()?;
            let mut entries = Vec::with_capacity(nentries as usize);
            for _ in 0..nentries {
                let epoch = Epoch(r.u64()?);
                let lo = Lsn(r.u64()?);
                let hi = Lsn(r.u64()?);
                if lo > hi || lo == Lsn::ZERO {
                    return Err("corrupt interval bounds".into());
                }
                let count =
                    hi.0.checked_sub(lo.0)
                        .and_then(|d| d.checked_add(1))
                        .ok_or("corrupt interval count")?;
                let mut positions = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    positions.push(r.u64()?);
                }
                entries.push(TableEntry {
                    interval: Interval::new(epoch, lo, hi),
                    index: LsnIndex::from_parts(INDEX_FANOUT, lo, &positions),
                });
            }
            // Re-validate ordering via interval list rules.
            let mut check = IntervalList::new();
            for e in &entries {
                check.push(e.interval)?;
            }
            table.clients.insert(client, entries);
        }
        if r.off != bytes.len() {
            return Err("trailing bytes in checkpoint".into());
        }
        Ok(table)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Reader<'_> {
    fn u32(&mut self) -> Result<u32, String> {
        let v = dlog_types::bytes::u32_le_at(self.buf, self.off).ok_or("truncated checkpoint")?;
        self.off += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let v = dlog_types::bytes::u64_le_at(self.buf, self.off).ok_or("truncated checkpoint")?;
        self.off += 8;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_extends_and_lookup() {
        let mut t = IntervalTable::new();
        let c = ClientId(1);
        t.append(c, Lsn(1), Epoch(1), 100).unwrap();
        t.append(c, Lsn(2), Epoch(1), 200).unwrap();
        t.append(c, Lsn(3), Epoch(1), 300).unwrap();
        assert_eq!(t.interval_list(c).len(), 1);
        assert_eq!(t.lookup(c, Lsn(2)), Some((Epoch(1), 200)));
        assert_eq!(t.lookup(c, Lsn(4)), None);
        assert_eq!(t.lookup(ClientId(9), Lsn(1)), None);
    }

    #[test]
    fn higher_epoch_shadows() {
        // Figure 3-1, Server 1: epoch 3 rewrites LSN 3.
        let mut t = IntervalTable::new();
        let c = ClientId(1);
        for l in 1..=3u64 {
            t.append(c, Lsn(l), Epoch(1), l * 10).unwrap();
        }
        t.append(c, Lsn(3), Epoch(3), 999).unwrap();
        assert_eq!(t.lookup(c, Lsn(3)), Some((Epoch(3), 999)));
        assert_eq!(t.lookup(c, Lsn(2)), Some((Epoch(1), 20)));
        assert_eq!(t.interval_list(c).len(), 2);
    }

    #[test]
    fn rejects_disorder() {
        let mut t = IntervalTable::new();
        let c = ClientId(1);
        t.append(c, Lsn(5), Epoch(2), 0).unwrap();
        assert!(t.append(c, Lsn(5), Epoch(1), 0).is_err()); // epoch regression
        assert!(t.append(c, Lsn(5), Epoch(2), 0).is_err()); // duplicate LSN
        assert!(t.append(c, Lsn(4), Epoch(2), 0).is_err()); // LSN regression
        t.append(c, Lsn(8), Epoch(2), 0).unwrap(); // gap is fine: new interval
        assert_eq!(t.interval_list(c).len(), 2);
    }

    #[test]
    fn multiple_clients_are_independent() {
        let mut t = IntervalTable::new();
        t.append(ClientId(1), Lsn(1), Epoch(1), 11).unwrap();
        t.append(ClientId(2), Lsn(7), Epoch(4), 22).unwrap();
        assert_eq!(t.lookup(ClientId(1), Lsn(1)), Some((Epoch(1), 11)));
        assert_eq!(t.lookup(ClientId(2), Lsn(7)), Some((Epoch(4), 22)));
        assert_eq!(t.lookup(ClientId(1), Lsn(7)), None);
        let mut cs: Vec<_> = t.clients().collect();
        cs.sort_unstable();
        assert_eq!(cs, vec![ClientId(1), ClientId(2)]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = IntervalTable::new();
        for l in 1..=600u64 {
            t.append(ClientId(1), Lsn(l), Epoch(1), l * 7).unwrap();
        }
        t.append(ClientId(1), Lsn(600), Epoch(5), 99_999).unwrap();
        t.append(ClientId(2), Lsn(10), Epoch(2), 1).unwrap();
        t.append(ClientId(2), Lsn(11), Epoch(2), 2).unwrap();

        let bytes = t.encode();
        let back = IntervalTable::decode(&bytes).unwrap();
        assert_eq!(back.record_count(), t.record_count());
        for l in 1..=600u64 {
            assert_eq!(
                back.lookup(ClientId(1), Lsn(l)),
                t.lookup(ClientId(1), Lsn(l))
            );
        }
        assert_eq!(back.lookup(ClientId(2), Lsn(11)), Some((Epoch(2), 2)));
        assert_eq!(
            back.interval_list(ClientId(1)).intervals(),
            t.interval_list(ClientId(1)).intervals()
        );
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut t = IntervalTable::new();
        t.append(ClientId(1), Lsn(1), Epoch(1), 0).unwrap();
        let bytes = t.encode();
        assert!(IntervalTable::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(IntervalTable::decode(&extra).is_err());
        assert!(IntervalTable::decode(&[]).is_err());
    }

    #[test]
    fn record_count_counts_epoch_copies() {
        let mut t = IntervalTable::new();
        t.append(ClientId(1), Lsn(1), Epoch(1), 0).unwrap();
        t.append(ClientId(1), Lsn(1), Epoch(2), 0).unwrap();
        assert_eq!(t.record_count(), 2);
    }
}
