//! The baseline the paper argues against: a **local duplexed-disk log**,
//! where each processing node mirrors its log onto two locally attached
//! disks (§1: "logs can be implemented with data written to duplexed disks
//! on each processing node").
//!
//! Used by experiment E4 (§5.6) to compare the elapsed time of local
//! logging against remote logging to two log servers. Every force writes
//! the buffered records to both replica files and fsyncs both — the
//! duplexed node has no battery-backed buffer, so a force is durable only
//! after two synchronous disk writes.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dlog_types::{ClientId, DlogError, Epoch, LogData, LogRecord, Lsn, Result};

use crate::frame::Frame;
use crate::stream::SegmentedStream;

/// Counters for the E4 comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DuplexStats {
    /// Records appended.
    pub records: u64,
    /// Payload bytes appended.
    pub bytes: u64,
    /// Forces performed.
    pub forces: u64,
    /// Individual `fsync` calls (two per force).
    pub fsyncs: u64,
}

/// A log mirrored on two local "disks" (two files, ideally on independent
/// devices; the benchmark uses one device and measures the doubled
/// synchronous write cost, which is the fair laptop-scale equivalent).
pub struct DuplexLog {
    replicas: [File; 2],
    paths: [PathBuf; 2],
    /// In-memory LSN → (offset, frame length) index, rebuilt on open.
    index: Vec<(u64, u32)>,
    /// Buffered (unforced) frames.
    buffer: Vec<u8>,
    /// Reused scratch for `read`: frame bytes are staged here, so the
    /// steady-state read path does not allocate.
    read_buf: Vec<u8>,
    /// Offset at which `buffer` will be written.
    tail: u64,
    next_lsn: Lsn,
    stats: DuplexStats,
}

impl DuplexLog {
    /// Open (or create) a duplexed log in `dir`, recovering from the
    /// replica with the longest valid frame prefix.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn open(dir: impl AsRef<Path>) -> Result<DuplexLog> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let paths = [dir.join("replica-a.log"), dir.join("replica-b.log")];
        let [path_a, path_b] = &paths;
        // Recover: scan both replicas as frame streams, keep the longer
        // valid prefix (replica A on a tie), and repair the other to match.
        let (end_a, index_a) = scan_replica(dir, path_a)?;
        let (end_b, index_b) = scan_replica(dir, path_b)?;
        let (best_is_a, end, index) = if end_a >= end_b {
            (true, end_a, index_a)
        } else {
            (false, end_b, index_b)
        };
        let open_replica = |p: &Path| {
            // Intentionally no truncate: existing replica contents are the
            // recovery source.
            #[allow(clippy::suspicious_open_options)]
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .open(p)
        };
        let mut replicas = [open_replica(path_a)?, open_replica(path_b)?];
        // Repair the lagging replica by copying the valid prefix.
        if end > 0 {
            let mut good = Vec::new();
            {
                use std::io::Read;
                let f = File::open(if best_is_a { path_a } else { path_b })?;
                Read::take(f, end).read_to_end(&mut good)?;
            }
            let [ra, rb] = &mut replicas;
            let lagging = if best_is_a { rb } else { ra };
            lagging.seek(SeekFrom::Start(0))?;
            lagging.write_all(&good)?;
            lagging.set_len(end)?;
            lagging.sync_data()?;
        }
        for r in &replicas {
            r.set_len(end)?;
        }
        let next_lsn = Lsn(index.len() as u64 + 1);
        Ok(DuplexLog {
            replicas,
            paths,
            index,
            buffer: Vec::new(),
            read_buf: Vec::new(),
            tail: end,
            next_lsn,
            stats: DuplexStats::default(),
        })
    }

    /// Append a record to the buffer (not yet durable), returning its LSN.
    pub fn append(&mut self, data: impl Into<LogData>) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn = lsn.next();
        let record = LogRecord {
            lsn,
            epoch: Epoch(1),
            present: true,
            data: data.into(),
        };
        let frame = Frame::Record {
            client: ClientId(0),
            record,
            staged: false,
        };
        let start = self.tail + self.buffer.len() as u64;
        let len = frame.encode_into(&mut self.buffer) as u32;
        self.index.push((start, len));
        self.stats.records += 1;
        self.stats.bytes += u64::from(len);
        lsn
    }

    /// Force all buffered records to both replicas (write + fsync each).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn force(&mut self) -> Result<()> {
        self.stats.forces += 1;
        if self.buffer.is_empty() {
            return Ok(());
        }
        for r in &mut self.replicas {
            r.seek(SeekFrom::Start(self.tail))?;
            r.write_all(&self.buffer)?;
            r.sync_data()?;
            self.stats.fsyncs += 1;
        }
        self.tail += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }

    /// Read the record at `lsn` (from the first replica).
    ///
    /// # Errors
    /// [`DlogError::NoSuchRecord`] for unknown LSNs; I/O errors otherwise.
    pub fn read(&mut self, lsn: Lsn) -> Result<LogRecord> {
        let (off, len) = *self
            .index
            .get((lsn.0.saturating_sub(1)) as usize)
            .ok_or(DlogError::NoSuchRecord { lsn })?;
        let buffered_from = self.tail;
        // Destructure so the scratch can borrow mutably next to the
        // buffer and replica handles; the frame is staged through it
        // without a per-read allocation.
        let DuplexLog {
            replicas,
            buffer,
            read_buf,
            ..
        } = self;
        read_buf.clear();
        if off >= buffered_from {
            let s = off.saturating_sub(buffered_from) as usize;
            let slice = buffer
                .get(s..s.saturating_add(len as usize))
                .ok_or_else(|| DlogError::Corrupt("bad duplex index entry".into()))?;
            read_buf.extend_from_slice(slice);
        } else {
            use std::io::Read;
            read_buf.resize(len as usize, 0);
            let [ra, _] = replicas;
            ra.seek(SeekFrom::Start(off))?;
            ra.read_exact(read_buf)?;
        }
        match Frame::decode(read_buf)? {
            Some((Frame::Record { record, .. }, _)) if record.lsn == lsn => Ok(record),
            _ => Err(DlogError::Corrupt("bad frame in duplex log".into())),
        }
    }

    /// LSN of the most recently appended record.
    #[must_use]
    pub fn end_of_log(&self) -> Lsn {
        Lsn(self.next_lsn.0.saturating_sub(1))
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> DuplexStats {
        self.stats
    }

    /// Paths of the two replicas.
    #[must_use]
    pub fn replica_paths(&self) -> &[PathBuf; 2] {
        &self.paths
    }
}

/// Scan one replica file as a frame stream; returns (valid prefix length,
/// LSN index).
fn scan_replica(dir: &Path, path: &Path) -> Result<(u64, Vec<(u64, u32)>)> {
    if !path.exists() {
        return Ok((0, Vec::new()));
    }
    // Reuse the segmented scanner with a single huge segment by copying
    // into a temp stream view: cheaper to just read the file directly.
    let bytes = fs::read(path)?;
    let _ = dir;
    let mut index = Vec::new();
    let mut off = 0usize;
    let mut expected = Lsn(1);
    while let Some((frame, consumed)) = Frame::decode(bytes.get(off..).unwrap_or(&[]))? {
        match frame {
            Frame::Record { record, .. } if record.lsn == expected => {
                index.push((off as u64, consumed as u32));
                expected = expected.next();
                off += consumed;
            }
            _ => break,
        }
    }
    Ok((off as u64, index))
}

// Silence the unused-import lint for SegmentedStream: the duplex baseline
// deliberately does NOT use the segmented stream — a 1987 processing node
// mirrors one flat file per disk.
#[allow(unused)]
fn _unused(_: Option<SegmentedStream>) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-duplex-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_force_read() {
        let dir = tmpdir("afr");
        let mut log = DuplexLog::open(&dir).unwrap();
        let l1 = log.append(vec![1u8; 100]);
        let l2 = log.append(vec![2u8; 100]);
        assert_eq!((l1, l2), (Lsn(1), Lsn(2)));
        // Readable even before force (from the buffer).
        assert_eq!(log.read(Lsn(2)).unwrap().data.as_bytes(), &[2u8; 100]);
        log.force().unwrap();
        assert_eq!(log.stats().fsyncs, 2);
        assert_eq!(log.read(Lsn(1)).unwrap().data.as_bytes(), &[1u8; 100]);
        assert!(log.read(Lsn(3)).is_err());
    }

    #[test]
    fn both_replicas_identical_after_force() {
        let dir = tmpdir("identical");
        let mut log = DuplexLog::open(&dir).unwrap();
        for i in 0..10u8 {
            log.append(vec![i; 50]);
        }
        log.force().unwrap();
        let a = fs::read(&log.replica_paths()[0]).unwrap();
        let b = fs::read(&log.replica_paths()[1]).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn reopen_recovers_forced_records_only() {
        let dir = tmpdir("reopen");
        {
            let mut log = DuplexLog::open(&dir).unwrap();
            log.append(vec![1u8; 10]);
            log.append(vec![2u8; 10]);
            log.force().unwrap();
            log.append(vec![3u8; 10]); // never forced: lost at crash
        }
        let mut log = DuplexLog::open(&dir).unwrap();
        assert_eq!(log.end_of_log(), Lsn(2));
        assert_eq!(log.read(Lsn(2)).unwrap().data.as_bytes(), &[2u8; 10]);
        // New appends continue the sequence.
        assert_eq!(log.append(vec![4u8; 10]), Lsn(3));
    }

    #[test]
    fn repairs_lagging_replica() {
        let dir = tmpdir("repair");
        {
            let mut log = DuplexLog::open(&dir).unwrap();
            for i in 0..5u8 {
                log.append(vec![i; 20]);
            }
            log.force().unwrap();
        }
        // Corrupt replica B's tail (simulating a torn write on one disk).
        let b_path = dir.join("replica-b.log");
        let len = fs::metadata(&b_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&b_path).unwrap();
        f.set_len(len - 7).unwrap();

        let mut log = DuplexLog::open(&dir).unwrap();
        assert_eq!(log.end_of_log(), Lsn(5));
        for i in 1..=5u64 {
            assert!(log.read(Lsn(i)).is_ok());
        }
        // Replica B was repaired to match A.
        let a = fs::read(dir.join("replica-a.log")).unwrap();
        let b = fs::read(&b_path).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_log() {
        let dir = tmpdir("empty");
        let mut log = DuplexLog::open(&dir).unwrap();
        assert_eq!(log.end_of_log(), Lsn(0));
        assert!(log.read(Lsn(1)).is_err());
        log.force().unwrap(); // forcing nothing is fine
    }
}
