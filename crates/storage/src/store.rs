//! The log-server store: NVRAM-buffered, track-at-a-time, CRC-framed,
//! crash-recoverable storage for many clients' log records.
//!
//! Durability model (§4.1): a record is durable the moment it is inserted
//! into the non-volatile buffer — the store never needs a synchronous disk
//! write to acknowledge a force. Buffered bytes are retired to the
//! sequential stream a track at a time. Crash recovery:
//!
//! 1. load the latest interval-table checkpoint (if valid);
//! 2. scan the stream tail from the checkpoint position, rebuilding the
//!    interval table, indexes, and staged `CopyLog` state, stopping at the
//!    first torn frame;
//! 3. replay the surviving NVRAM contents over the (possibly torn) tail;
//! 4. truncate any garbage past the recovered end.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use dlog_types::{ClientId, DlogError, Epoch, Interval, IntervalList, LogRecord, Lsn, Result};

use crate::crc::crc32;
use crate::frame::Frame;
use crate::intervals::IntervalTable;
use crate::nvram::NvramDevice;
use crate::stream::SegmentedStream;

const CKPT_MAGIC: u32 = 0x444C_4B50; // "DLKP"

/// CopyLog records awaiting InstallCopies: client -> epoch -> records with
/// their stream positions.
type StagedMap = HashMap<ClientId, HashMap<Epoch, Vec<(LogRecord, u64)>>>;

/// Where interval-table checkpoints are written (§4.3: "they may be
/// checkpointed to a known location on a reusable disk or to a write once
/// disk along with the log data stream").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointPlacement {
    /// A known, atomically replaced file (reusable-disk mode).
    File,
    /// A [`Frame::Checkpoint`] embedded in the log stream itself
    /// (write-once-media mode): recovery scans the stream and the latest
    /// embedded checkpoint snapshot replaces the running table.
    InStream,
}

/// When a force must reach stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// Forces are satisfied by the NVRAM insert (the paper's design).
    Nvram,
    /// No NVRAM credit: every force flushes the track and fsyncs the
    /// stream. The ablation baseline for experiment E8.
    FsyncPerForce,
}

/// Store tuning options.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Flush the NVRAM track to disk when it reaches this many bytes
    /// (a "track" in the paper's sense).
    pub track_bytes: usize,
    /// Segment file capacity.
    pub segment_bytes: u64,
    /// `fsync` segment files when a track is written.
    pub fsync: bool,
    /// Durability policy for forces.
    pub durability: Durability,
    /// Checkpoint the interval table after this many stream bytes
    /// (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// Where checkpoints live.
    pub checkpoint_placement: CheckpointPlacement,
    /// Use the §5.1 guarded-write protocol against the NVRAM device: every
    /// insert must present the device's current seal, so a stray write by
    /// foreign code is detected instead of silently corrupting log data.
    pub guarded_nvram: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            track_bytes: 64 * 1024,
            segment_bytes: 8 << 20,
            fsync: true,
            durability: Durability::Nvram,
            checkpoint_every: 4 << 20,
            checkpoint_placement: CheckpointPlacement::File,
            guarded_nvram: false,
        }
    }
}

/// Operation counters, exposed for the capacity experiments (E3, E8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records written (including staged copies).
    pub records_written: u64,
    /// Payload bytes written (frame bodies).
    pub bytes_written: u64,
    /// Track flushes to the stream.
    pub tracks_flushed: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Force operations observed.
    pub forces: u64,
    /// Record reads served.
    pub reads: u64,
    /// Interval-table checkpoints written.
    pub checkpoints: u64,
    /// Records rebuilt during the last recovery scan.
    pub recovered_records: u64,
    /// Bytes replayed from NVRAM during the last recovery.
    pub nvram_replayed_bytes: u64,
}

/// What retention enforcement accomplished (§5.3 with an archive tier).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Stream bytes freed by dropping whole segments.
    pub freed: u64,
    /// Bytes over budget that could *not* be freed: segments not yet
    /// confirmed archived (when archival is configured), plus segment-
    /// granularity remainder.
    pub pending: u64,
}

/// A log server's storage engine.
pub struct LogStore {
    dir: PathBuf,
    opts: StoreOptions,
    nvram: NvramDevice,
    stream: SegmentedStream,
    table: IntervalTable,
    /// CopyLog records awaiting InstallCopies.
    staged: StagedMap,
    bytes_since_ckpt: u64,
    /// Guard-seal chain for guarded NVRAM mode (§5.1).
    seal: u64,
    /// Frame-aligned position recovery scanned from; positions below it
    /// are only reachable through the interval table, positions at or
    /// above it decode as a contiguous frame sequence.
    anchor: u64,
    /// `Some(watermark)` once an archiver is attached: bytes below the
    /// watermark are confirmed archived. Retention must never drop a
    /// sealed segment above it.
    archived_to: Option<u64>,
    stats: StoreStats,
    obs: dlog_obs::Obs,
    /// Reused frame-encode scratch: `put_frame` serializes every record
    /// through here, so after warm-up the write hot path performs no
    /// per-record allocation for framing.
    frame_buf: Vec<u8>,
    /// Reused I/O scratch: frame reads, track flushes, and checkpoint
    /// images are all staged through here, so the steady-state read,
    /// force, and checkpoint paths allocate nothing after warm-up.
    scratch: Vec<u8>,
}

impl LogStore {
    /// Open (or create) the store in `dir`, recovering state from the
    /// checkpoint, the stream tail, and the surviving NVRAM contents.
    ///
    /// # Errors
    /// Fails on I/O errors or irrecoverable structural corruption.
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions, nvram: NvramDevice) -> Result<LogStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut stream = SegmentedStream::open(&dir, opts.segment_bytes)?;

        // 1. Checkpoint.
        let (mut table, scan_from) = match load_checkpoint(&dir) {
            Some((t, pos)) if pos <= stream.end() => (t, pos),
            _ => (IntervalTable::new(), stream.start()),
        };

        let mut staged = StagedMap::new();
        let mut stats = StoreStats::default();

        // 2. Scan the tail.
        let mut apply_err: Option<String> = None;
        let valid_end = stream.scan_frames(scan_from, |pos, frame| {
            if apply_err.is_some() {
                return;
            }
            if let Err(e) = apply_frame(&mut table, &mut staged, &mut stats, pos, frame) {
                apply_err = Some(e);
            }
        })?;
        if let Some(e) = apply_err {
            // apply_err already carries the context; no re-wrapping.
            return Err(DlogError::Corrupt(e));
        }
        stream.truncate(valid_end)?;

        // 3. NVRAM replay.
        let (base, pending) = nvram.pending();
        if !pending.is_empty() {
            if base > valid_end {
                return Err(DlogError::Corrupt(
                    "nvram base is past the recovered stream end".into(),
                ));
            }
            let overlap = (valid_end - base) as usize;
            if overlap < pending.len() {
                let suffix = pending.get(overlap..).unwrap_or(&[]);
                stream.write_at(valid_end, suffix)?;
                stream.sync()?;
                stats.nvram_replayed_bytes = suffix.len() as u64;
                let mut apply_err: Option<String> = None;
                let replay_end = stream.scan_frames(valid_end, |pos, frame| {
                    if apply_err.is_some() {
                        return;
                    }
                    if let Err(e) = apply_frame(&mut table, &mut staged, &mut stats, pos, frame) {
                        apply_err = Some(e);
                    }
                })?;
                if let Some(e) = apply_err {
                    return Err(DlogError::Corrupt(e));
                }
                // NVRAM holds whole frames, so the replay must consume the
                // entire suffix.
                if replay_end != valid_end + suffix.len() as u64 {
                    return Err(DlogError::Corrupt(
                        "nvram contents do not decode to whole frames".into(),
                    ));
                }
            }
            nvram.retire(pending.len());
        } else if stream.end() == 0 {
            nvram.format(0);
        }
        // The NVRAM base must now sit at the stream end (empty buffer).
        if nvram.base_pos() != stream.end() {
            nvram.format(stream.end());
        }

        let seal = nvram.seal();
        Ok(LogStore {
            dir,
            opts,
            nvram,
            stream,
            table,
            staged,
            bytes_since_ckpt: 0,
            seal,
            anchor: scan_from,
            archived_to: None,
            stats,
            obs: dlog_obs::Obs::off(),
            frame_buf: Vec::new(),
            scratch: Vec::new(),
        })
    }

    /// Attach an observability handle. Shared with the owning server so
    /// `Force` trace events interleave (and order) with its
    /// `AckHighLsn` events.
    pub fn set_obs(&mut self, obs: dlog_obs::Obs) {
        self.obs = obs;
    }

    /// The store's NVRAM device handle (survives a simulated crash).
    #[must_use]
    pub fn nvram(&self) -> NvramDevice {
        self.nvram.clone()
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Logical append position (next record's stream position).
    #[must_use]
    pub fn append_position(&self) -> u64 {
        self.nvram.base_pos() + self.nvram.pending_len() as u64
    }

    /// Store a record for `client` (the `ServerWriteLog` operation,
    /// §3.1.1). The record is durable when this returns.
    ///
    /// # Errors
    /// Rejects records violating server storage order (decreasing epoch or
    /// non-increasing LSN within an epoch) and propagates I/O failures.
    pub fn write(&mut self, client: ClientId, record: &LogRecord) -> Result<()> {
        let pos = self.append_position();
        self.table
            .append(client, record.lsn, record.epoch, pos)
            .map_err(DlogError::Protocol)?;
        self.put_frame(&Frame::Record {
            client,
            record: record.share(),
            staged: false,
        })?;
        self.stats.records_written += 1;
        self.stats.bytes_written += record.data.len() as u64;
        self.maybe_checkpoint()?;
        Ok(())
    }

    /// Satisfy a force for `client`: under [`Durability::Nvram`] the data
    /// is already durable; under [`Durability::FsyncPerForce`] the track is
    /// flushed and fsynced before returning.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn force(&mut self, client: ClientId) -> Result<()> {
        let span = self.obs.start();
        self.stats.forces += 1;
        if self.opts.durability == Durability::FsyncPerForce {
            self.flush_track()?;
            self.stream.sync()?;
            self.stats.fsyncs += 1;
        }
        // Trace the durability point, keyed by the client's stored high
        // LSN — the LSN the server will acknowledge with `NewHighLsn`.
        let hi = self.table.last(client).map_or(0, |iv| iv.hi.0);
        self.obs.event(dlog_obs::Stage::Force, hi, client.0);
        self.obs.sample_since(dlog_obs::Stage::Force, span);
        Ok(())
    }

    /// Satisfy forces for several clients with **one** physical
    /// durability round (group commit): under
    /// [`Durability::FsyncPerForce`] the track is flushed and fsynced
    /// once for the whole batch; under [`Durability::Nvram`] everything
    /// is already durable. Either way a `Force` trace event is emitted
    /// per client — the ack invariant needs a durability point for every
    /// client whose `NewHighLsn` the caller fans out afterwards.
    ///
    /// # Errors
    /// Propagates I/O failures; on error **no** client in the batch may
    /// be acknowledged.
    pub fn force_batch(&mut self, clients: &[ClientId]) -> Result<()> {
        if clients.is_empty() {
            return Ok(());
        }
        let span = self.obs.start();
        self.stats.forces += clients.len() as u64;
        if self.opts.durability == Durability::FsyncPerForce {
            self.flush_track()?;
            self.stream.sync()?;
            self.stats.fsyncs += 1;
        }
        for client in clients {
            let hi = self.table.last(*client).map_or(0, |iv| iv.hi.0);
            self.obs.event(dlog_obs::Stage::Force, hi, client.0);
        }
        self.obs.sample_since(dlog_obs::Stage::Force, span);
        Ok(())
    }

    /// Read the record with the highest epoch at `lsn` for `client`
    /// (the `ServerReadLog` operation). `Ok(None)` when the server does
    /// not store the LSN.
    ///
    /// # Errors
    /// Propagates I/O failures and frame corruption.
    pub fn read(&mut self, client: ClientId, lsn: Lsn) -> Result<Option<LogRecord>> {
        self.stats.reads += 1;
        let Some((_, pos)) = self.table.lookup(client, lsn) else {
            return Ok(None);
        };
        let frame = self.read_frame_at(pos)?;
        match frame {
            Frame::Record {
                client: c, record, ..
            } if c == client && record.lsn == lsn => Ok(Some(record)),
            _ => Err(DlogError::Corrupt(
                "LSN index points at a foreign frame".into(),
            )),
        }
    }

    /// Stage a `CopyLog` record for `client` (§4.2): stored durably but
    /// not visible until [`LogStore::install_copies`] commits its epoch.
    ///
    /// # Errors
    /// Propagates I/O failures; rejects epochs at or below the client's
    /// newest installed epoch.
    pub fn stage_copy(&mut self, client: ClientId, record: &LogRecord) -> Result<()> {
        if let Some(last) = self.table.last(client) {
            if record.epoch <= last.epoch {
                return Err(DlogError::StaleEpoch {
                    given: record.epoch,
                    current: last.epoch,
                });
            }
        }
        let pos = self.append_position();
        self.put_frame(&Frame::Record {
            client,
            record: record.share(),
            staged: true,
        })?;
        let slot = self
            .staged
            .entry(client)
            .or_default()
            .entry(record.epoch)
            .or_default();
        // A retried CopyLog may stage the same LSN twice; the newest copy
        // wins so InstallCopies stays well-formed.
        slot.retain(|(r, _)| r.lsn != record.lsn);
        slot.push((record.share(), pos));
        self.stats.records_written += 1;
        self.stats.bytes_written += record.data.len() as u64;
        Ok(())
    }

    /// Atomically install every staged record `client` copied with
    /// `epoch` (the `InstallCopies` operation, §4.2).
    ///
    /// # Errors
    /// Fails when nothing is staged for the epoch, or on I/O failure.
    pub fn install_copies(&mut self, client: ClientId, epoch: Epoch) -> Result<()> {
        let Some(per_epoch) = self.staged.get_mut(&client) else {
            return Err(DlogError::Protocol("no staged records for client".into()));
        };
        let Some(mut records) = per_epoch.remove(&epoch) else {
            return Err(DlogError::Protocol(
                "no staged records for client at this epoch".into(),
            ));
        };
        // The commit point: a durable install frame. Recovery replays the
        // installation when it sees this frame after the staged records.
        self.put_frame(&Frame::Install { client, epoch })?;
        records.sort_by_key(|(r, _)| r.lsn);
        for (record, pos) in records {
            self.table
                .append(client, record.lsn, record.epoch, pos)
                .map_err(DlogError::Protocol)?;
        }
        self.maybe_checkpoint()?;
        Ok(())
    }

    /// The `IntervalList` operation (§3.1.1): every installed interval
    /// stored for `client`.
    #[must_use]
    pub fn interval_list(&self, client: ClientId) -> IntervalList {
        self.table.interval_list(client)
    }

    /// Highest installed `<LSN, epoch>` for `client`.
    #[must_use]
    pub fn last_interval(&self, client: ClientId) -> Option<Interval> {
        self.table.last(client)
    }

    /// All clients with installed records.
    #[must_use]
    pub fn clients(&self) -> Vec<ClientId> {
        let mut v: Vec<_> = self.table.clients().collect();
        v.sort_unstable();
        v
    }

    /// Flush the pending NVRAM track to the stream (does not fsync unless
    /// the store is configured to).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn flush_track(&mut self) -> Result<()> {
        // Stage the pending track through the reused scratch (taken out
        // so the borrow checker lets the stream helpers borrow `self`);
        // the steady-state force path copies, it does not allocate.
        let mut pending = std::mem::take(&mut self.scratch);
        let base = self.nvram.pending_into(&mut pending);
        if pending.is_empty() {
            self.scratch = pending;
            return Ok(());
        }
        let span = self.obs.start();
        debug_assert_eq!(base, self.stream.end(), "stream/nvram positions diverged");
        let result = self.flush_track_inner(base, &pending, span);
        self.scratch = pending;
        result
    }

    fn flush_track_inner(
        &mut self,
        base: u64,
        pending: &[u8],
        span: Option<std::time::Instant>,
    ) -> Result<()> {
        self.stream.write_at(base, pending)?;
        if self.opts.fsync {
            self.stream.sync()?;
            self.stats.fsyncs += 1;
        }
        self.nvram.retire(pending.len());
        self.seal = self.nvram.seal();
        self.stats.tracks_flushed += 1;
        self.bytes_since_ckpt += pending.len() as u64;
        // Track retirement is the disk half of the force path; its
        // latency lands in the same `Force` histogram (no trace event —
        // flushes are not client-attributable).
        self.obs.sample_since(dlog_obs::Stage::Force, span);
        Ok(())
    }

    /// Flush everything and fsync; used for clean shutdown.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn sync(&mut self) -> Result<()> {
        self.flush_track()?;
        self.stream.sync()?;
        Ok(())
    }

    /// Drop stream segments wholly below `pos` (§5.3 space management).
    /// The interval table forgets the dropped records, so later reads of
    /// them report "not stored" (the client reads another holder, or the
    /// record has moved offline per the dump policy).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn drop_log_before(&mut self, pos: u64) -> Result<u64> {
        let new_start = self.stream.drop_before(pos)?;
        self.table.prune_below(new_start);
        Ok(new_start)
    }

    /// §5.3 retention enforcement: when the live stream exceeds
    /// `max_bytes`, drop whole old segments until it fits (as closely as
    /// segment granularity allows) and refresh the checkpoint so recovery
    /// never references dropped positions.
    ///
    /// When archival is configured ([`LogStore::enable_archival`]), a
    /// sealed segment is only droppable once it is confirmed archived:
    /// the cut is clamped to the archived watermark and whatever could
    /// not be freed is reported as `pending` instead of being lost.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn enforce_retention(&mut self, max_bytes: u64) -> Result<RetentionReport> {
        if self.staged.values().any(|m| !m.is_empty()) {
            return Err(DlogError::Protocol(
                "cannot enforce retention with staged CopyLog records; retry after install".into(),
            ));
        }
        self.flush_track()?;
        let live = self.on_disk_bytes();
        if live <= max_bytes {
            return Ok(RetentionReport::default());
        }
        let desired = self.stream.end().saturating_sub(max_bytes);
        let cut = match self.archived_to {
            // Never outrun the archiver: unarchived bytes are the only
            // durable copy this server holds.
            Some(watermark) => desired.min(watermark),
            None => desired,
        };
        let before = self.stream.start();
        let mut freed = 0;
        if cut > before {
            let new_start = self.stream.drop_before(cut)?;
            self.table.prune_below(new_start);
            // The first surviving segment may begin mid-frame (frames span
            // segment boundaries), so a raw scan from the new start would
            // misread the stream as torn. A file checkpoint records both the
            // pruned table and the next frame-aligned scan position; recovery
            // must start from it, so it is written unconditionally — even in
            // write-once checkpoint mode, where deleting segments has already
            // left pure write-once behind.
            self.checkpoint_to_file()?;
            freed = new_start - before;
        }
        let pending = self.on_disk_bytes().saturating_sub(max_bytes);
        Ok(RetentionReport { freed, pending })
    }

    /// Bytes currently occupied by live segments.
    #[must_use]
    pub fn on_disk_bytes(&self) -> u64 {
        self.stream.end() - self.stream.start()
    }

    // --- Archive-tier surface -------------------------------------------
    //
    // The archiver (crates/archive) is an external observer: it reads
    // sealed stream bytes, replays frames to maintain its own prefix
    // table, and reports back how far the archive has caught up so
    // retention never drops the only durable copy.

    /// Configured segment capacity.
    #[must_use]
    pub fn segment_bytes(&self) -> u64 {
        self.stream.segment_bytes()
    }

    /// Logical start of the on-disk stream.
    #[must_use]
    pub fn stream_start(&self) -> u64 {
        self.stream.start()
    }

    /// Logical end of the on-disk stream (excludes NVRAM-only bytes).
    #[must_use]
    pub fn stream_end(&self) -> u64 {
        self.stream.end()
    }

    /// Indices of sealed (full, never written again) live segments.
    #[must_use]
    pub fn sealed_segments(&self) -> Vec<u64> {
        self.stream.sealed_segments()
    }

    /// Frame-aligned position the last recovery scanned from. Scanning
    /// frames from here decodes the whole on-disk tail.
    #[must_use]
    pub fn frame_anchor(&self) -> u64 {
        self.anchor
    }

    /// Read raw stream bytes (on-disk only; the archiver never reads the
    /// NVRAM tail).
    ///
    /// # Errors
    /// Fails when the range is not fully on disk.
    pub fn read_stream(&self, pos: u64, len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_into(pos, len, &mut out)?;
        Ok(out)
    }

    /// Scan on-disk frames from `from`, invoking `f(position, frame)` for
    /// each valid frame. Returns one past the last valid frame.
    ///
    /// # Errors
    /// Propagates I/O failures and structurally corrupt frame bodies.
    pub fn scan_stream<F>(&self, from: u64, f: F) -> Result<u64>
    where
        F: FnMut(u64, Frame),
    {
        self.stream.scan_frames(from, f)
    }

    /// Switch retention into archive-aware mode: from now on
    /// [`LogStore::enforce_retention`] refuses to drop segments above the
    /// archived watermark.
    pub fn enable_archival(&mut self) {
        self.archived_to.get_or_insert(self.stream.start());
    }

    /// Raise the archived watermark: every stream byte below `pos` is
    /// confirmed durable in the archive. Implies archive-aware retention.
    pub fn note_archived(&mut self, pos: u64) {
        let w = self.archived_to.get_or_insert(0);
        *w = (*w).max(pos);
    }

    /// The archived watermark, when archival is configured.
    #[must_use]
    pub fn archived_to(&self) -> Option<u64> {
        self.archived_to
    }

    fn put_frame(&mut self, frame: &Frame) -> Result<()> {
        // Serialize through the store's reused scratch (taken out so the
        // borrow checker lets the helpers borrow `self`): after warm-up
        // the per-record framing cost is a memcpy, not an allocation.
        let mut buf = std::mem::take(&mut self.frame_buf);
        buf.clear();
        buf.reserve(frame.encoded_len());
        frame.encode_into(&mut buf);
        let result = self.put_frame_bytes(&buf);
        self.frame_buf = buf;
        result
    }

    fn put_frame_bytes(&mut self, buf: &[u8]) -> Result<()> {
        if buf.len() > self.nvram.available() {
            self.flush_track()?;
        }
        if buf.len() > self.nvram.capacity() {
            // Oversized frame (streamed bulk data): bypass the buffer.
            // Ordering is preserved because the track was just flushed.
            let pos = self.stream.append(buf)?;
            if self.opts.fsync {
                self.stream.sync()?;
                self.stats.fsyncs += 1;
            }
            self.bytes_since_ckpt += buf.len() as u64;
            self.nvram.format(pos + buf.len() as u64);
            self.seal = self.nvram.seal();
            return Ok(());
        }
        if self.opts.guarded_nvram {
            // §5.1 guarded write: prove this insert was computed from the
            // device's previous state. A mismatch means foreign code wrote
            // the NVRAM behind our back — treat the buffer as corrupt.
            match self.nvram.insert_guarded(self.seal, buf) {
                Ok(new_seal) => self.seal = new_seal,
                Err(crate::nvram::GuardError::Mismatch(m)) => {
                    return Err(DlogError::GuardViolation {
                        presented: m.presented,
                        current: m.current,
                    })
                }
                Err(crate::nvram::GuardError::Full(e)) => {
                    return Err(DlogError::NvramFull {
                        requested: e.requested,
                        available: e.available,
                    })
                }
            }
        } else {
            self.nvram.insert(buf).map_err(|e| DlogError::NvramFull {
                requested: e.requested,
                available: e.available,
            })?;
        }
        if self.nvram.pending_len() >= self.opts.track_bytes {
            self.flush_track()?;
        }
        Ok(())
    }

    fn read_frame_at(&mut self, pos: u64) -> Result<Frame> {
        self.read_bytes_into_scratch(pos, 8)?;
        let body_len = dlog_types::bytes::u32_le_at(&self.scratch, 0)
            .ok_or_else(|| DlogError::Corrupt("short frame envelope".into()))?
            as usize;
        let total = 8 + body_len;
        self.read_bytes_into_scratch(pos, total)?;
        match Frame::decode(&self.scratch)? {
            Some((frame, _)) => Ok(frame),
            None => Err(DlogError::Corrupt("unreadable frame".into())),
        }
    }

    /// Fill `self.scratch` with `len` bytes at stream position `pos`,
    /// serving from NVRAM for positions past the disk tail. Reusing one
    /// buffer keeps the steady-state read path allocation-free.
    fn read_bytes_into_scratch(&mut self, pos: u64, len: usize) -> Result<()> {
        let disk_end = self.stream.end();
        if pos >= disk_end {
            // Entirely in NVRAM.
            self.nvram
                .read_at_into(pos, len, &mut self.scratch)
                .ok_or_else(|| DlogError::Corrupt("read position not buffered".into()))
        } else {
            Ok(self.stream.read_into(pos, len, &mut self.scratch)?)
        }
    }

    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.opts.checkpoint_every == 0
            || self.bytes_since_ckpt < self.opts.checkpoint_every
            || self.staged.values().any(|m| !m.is_empty())
        {
            return Ok(());
        }
        self.checkpoint()
    }

    /// Write an interval-table checkpoint now. Requires no staged records.
    ///
    /// # Errors
    /// Propagates I/O failures; refuses while CopyLog records are staged.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.staged.values().any(|m| !m.is_empty()) {
            return Err(DlogError::Protocol(
                "cannot checkpoint with staged records".into(),
            ));
        }
        if self.opts.checkpoint_placement == CheckpointPlacement::InStream {
            // Write-once mode: the snapshot rides the stream. Recovery's
            // scan replaces its running table when it passes this frame.
            // The frame owns its body, so this one Vec cannot be staged
            // through the reused scratch; checkpoints are rate-limited by
            // `checkpoint_every`, not per-record.
            let mut body = Vec::new();
            self.table.encode_into(&mut body);
            self.put_frame(&Frame::Checkpoint(body))?;
            self.flush_track()?;
            self.stream.sync()?;
            self.bytes_since_ckpt = 0;
            self.stats.checkpoints += 1;
            return Ok(());
        }
        self.checkpoint_to_file()
    }

    /// Write the file-placed checkpoint (also used by retention
    /// enforcement regardless of the configured placement).
    fn checkpoint_to_file(&mut self) -> Result<()> {
        // The checkpoint covers exactly what is on disk; flush first.
        self.flush_track()?;
        self.stream.sync()?;
        let mut out = std::mem::take(&mut self.scratch);
        encode_checkpoint_image_into(&self.table, self.stream.end(), &mut out);
        let result = self.write_checkpoint_file(&out);
        self.scratch = out;
        result
    }

    fn write_checkpoint_file(&mut self, out: &[u8]) -> Result<()> {
        let tmp = self.dir.join("intervals.ckpt.tmp");
        let fin = self.dir.join("intervals.ckpt");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(out)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &fin)?;
        // Make the rename durable; a failed sync means the checkpoint
        // may not survive a crash, so it must not be reported written.
        if let Ok(d) = File::open(&self.dir) {
            d.sync_data()?;
        }
        self.bytes_since_ckpt = 0;
        self.stats.checkpoints += 1;
        Ok(())
    }
}

fn apply_frame(
    table: &mut IntervalTable,
    staged: &mut StagedMap,
    stats: &mut StoreStats,
    pos: u64,
    frame: Frame,
) -> std::result::Result<(), String> {
    match frame {
        Frame::Record {
            client,
            record,
            staged: false,
        } => {
            table.append(client, record.lsn, record.epoch, pos)?;
            stats.recovered_records += 1;
            Ok(())
        }
        Frame::Record {
            client,
            record,
            staged: true,
        } => {
            let slot = staged
                .entry(client)
                .or_default()
                .entry(record.epoch)
                .or_default();
            slot.retain(|(r, _)| r.lsn != record.lsn);
            slot.push((record, pos));
            stats.recovered_records += 1;
            Ok(())
        }
        Frame::Install { client, epoch } => {
            let mut records = staged
                .get_mut(&client)
                .and_then(|m| m.remove(&epoch))
                .ok_or("install frame without staged records")?;
            records.sort_by_key(|(r, _)| r.lsn);
            for (record, pos) in records {
                table.append(client, record.lsn, record.epoch, pos)?;
            }
            Ok(())
        }
        Frame::Checkpoint(body) => {
            // Write-once mode: the embedded snapshot supersedes whatever
            // the scan has accumulated so far (it covers the same prefix).
            *table = IntervalTable::decode(&body)?;
            Ok(())
        }
    }
}

/// Encode an `intervals.ckpt` image into `out` (cleared first): a table
/// snapshot plus the frame-aligned position recovery should scan from.
/// Written by the store itself (through its reused scratch, so periodic
/// checkpoints do not allocate) and by archive restore (which fabricates
/// the checkpoint that makes a rebuilt directory recoverable).
pub fn encode_checkpoint_image_into(table: &IntervalTable, scan_from: u64, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    out.extend_from_slice(&scan_from.to_le_bytes());
    // Body length and CRC are patched in once the body is serialized —
    // encoding straight into `out` avoids a second staging buffer.
    out.extend_from_slice(&[0u8; 8]);
    let body_start = out.len();
    table.encode_into(out);
    let body_len = out.len() - body_start;
    let crc = crc32(out.get(body_start..).unwrap_or(&[]));
    if let Some(slot) = out.get_mut(body_start - 8..body_start - 4) {
        slot.copy_from_slice(&(body_len as u32).to_le_bytes());
    }
    if let Some(slot) = out.get_mut(body_start - 4..body_start) {
        slot.copy_from_slice(&crc.to_le_bytes());
    }
}

/// Recovery-equivalent frame replay, exposed for the archive tier: an
/// interval table plus staged `CopyLog` state advanced by applying stream
/// frames in order, under exactly the rules crash recovery uses. The
/// archiver persists this state in each manifest so the archived prefix
/// table is always the table a crash at the manifest's cut would recover.
#[derive(Clone, Default)]
pub struct ReplayState {
    table: IntervalTable,
    staged: StagedMap,
    stats: StoreStats,
}

impl ReplayState {
    /// Fresh state (empty table, nothing staged).
    #[must_use]
    pub fn new() -> ReplayState {
        ReplayState::default()
    }

    /// The installed-interval table accumulated so far.
    #[must_use]
    pub fn table(&self) -> &IntervalTable {
        &self.table
    }

    /// Apply one frame read at stream position `pos`.
    ///
    /// # Errors
    /// Returns a description of any storage-order or protocol violation.
    pub fn apply(&mut self, pos: u64, frame: Frame) -> std::result::Result<(), String> {
        apply_frame(
            &mut self.table,
            &mut self.staged,
            &mut self.stats,
            pos,
            frame,
        )
    }

    /// Deterministic serialization (table, then staged records sorted by
    /// client, epoch, LSN).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// [`ReplayState::encode`] into a caller-supplied buffer (cleared
    /// first). Staged records are sorted through borrowed slices — the
    /// record payloads themselves are never copied.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        // Table length prefix is patched in after the table serializes
        // straight into `out`.
        out.extend_from_slice(&[0u8; 4]);
        let table_start = out.len();
        self.table.encode_into(out);
        let table_len = (out.len() - table_start) as u32;
        if let Some(slot) = out.get_mut(table_start - 4..table_start) {
            slot.copy_from_slice(&table_len.to_le_bytes());
        }
        let mut clients: Vec<_> = self.staged.iter().collect();
        clients.sort_by_key(|(c, _)| **c);
        let nonempty = clients
            .iter()
            .filter(|(_, m)| m.values().any(|v| !v.is_empty()))
            .count();
        out.extend_from_slice(&(nonempty as u32).to_le_bytes());
        for (client, per_epoch) in clients {
            if !per_epoch.values().any(|v| !v.is_empty()) {
                continue;
            }
            out.extend_from_slice(&client.0.to_le_bytes());
            let mut epochs: Vec<_> = per_epoch.iter().filter(|(_, v)| !v.is_empty()).collect();
            epochs.sort_by_key(|(e, _)| **e);
            out.extend_from_slice(&(epochs.len() as u32).to_le_bytes());
            for (epoch, records) in epochs {
                out.extend_from_slice(&epoch.0.to_le_bytes());
                let mut records: Vec<&(LogRecord, u64)> = records.iter().collect();
                records.sort_by_key(|(r, _)| r.lsn);
                out.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for (r, pos) in records {
                    out.extend_from_slice(&r.lsn.0.to_le_bytes());
                    out.extend_from_slice(&r.epoch.0.to_le_bytes());
                    out.push(u8::from(r.present));
                    out.extend_from_slice(&(r.data.len() as u32).to_le_bytes());
                    out.extend_from_slice(r.data.as_bytes());
                    out.extend_from_slice(&pos.to_le_bytes());
                }
            }
        }
    }

    /// Decode a serialized state.
    ///
    /// # Errors
    /// Returns a description of any structural problem.
    pub fn decode(bytes: &[u8]) -> std::result::Result<ReplayState, String> {
        let mut r = Reader(bytes);
        let table_len = r.u32()? as usize;
        let table = IntervalTable::decode(r.take(table_len)?)?;
        let mut staged = StagedMap::new();
        let nclients = r.u32()?;
        for _ in 0..nclients {
            let client = ClientId(r.u64()?);
            let nepochs = r.u32()?;
            let per_epoch = staged.entry(client).or_default();
            for _ in 0..nepochs {
                let epoch = Epoch(r.u64()?);
                let nrecords = r.u32()?;
                let slot = per_epoch.entry(epoch).or_default();
                for _ in 0..nrecords {
                    let lsn = Lsn(r.u64()?);
                    let repoch = Epoch(r.u64()?);
                    let present = r.u8()? != 0;
                    let dlen = r.u32()? as usize;
                    let data = r.take(dlen)?.to_vec();
                    let pos = r.u64()?;
                    let record = if present {
                        LogRecord::present(lsn, repoch, data)
                    } else {
                        LogRecord::not_present(lsn, repoch)
                    };
                    slot.push((record, pos));
                }
            }
        }
        Ok(ReplayState {
            table,
            staged,
            stats: StoreStats::default(),
        })
    }
}

/// Bounds-checked little-endian cursor for `ReplayState::decode`.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], String> {
        if self.0.len() < n {
            return Err("replay state truncated".into());
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> std::result::Result<u8, String> {
        dlog_types::bytes::u8_at(self.take(1)?, 0).ok_or_else(|| "replay state truncated".into())
    }

    fn u32(&mut self) -> std::result::Result<u32, String> {
        dlog_types::bytes::u32_le_at(self.take(4)?, 0)
            .ok_or_else(|| "replay state truncated".into())
    }

    fn u64(&mut self) -> std::result::Result<u64, String> {
        dlog_types::bytes::u64_le_at(self.take(8)?, 0)
            .ok_or_else(|| "replay state truncated".into())
    }
}

fn load_checkpoint(dir: &Path) -> Option<(IntervalTable, u64)> {
    let mut f = File::open(dir.join("intervals.ckpt")).ok()?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).ok()?;
    if bytes.len() < 24 {
        return None;
    }
    let magic = dlog_types::bytes::u32_le_at(&bytes, 0)?;
    if magic != CKPT_MAGIC {
        return None;
    }
    let scan_from = dlog_types::bytes::u64_le_at(&bytes, 4)?;
    let len = dlog_types::bytes::u32_le_at(&bytes, 12)? as usize;
    let crc = dlog_types::bytes::u32_le_at(&bytes, 16)?;
    let body = bytes.get(20..20 + len)?;
    if crc32(body) != crc {
        return None;
    }
    let table = IntervalTable::decode(body).ok()?;
    Some((table, scan_from))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(lsn: u64, epoch: u64, byte: u8) -> LogRecord {
        LogRecord::present(Lsn(lsn), Epoch(epoch), vec![byte; 64])
    }

    fn small_opts() -> StoreOptions {
        StoreOptions {
            track_bytes: 512,
            segment_bytes: 4096,
            fsync: false, // tests run on tmpfs-style dirs; E4 measures fsync
            durability: Durability::Nvram,
            checkpoint_every: 0,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        let nvram = NvramDevice::new(4096);
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        let c = ClientId(1);
        for i in 1..=20u64 {
            store.write(c, &rec(i, 1, i as u8)).unwrap();
        }
        for i in 1..=20u64 {
            let r = store.read(c, Lsn(i)).unwrap().unwrap();
            assert_eq!(r.data.as_bytes(), &[i as u8; 64]);
            assert!(r.present);
        }
        assert_eq!(store.read(c, Lsn(21)).unwrap(), None);
        assert_eq!(store.interval_list(c).len(), 1);
    }

    #[test]
    fn reads_served_from_nvram_before_flush() {
        let dir = tmpdir("nvramread");
        let nvram = NvramDevice::new(1 << 16);
        let mut opts = small_opts();
        opts.track_bytes = 1 << 16; // never auto-flush
        let mut store = LogStore::open(&dir, opts, nvram).unwrap();
        store.write(ClientId(1), &rec(1, 1, 9)).unwrap();
        assert_eq!(store.stats().tracks_flushed, 0);
        let r = store.read(ClientId(1), Lsn(1)).unwrap().unwrap();
        assert_eq!(r.data.as_bytes(), &[9u8; 64]);
    }

    #[test]
    fn clean_restart_recovers_all() {
        let dir = tmpdir("restart");
        let nvram = NvramDevice::new(4096);
        {
            let mut store = LogStore::open(&dir, small_opts(), nvram.clone()).unwrap();
            for i in 1..=50u64 {
                store.write(ClientId(1), &rec(i, 2, i as u8)).unwrap();
            }
            store.sync().unwrap();
        }
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        for i in 1..=50u64 {
            assert!(
                store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
                "lsn {i}"
            );
        }
        let list = store.interval_list(ClientId(1));
        assert_eq!(list.last().unwrap().hi, Lsn(50));
    }

    #[test]
    fn crash_with_nvram_loses_nothing() {
        let dir = tmpdir("crash-nvram");
        let nvram = NvramDevice::new(1 << 16);
        let mut opts = small_opts();
        opts.track_bytes = 1 << 16; // keep everything in NVRAM
        {
            let mut store = LogStore::open(&dir, opts.clone(), nvram.clone()).unwrap();
            for i in 1..=30u64 {
                store.write(ClientId(1), &rec(i, 1, i as u8)).unwrap();
            }
            store.force(ClientId(1)).unwrap();
            assert_eq!(store.stats().tracks_flushed, 0, "nothing reached disk");
            // Crash: drop without sync. The NVRAM device survives.
        }
        let mut store = LogStore::open(&dir, opts, nvram.clone()).unwrap();
        assert!(store.stats().nvram_replayed_bytes > 0);
        for i in 1..=30u64 {
            let r = store.read(ClientId(1), Lsn(i)).unwrap().unwrap();
            assert_eq!(r.data.as_bytes(), &[i as u8; 64], "lsn {i}");
        }
        assert_eq!(nvram.pending_len(), 0, "replayed data was retired");
    }

    #[test]
    fn crash_replays_partial_overlap() {
        // Track flushed to disk, then more records inserted, then crash:
        // NVRAM holds only the unflushed suffix; recovery must splice it.
        let dir = tmpdir("crash-overlap");
        let nvram = NvramDevice::new(1 << 16);
        let mut opts = small_opts();
        opts.track_bytes = 200; // flush roughly every other record
        {
            let mut store = LogStore::open(&dir, opts.clone(), nvram.clone()).unwrap();
            for i in 1..=25u64 {
                store.write(ClientId(1), &rec(i, 1, i as u8)).unwrap();
            }
            // Crash without the final flush.
        }
        let mut store = LogStore::open(&dir, opts, nvram).unwrap();
        for i in 1..=25u64 {
            assert!(
                store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
                "lsn {i}"
            );
        }
    }

    #[test]
    fn torn_disk_tail_is_overwritten_by_nvram() {
        let dir = tmpdir("torn-tail");
        let nvram = NvramDevice::new(1 << 16);
        let mut opts = small_opts();
        opts.track_bytes = 1 << 16;
        let disk_end;
        {
            let mut store = LogStore::open(&dir, opts.clone(), nvram.clone()).unwrap();
            for i in 1..=10u64 {
                store.write(ClientId(1), &rec(i, 1, i as u8)).unwrap();
            }
            // Simulate a torn track write: the OS wrote a prefix of the
            // track before power failed, and NVRAM still has everything.
            let (base, pending) = nvram.pending();
            assert_eq!(base, 0);
            disk_end = pending.len() / 2;
            let mut s = SegmentedStream::open(&dir, opts.segment_bytes).unwrap();
            s.write_at(0, &pending[..disk_end]).unwrap();
            // Crash before retire.
        }
        let mut store = LogStore::open(&dir, opts, nvram).unwrap();
        for i in 1..=10u64 {
            assert!(
                store.read(ClientId(1), Lsn(i)).unwrap().is_some(),
                "lsn {i}"
            );
        }
        assert!(store.stats().nvram_replayed_bytes > 0);
    }

    #[test]
    fn staged_copies_invisible_until_install() {
        let dir = tmpdir("staged");
        let nvram = NvramDevice::new(1 << 16);
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        let c = ClientId(1);
        for i in 1..=5u64 {
            store.write(c, &rec(i, 1, 1)).unwrap();
        }
        // Stage a recovery rewrite of LSN 5 plus a not-present LSN 6.
        store.stage_copy(c, &rec(5, 2, 2)).unwrap();
        store
            .stage_copy(c, &LogRecord::not_present(Lsn(6), Epoch(2)))
            .unwrap();

        // Still invisible.
        let list = store.interval_list(c);
        assert_eq!(list.last().unwrap().hi, Lsn(5));
        assert_eq!(list.last().unwrap().epoch, Epoch(1));
        assert_eq!(store.read(c, Lsn(6)).unwrap(), None);

        store.install_copies(c, Epoch(2)).unwrap();
        let list = store.interval_list(c);
        assert_eq!(list.len(), 2);
        assert_eq!(
            list.last().unwrap(),
            Interval::new(Epoch(2), Lsn(5), Lsn(6))
        );
        let r5 = store.read(c, Lsn(5)).unwrap().unwrap();
        assert_eq!(r5.epoch, Epoch(2));
        let r6 = store.read(c, Lsn(6)).unwrap().unwrap();
        assert!(!r6.present);
    }

    #[test]
    fn stage_rejects_stale_epoch() {
        let dir = tmpdir("stale");
        let nvram = NvramDevice::new(1 << 16);
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        let c = ClientId(1);
        store.write(c, &rec(1, 3, 1)).unwrap();
        assert!(matches!(
            store.stage_copy(c, &rec(1, 3, 2)),
            Err(DlogError::StaleEpoch { .. })
        ));
        assert!(matches!(
            store.stage_copy(c, &rec(1, 2, 2)),
            Err(DlogError::StaleEpoch { .. })
        ));
    }

    #[test]
    fn install_without_stage_fails() {
        let dir = tmpdir("no-stage");
        let nvram = NvramDevice::new(1 << 16);
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        assert!(store.install_copies(ClientId(1), Epoch(1)).is_err());
    }

    #[test]
    fn crash_between_stage_and_install_discards() {
        let dir = tmpdir("staged-crash");
        let nvram = NvramDevice::new(1 << 16);
        {
            let mut store = LogStore::open(&dir, small_opts(), nvram.clone()).unwrap();
            store.write(ClientId(1), &rec(1, 1, 1)).unwrap();
            store.stage_copy(ClientId(1), &rec(1, 2, 2)).unwrap();
            store.sync().unwrap();
            // Crash before install.
        }
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        // The staged copy is still pending, not installed.
        let r = store.read(ClientId(1), Lsn(1)).unwrap().unwrap();
        assert_eq!(r.epoch, Epoch(1));
        // And the client may complete the installation now.
        store.install_copies(ClientId(1), Epoch(2)).unwrap();
        let r = store.read(ClientId(1), Lsn(1)).unwrap().unwrap();
        assert_eq!(r.epoch, Epoch(2));
    }

    #[test]
    fn crash_after_install_preserves_installation() {
        let dir = tmpdir("installed-crash");
        let nvram = NvramDevice::new(1 << 16);
        {
            let mut store = LogStore::open(&dir, small_opts(), nvram.clone()).unwrap();
            store.write(ClientId(1), &rec(1, 1, 1)).unwrap();
            store.stage_copy(ClientId(1), &rec(1, 2, 2)).unwrap();
            store.install_copies(ClientId(1), Epoch(2)).unwrap();
            store.sync().unwrap();
        }
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        let r = store.read(ClientId(1), Lsn(1)).unwrap().unwrap();
        assert_eq!(r.epoch, Epoch(2));
    }

    #[test]
    fn checkpoint_accelerates_recovery() {
        let dir = tmpdir("ckpt");
        let nvram = NvramDevice::new(1 << 16);
        let mut opts = small_opts();
        opts.checkpoint_every = 1; // checkpoint at every opportunity
        {
            let mut store = LogStore::open(&dir, opts.clone(), nvram.clone()).unwrap();
            for i in 1..=40u64 {
                store.write(ClientId(1), &rec(i, 1, 1)).unwrap();
            }
            assert!(store.stats().checkpoints > 0);
            store.sync().unwrap();
        }
        let mut store = LogStore::open(&dir, opts, nvram).unwrap();
        // Most records came from the checkpoint, not the scan.
        assert!(
            store.stats().recovered_records < 40,
            "scan rebuilt {} records despite checkpoint",
            store.stats().recovered_records
        );
        for i in 1..=40u64 {
            assert!(store.read(ClientId(1), Lsn(i)).unwrap().is_some());
        }
    }

    #[test]
    fn oversized_record_bypasses_nvram() {
        let dir = tmpdir("oversize");
        let nvram = NvramDevice::new(512);
        let mut opts = small_opts();
        opts.track_bytes = 512;
        let mut store = LogStore::open(&dir, opts, nvram).unwrap();
        let big = LogRecord::present(Lsn(1), Epoch(1), vec![7u8; 10_000]);
        store.write(ClientId(1), &big).unwrap();
        store.write(ClientId(1), &rec(2, 1, 3)).unwrap();
        let r = store.read(ClientId(1), Lsn(1)).unwrap().unwrap();
        assert_eq!(r.data.len(), 10_000);
        assert!(store.read(ClientId(1), Lsn(2)).unwrap().is_some());
    }

    #[test]
    fn multi_client_interleaving() {
        let dir = tmpdir("interleave");
        let nvram = NvramDevice::new(1 << 16);
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        for i in 1..=30u64 {
            for c in 1..=5u64 {
                store.write(ClientId(c), &rec(i, 1, c as u8)).unwrap();
            }
        }
        for c in 1..=5u64 {
            for i in 1..=30u64 {
                let r = store.read(ClientId(c), Lsn(i)).unwrap().unwrap();
                assert_eq!(r.data.as_bytes()[0], c as u8);
            }
        }
        assert_eq!(store.clients().len(), 5);
    }

    #[test]
    fn write_rejects_order_violations() {
        let dir = tmpdir("order");
        let nvram = NvramDevice::new(1 << 16);
        let mut store = LogStore::open(&dir, small_opts(), nvram).unwrap();
        store.write(ClientId(1), &rec(5, 2, 1)).unwrap();
        assert!(store.write(ClientId(1), &rec(5, 2, 1)).is_err());
        assert!(store.write(ClientId(1), &rec(4, 2, 1)).is_err());
        assert!(store.write(ClientId(1), &rec(6, 1, 1)).is_err());
    }
}
