//! CRC-32 (IEEE 802.3 polynomial), hand-rolled to keep the workspace
//! dependency-free. Used to detect torn track writes in the log stream:
//! §4.1 requires tracks to be written as single large transfers, and a
//! power failure mid-transfer must be detectable at recovery.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental interface: feed `data` into a running CRC state.
///
/// Start from `0xFFFF_FFFF`, finish by XOR-ing with `0xFFFF_FFFF`.
#[must_use]
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// Streaming CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Final digest.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.write(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"some log record payload".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), original, "undetected flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
