//! CRC-32 (IEEE 802.3 polynomial), hand-rolled to keep the workspace
//! dependency-free. Used to detect torn track writes in the log stream:
//! §4.1 requires tracks to be written as single large transfers, and a
//! power failure mid-transfer must be detectable at recovery.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables (slice-by-8), built at compile time:
/// the hot loop folds eight bytes per step instead of paying one
/// dependent lookup per byte, and a track force CRCs the whole transfer.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    // t[j][i] extends t[j-1][i] by one zero byte, so folding eight bytes
    // through t[7]..t[0] equals eight sequential t[0] steps.
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

/// Guarded table probe: the index is masked to 0..256 so the `None` arm
/// is unreachable and the whole call compiles to a plain load.
#[inline(always)]
fn lut(table: &[u32; 256], idx: u32) -> u32 {
    match table.get((idx & 0xFF) as usize) {
        Some(v) => *v,
        None => 0,
    }
}

/// Compute the CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental interface: feed `data` into a running CRC state.
///
/// Start from `0xFFFF_FFFF`, finish by XOR-ing with `0xFFFF_FFFF`.
#[must_use]
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    let [t0, t1, t2, t3, t4, t5, t6, t7] = &TABLES;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let &[b0, b1, b2, b3, b4, b5, b6, b7] = c else {
            break; // unreachable: chunks_exact yields 8-byte slices
        };
        let lo = state ^ u32::from_le_bytes([b0, b1, b2, b3]);
        let hi = u32::from_le_bytes([b4, b5, b6, b7]);
        state = lut(t7, lo)
            ^ lut(t6, lo >> 8)
            ^ lut(t5, lo >> 16)
            ^ lut(t4, lo >> 24)
            ^ lut(t3, hi)
            ^ lut(t2, hi >> 8)
            ^ lut(t1, hi >> 16)
            ^ lut(t0, hi >> 24);
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ lut(t0, state ^ u32::from(b));
    }
    state
}

/// Streaming CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Final digest.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.write(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"some log record payload".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), original, "undetected flip at {byte}:{bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
