//! Frame encoding for the on-disk log stream.
//!
//! The stream interleaves records from many clients (§4.1), so every frame
//! is self-describing: a length, a CRC-32 over the frame body, a kind tag,
//! and a kind-specific body. Recovery scans frames sequentially and stops
//! at the first frame whose length or CRC is invalid — everything after a
//! torn track write is discarded.

use dlog_types::bytes::{slice_at, u32_le_at, u64_le_at, u8_at};
use dlog_types::{ClientId, DlogError, Epoch, LogData, LogRecord, Lsn, Result};

use crate::crc::crc32;

/// Upper bound on a single frame body; protects recovery scans from
/// reading absurd lengths out of corrupt headers.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Byte overhead of the frame envelope (`len` + `crc`).
pub const ENVELOPE_BYTES: usize = 8;

const KIND_RECORD: u8 = 1;
const KIND_INSTALL: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;

const FLAG_PRESENT: u8 = 0b01;
const FLAG_STAGED: u8 = 0b10;

/// A frame in the log stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A log record stored for `client`. `staged` marks `CopyLog` rewrites
    /// that only take effect once an [`Frame::Install`] frame with the same
    /// epoch is seen (§4.2).
    Record {
        /// Owning client node.
        client: ClientId,
        /// The stored record.
        record: LogRecord,
        /// True for CopyLog frames awaiting InstallCopies.
        staged: bool,
    },
    /// Commit marker for all staged records `client` wrote with `epoch`.
    Install {
        /// Owning client node.
        client: ClientId,
        /// Epoch whose staged records become visible.
        epoch: Epoch,
    },
    /// An interval-table checkpoint embedded in the stream (the write-once
    /// medium option of §4.3); the payload is produced by
    /// [`crate::intervals::IntervalTable::encode`].
    Checkpoint(Vec<u8>),
}

impl Frame {
    /// Serialize the frame (envelope included) onto `out`, returning the
    /// encoded length.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.extend_from_slice(&[0u8; ENVELOPE_BYTES]); // len + crc, patched below
        match self {
            Frame::Record {
                client,
                record,
                staged,
            } => {
                out.push(KIND_RECORD);
                out.extend_from_slice(&client.0.to_le_bytes());
                out.extend_from_slice(&record.lsn.0.to_le_bytes());
                out.extend_from_slice(&record.epoch.0.to_le_bytes());
                let mut flags = 0u8;
                if record.present {
                    flags |= FLAG_PRESENT;
                }
                if *staged {
                    flags |= FLAG_STAGED;
                }
                out.push(flags);
                out.extend_from_slice(&(record.data.len() as u32).to_le_bytes());
                out.extend_from_slice(record.data.as_bytes());
            }
            Frame::Install { client, epoch } => {
                out.push(KIND_INSTALL);
                out.extend_from_slice(&client.0.to_le_bytes());
                out.extend_from_slice(&epoch.0.to_le_bytes());
            }
            Frame::Checkpoint(payload) => {
                out.push(KIND_CHECKPOINT);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
        }
        let body_len = out.len() - start - ENVELOPE_BYTES;
        let crc = crc32(out.get(start + ENVELOPE_BYTES..).unwrap_or(&[]));
        if let Some(slot) = out.get_mut(start..start + 4) {
            slot.copy_from_slice(&(body_len as u32).to_le_bytes());
        }
        if let Some(slot) = out.get_mut(start + 4..start + 8) {
            slot.copy_from_slice(&crc.to_le_bytes());
        }
        out.len() - start
    }

    /// Serialized size of the frame, envelope included.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        ENVELOPE_BYTES
            + match self {
                Frame::Record { record, .. } => 1 + 8 + 8 + 8 + 1 + 4 + record.data.len(),
                Frame::Install { .. } => 1 + 8 + 8,
                Frame::Checkpoint(p) => 1 + 4 + p.len(),
            }
    }

    /// Decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` does not begin with a complete, valid
    /// frame — recovery treats that as the end of the usable stream.
    ///
    /// # Errors
    /// Returns [`DlogError::Corrupt`] only for *structurally impossible*
    /// content within a CRC-valid frame (which indicates a software bug or
    /// deliberate tampering rather than a torn write).
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>> {
        let (Some(body_len), Some(expected_crc)) = (u32_le_at(buf, 0), u32_le_at(buf, 4)) else {
            return Ok(None);
        };
        let body_len = body_len as usize;
        if body_len == 0 || body_len > MAX_FRAME_BYTES {
            return Ok(None);
        }
        let total = ENVELOPE_BYTES + body_len;
        let Some(body) = slice_at(buf, ENVELOPE_BYTES, body_len) else {
            return Ok(None);
        };
        if crc32(body) != expected_crc {
            return Ok(None);
        }
        let frame = Self::decode_body(body)?;
        Ok(Some((frame, total)))
    }

    fn decode_body(body: &[u8]) -> Result<Frame> {
        let corrupt = |msg: &str| DlogError::Corrupt(msg.into());
        let kind = u8_at(body, 0).ok_or_else(|| corrupt("empty frame body"))?;
        let rest = body.get(1..).unwrap_or(&[]);
        match kind {
            KIND_RECORD => {
                let short = || corrupt("short record frame");
                let client = ClientId(u64_le_at(rest, 0).ok_or_else(short)?);
                let lsn = Lsn(u64_le_at(rest, 8).ok_or_else(short)?);
                let epoch = Epoch(u64_le_at(rest, 16).ok_or_else(short)?);
                let flags = u8_at(rest, 24).ok_or_else(short)?;
                let data_len = u32_le_at(rest, 25).ok_or_else(short)? as usize;
                if rest.len() != 29 + data_len {
                    return Err(corrupt("record frame length mismatch"));
                }
                let data = LogData::from(slice_at(rest, 29, data_len).ok_or_else(short)?);
                let record = LogRecord {
                    lsn,
                    epoch,
                    present: flags & FLAG_PRESENT != 0,
                    data,
                };
                Ok(Frame::Record {
                    client,
                    record,
                    staged: flags & FLAG_STAGED != 0,
                })
            }
            KIND_INSTALL => {
                if rest.len() != 16 {
                    return Err(corrupt("bad install frame length"));
                }
                let bad = || corrupt("bad install frame length");
                let client = ClientId(u64_le_at(rest, 0).ok_or_else(bad)?);
                let epoch = Epoch(u64_le_at(rest, 8).ok_or_else(bad)?);
                Ok(Frame::Install { client, epoch })
            }
            KIND_CHECKPOINT => {
                let len =
                    u32_le_at(rest, 0).ok_or_else(|| corrupt("short checkpoint frame"))? as usize;
                if rest.len() != 4 + len {
                    return Err(corrupt("checkpoint frame length mismatch"));
                }
                Ok(Frame::Checkpoint(rest.get(4..).unwrap_or(&[]).to_vec()))
            }
            _ => Err(corrupt("unknown frame kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_frame(lsn: u64, staged: bool) -> Frame {
        Frame::Record {
            client: ClientId(7),
            record: LogRecord::present(Lsn(lsn), Epoch(3), vec![0xAB; 100]),
            staged,
        }
    }

    #[test]
    fn roundtrip_record() {
        for staged in [false, true] {
            let f = record_frame(42, staged);
            let mut buf = Vec::new();
            let n = f.encode_into(&mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(n, f.encoded_len());
            let (decoded, consumed) = Frame::decode(&buf).unwrap().unwrap();
            assert_eq!(consumed, n);
            assert_eq!(decoded, f);
        }
    }

    #[test]
    fn roundtrip_not_present() {
        let f = Frame::Record {
            client: ClientId(1),
            record: LogRecord::not_present(Lsn(10), Epoch(4)),
            staged: false,
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        let (decoded, _) = Frame::decode(&buf).unwrap().unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn roundtrip_install_and_checkpoint() {
        for f in [
            Frame::Install {
                client: ClientId(9),
                epoch: Epoch(12),
            },
            Frame::Checkpoint(vec![1, 2, 3, 4, 5]),
            Frame::Checkpoint(vec![]),
        ] {
            let mut buf = Vec::new();
            f.encode_into(&mut buf);
            let (decoded, consumed) = Frame::decode(&buf).unwrap().unwrap();
            assert_eq!(decoded, f);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let frames = [
            record_frame(1, false),
            record_frame(2, true),
            record_frame(3, false),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.encode_into(&mut buf);
        }
        let mut off = 0;
        for f in &frames {
            let (decoded, n) = Frame::decode(&buf[off..]).unwrap().unwrap();
            assert_eq!(&decoded, f);
            off += n;
        }
        assert_eq!(off, buf.len());
        assert!(Frame::decode(&buf[off..]).unwrap().is_none());
    }

    #[test]
    fn torn_write_detected() {
        let f = record_frame(1, false);
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        // Truncations anywhere are detected as end-of-stream, not garbage.
        for cut in 0..buf.len() {
            assert!(
                Frame::decode(&buf[..cut]).unwrap().is_none(),
                "cut at {cut}"
            );
        }
        // Bit flips in the body fail the CRC.
        for i in ENVELOPE_BYTES..buf.len() {
            buf[i] ^= 0x01;
            assert!(Frame::decode(&buf).unwrap().is_none(), "flip at {i}");
            buf[i] ^= 0x01;
        }
    }

    #[test]
    fn zero_and_absurd_lengths_stop_scan() {
        let zeros = [0u8; 64];
        assert!(Frame::decode(&zeros).unwrap().is_none());
        let mut absurd = vec![0u8; 64];
        absurd[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Frame::decode(&absurd).unwrap().is_none());
    }
}
