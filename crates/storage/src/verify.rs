//! Offline verification of a log server's on-disk state.
//!
//! Operators (and the `dlog-server --verify` mode) can audit a server
//! directory without starting the server: scan the whole stream, check
//! every CRC, rebuild the interval tables, and compare them with the
//! checkpoint. §5.3 lists "the repair of a log when one redundant copy is
//! lost" among the recovery operations of interest; verification is the
//! read side of that story.

use std::collections::HashMap;
use std::path::Path;

use dlog_types::{ClientId, Epoch, IntervalList, Result};

use crate::frame::Frame;
use crate::intervals::IntervalTable;
use crate::store::StoreOptions;
use crate::stream::SegmentedStream;

/// The outcome of verifying one server directory.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Valid frames scanned.
    pub frames: u64,
    /// Total payload bytes in valid record frames.
    pub payload_bytes: u64,
    /// Stream bytes covered by valid frames.
    pub valid_bytes: u64,
    /// Bytes past the last valid frame (torn tail, zero when clean).
    pub torn_tail_bytes: u64,
    /// Per-client interval lists rebuilt from the stream.
    pub clients: HashMap<ClientId, IntervalList>,
    /// Staged CopyLog records that were never installed, per client.
    pub orphan_staged: HashMap<ClientId, u64>,
    /// First structural error encountered (CRC failures simply end the
    /// scan; this reports ordering violations inside valid frames).
    pub structural_error: Option<String>,
}

impl VerifyReport {
    /// Total records across all clients (per-epoch copies counted).
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.clients.values().map(IntervalList::record_count).sum()
    }

    /// A directory is healthy when it has no torn tail, no structural
    /// errors, and no orphaned staged records.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.torn_tail_bytes == 0
            && self.structural_error.is_none()
            && self.orphan_staged.values().all(|&n| n == 0)
    }
}

/// Scan a server directory and audit its stream.
///
/// # Errors
/// Propagates I/O failures (an unreadable directory); content problems
/// are reported in the [`VerifyReport`] instead.
pub fn verify_dir(dir: impl AsRef<Path>, opts: &StoreOptions) -> Result<VerifyReport> {
    let stream = SegmentedStream::open(&dir, opts.segment_bytes)?;
    let mut report = VerifyReport::default();
    let mut table = IntervalTable::new();
    let mut staged: HashMap<ClientId, HashMap<Epoch, Vec<(dlog_types::LogRecord, u64)>>> =
        HashMap::new();

    let end = stream.scan_frames(stream.start(), |pos, frame| {
        if report.structural_error.is_some() {
            return;
        }
        report.frames += 1;
        match frame {
            Frame::Record {
                client,
                record,
                staged: false,
            } => {
                report.payload_bytes += record.data.len() as u64;
                if let Err(e) = table.append(client, record.lsn, record.epoch, pos) {
                    report.structural_error = Some(e);
                }
            }
            Frame::Record {
                client,
                record,
                staged: true,
            } => {
                report.payload_bytes += record.data.len() as u64;
                staged
                    .entry(client)
                    .or_default()
                    .entry(record.epoch)
                    .or_default()
                    .push((record, pos));
            }
            Frame::Install { client, epoch } => {
                let records = staged.get_mut(&client).and_then(|m| m.remove(&epoch));
                match records {
                    Some(mut records) => {
                        records.sort_by_key(|(r, _)| r.lsn);
                        for (r, pos) in records {
                            if let Err(e) = table.append(client, r.lsn, r.epoch, pos) {
                                report.structural_error = Some(e);
                                break;
                            }
                        }
                    }
                    None => {
                        report.structural_error =
                            Some(format!("install without staged records for {client}"));
                    }
                }
            }
            Frame::Checkpoint(body) => match IntervalTable::decode(&body) {
                // Write-once mode: the embedded snapshot supersedes the
                // running rebuild (same semantics as recovery).
                Ok(t) => table = t,
                Err(e) => {
                    report.structural_error = Some(format!("bad in-stream checkpoint: {e}"));
                }
            },
        }
    })?;
    report.valid_bytes = end.saturating_sub(stream.start());
    report.torn_tail_bytes = stream.end().saturating_sub(end);
    for c in table.clients().collect::<Vec<_>>() {
        report.clients.insert(c, table.interval_list(c));
    }
    for (c, m) in &staged {
        let orphans: u64 = m.values().map(|v| v.len() as u64).sum();
        if orphans > 0 {
            report.orphan_staged.insert(*c, orphans);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LogStore;
    use crate::NvramDevice;
    use dlog_types::{LogRecord, Lsn};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("dlog-verify-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn opts() -> StoreOptions {
        StoreOptions {
            fsync: false,
            checkpoint_every: 0,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn clean_directory_verifies_healthy() {
        let dir = tmpdir("healthy");
        {
            let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
            for c in 1..=3u64 {
                for i in 1..=20u64 {
                    store
                        .write(
                            ClientId(c),
                            &LogRecord::present(Lsn(i), Epoch(1), vec![7u8; 50]),
                        )
                        .unwrap();
                }
            }
            store.sync().unwrap();
        }
        let report = verify_dir(&dir, &opts()).unwrap();
        assert!(report.healthy(), "{report:?}");
        assert_eq!(report.clients.len(), 3);
        assert_eq!(report.record_count(), 60);
        assert_eq!(report.payload_bytes, 60 * 50);
        assert_eq!(report.torn_tail_bytes, 0);
    }

    #[test]
    fn detects_torn_tail() {
        let dir = tmpdir("torn");
        {
            let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
            for i in 1..=10u64 {
                store
                    .write(
                        ClientId(1),
                        &LogRecord::present(Lsn(i), Epoch(1), vec![7u8; 50]),
                    )
                    .unwrap();
            }
            store.sync().unwrap();
        }
        // Corrupt the last few bytes of the only segment.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        for b in &mut bytes[n - 20..] {
            *b ^= 0xFF;
        }
        std::fs::write(&seg, bytes).unwrap();

        let report = verify_dir(&dir, &opts()).unwrap();
        assert!(!report.healthy());
        assert!(report.torn_tail_bytes > 0);
        assert!(report.record_count() < 10, "tail records unreadable");
    }

    #[test]
    fn reports_orphan_staged() {
        let dir = tmpdir("orphan");
        {
            let mut store = LogStore::open(&dir, opts(), NvramDevice::new(1 << 20)).unwrap();
            store
                .write(
                    ClientId(1),
                    &LogRecord::present(Lsn(1), Epoch(1), vec![1u8; 10]),
                )
                .unwrap();
            store
                .stage_copy(
                    ClientId(1),
                    &LogRecord::present(Lsn(1), Epoch(2), vec![2u8; 10]),
                )
                .unwrap();
            store.sync().unwrap();
            // Never installed.
        }
        let report = verify_dir(&dir, &opts()).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.orphan_staged.get(&ClientId(1)), Some(&1));
    }

    #[test]
    fn empty_directory() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let report = verify_dir(&dir, &opts()).unwrap();
        assert!(report.healthy());
        assert_eq!(report.frames, 0);
        assert_eq!(report.record_count(), 0);
    }
}
