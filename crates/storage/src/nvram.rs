//! Simulated low-latency non-volatile memory (§4.1, §5.1).
//!
//! The paper's log servers buffer incoming log records in battery-backed
//! CMOS memory so that (a) a force can be acknowledged at memory speed and
//! (b) the disk is written **a track at a time**. The essential property is
//! that an insert is durable the moment it completes, without any disk
//! I/O.
//!
//! [`NvramDevice`] simulates the device: a cheaply clonable handle to a
//! bounded buffer whose contents survive a *simulated node crash* — tests
//! crash a [`crate::LogStore`] by dropping it while keeping the device
//! handle, exactly as a machine with standby power keeps its CMOS contents
//! across an OS crash. The buffer tracks the log-stream position its
//! pending bytes begin at, so recovery can replay them idempotently.
//!
//! The device also offers a small separate area for the *active interval*
//! snapshot (§4.3: "unless there is sufficient low latency non volatile
//! memory to store active intervals"), and the **guarded write** check of
//! §5.1: "data in directly addressable non volatile memory may be more
//! prone to corruption by software error. Needham et al. have suggested
//! that a solution ... is to provide hardware to help check that each new
//! value for the non volatile memory was computed from a previous value."
//! [`NvramDevice::insert_guarded`] models that hardware: every insert must
//! present the device's current *seal* (a digest of its contents), which
//! only code that read the previous state can know — a wild store from a
//! stray pointer fails the check and leaves the memory untouched.

use std::sync::Arc;

use parking_lot::Mutex;

/// Error returned when an insert does not fit the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvramFull {
    /// Bytes the caller tried to insert.
    pub requested: usize,
    /// Bytes currently free.
    pub available: usize,
}

impl std::fmt::Display for NvramFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nvram full: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for NvramFull {}

/// Error returned by a guarded insert whose seal does not match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealMismatch {
    /// The seal the caller presented.
    pub presented: u64,
    /// The device's actual seal.
    pub current: u64,
}

impl std::fmt::Display for SealMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nvram guard rejected write: presented seal {:#x}, device seal {:#x}",
            self.presented, self.current
        )
    }
}

impl std::error::Error for SealMismatch {}

/// Error of a guarded insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardError {
    /// The presented seal is not the device's current seal.
    Mismatch(SealMismatch),
    /// The bytes do not fit the device.
    Full(NvramFull),
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Mismatch(m) => m.fmt(f),
            GuardError::Full(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for GuardError {}

#[derive(Debug, Default)]
struct NvramState {
    /// Pending log-stream bytes not yet known to be on disk.
    track: Vec<u8>,
    /// Log-stream position at which `track` begins.
    base_pos: u64,
    /// Snapshot area for active interval ends.
    intervals: Option<Vec<u8>>,
    /// The §5.1 guard seal: a running digest over every state transition,
    /// which a legitimate writer learns only by reading the device.
    seal: u64,
}

impl NvramState {
    fn advance_seal(&mut self, bytes: &[u8]) {
        // FNV-1a over (old seal, operation bytes): cheap and stateful.
        let mut h = self.seal ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.seal = h;
    }
}

/// A simulated battery-backed memory device.
///
/// Clones share the same underlying memory; keep a clone across a simulated
/// crash to model the survival of the physical device.
#[derive(Clone, Debug)]
pub struct NvramDevice {
    state: Arc<Mutex<NvramState>>,
    capacity: usize,
}

impl NvramDevice {
    /// A device holding at most `capacity` pending bytes (one or a few disk
    /// tracks; the paper suggests track-sized buffering).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "nvram capacity must be positive");
        NvramDevice {
            state: Arc::new(Mutex::new(NvramState::default())),
            capacity,
        }
    }

    /// Device capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently pending (inserted but not yet retired).
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.state.lock().track.len()
    }

    /// Free space.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity - self.pending_len()
    }

    /// Stream position at which the pending bytes begin.
    #[must_use]
    pub fn base_pos(&self) -> u64 {
        self.state.lock().base_pos
    }

    /// Durably insert `bytes` at the tail of the pending track.
    ///
    /// This is the log server's force point: once `insert` returns, the
    /// bytes survive a crash.
    ///
    /// # Errors
    /// [`NvramFull`] when the bytes do not fit; the caller must retire a
    /// track to disk first.
    pub fn insert(&self, bytes: &[u8]) -> Result<(), NvramFull> {
        let mut st = self.state.lock();
        let available = self.capacity - st.track.len();
        if bytes.len() > available {
            return Err(NvramFull {
                requested: bytes.len(),
                available,
            });
        }
        st.track.extend_from_slice(bytes);
        st.advance_seal(bytes);
        Ok(())
    }

    /// The device's current guard seal (§5.1). A caller intending a
    /// guarded insert reads this first; a stray writer cannot know it.
    #[must_use]
    pub fn seal(&self) -> u64 {
        self.state.lock().seal
    }

    /// Guarded insert (§5.1, after Needham et al.): succeeds only when the
    /// caller presents the device's current seal, proving the new value
    /// "was computed from a previous value". Returns the new seal.
    ///
    /// # Errors
    /// [`GuardError::Mismatch`] (memory untouched) for a wrong seal;
    /// [`GuardError::Full`] when the bytes do not fit.
    pub fn insert_guarded(&self, presented_seal: u64, bytes: &[u8]) -> Result<u64, GuardError> {
        let mut st = self.state.lock();
        if presented_seal != st.seal {
            return Err(GuardError::Mismatch(SealMismatch {
                presented: presented_seal,
                current: st.seal,
            }));
        }
        let available = self.capacity - st.track.len();
        if bytes.len() > available {
            return Err(GuardError::Full(NvramFull {
                requested: bytes.len(),
                available,
            }));
        }
        st.track.extend_from_slice(bytes);
        st.advance_seal(bytes);
        Ok(st.seal)
    }

    /// Snapshot the pending track for writing to disk: returns the stream
    /// position it begins at and a copy of the bytes. The data stays in the
    /// device until [`NvramDevice::retire`] confirms it reached disk —
    /// a crash between the write and the retire loses nothing.
    #[must_use]
    pub fn pending(&self) -> (u64, Vec<u8>) {
        let mut out = Vec::new();
        let base = self.pending_into(&mut out);
        (base, out)
    }

    /// Copy the pending track into `out` (cleared first) and return the
    /// stream position it begins at. The flush hot path uses this with a
    /// reused scratch buffer so retiring a track allocates nothing after
    /// warm-up.
    pub fn pending_into(&self, out: &mut Vec<u8>) -> u64 {
        let st = self.state.lock();
        out.clear();
        out.extend_from_slice(&st.track);
        st.base_pos
    }

    /// Read `len` bytes at stream position `pos` out of the pending track,
    /// if that range is (fully) buffered. Lets the store serve reads of
    /// records that have not reached disk yet.
    #[must_use]
    pub fn read_at(&self, pos: u64, len: usize) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        self.read_at_into(pos, len, &mut out)?;
        Some(out)
    }

    /// [`NvramDevice::read_at`] into a caller-supplied buffer (cleared
    /// first); the store's read path reuses one scratch vector across
    /// frame reads.
    #[must_use]
    pub fn read_at_into(&self, pos: u64, len: usize, out: &mut Vec<u8>) -> Option<()> {
        let st = self.state.lock();
        let start = pos.checked_sub(st.base_pos)? as usize;
        let end = start.checked_add(len)?;
        let slice = st.track.get(start..end)?;
        out.clear();
        out.extend_from_slice(slice);
        Some(())
    }

    /// Retire the first `n` pending bytes: they are confirmed on disk and
    /// their space is reclaimed.
    ///
    /// # Panics
    /// Panics if `n` exceeds the pending length (a store logic error).
    pub fn retire(&self, n: usize) {
        let mut st = self.state.lock();
        assert!(n <= st.track.len(), "retiring more than pending");
        st.track.drain(..n);
        st.base_pos += n as u64;
        let n64 = (n as u64).to_le_bytes();
        st.advance_seal(&n64);
    }

    /// Reset the device for a freshly formatted store beginning at
    /// stream position `pos`.
    pub fn format(&self, pos: u64) {
        let mut st = self.state.lock();
        st.track.clear();
        st.base_pos = pos;
        st.intervals = None;
        let p = pos.to_le_bytes();
        st.advance_seal(&p);
    }

    /// Store the active-interval snapshot.
    pub fn store_intervals(&self, bytes: Vec<u8>) {
        self.state.lock().intervals = Some(bytes);
    }

    /// Fetch the active-interval snapshot, if any.
    #[must_use]
    pub fn load_intervals(&self) -> Option<Vec<u8>> {
        self.state.lock().intervals.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_pending_retire() {
        let dev = NvramDevice::new(16);
        assert_eq!(dev.available(), 16);
        dev.insert(b"abcd").unwrap();
        dev.insert(b"efgh").unwrap();
        assert_eq!(dev.pending_len(), 8);
        let (pos, bytes) = dev.pending();
        assert_eq!(pos, 0);
        assert_eq!(bytes, b"abcdefgh");
        dev.retire(4);
        assert_eq!(dev.base_pos(), 4);
        assert_eq!(dev.pending(), (4, b"efgh".to_vec()));
    }

    #[test]
    fn rejects_overflow() {
        let dev = NvramDevice::new(8);
        dev.insert(b"12345").unwrap();
        let err = dev.insert(b"6789").unwrap_err();
        assert_eq!(
            err,
            NvramFull {
                requested: 4,
                available: 3
            }
        );
        // Contents unchanged by the failed insert.
        assert_eq!(dev.pending().1, b"12345");
    }

    #[test]
    fn survives_clone_like_a_device() {
        let dev = NvramDevice::new(64);
        dev.insert(b"persist me").unwrap();
        let surviving_handle = dev.clone();
        drop(dev); // the "node" crashes
        assert_eq!(surviving_handle.pending().1, b"persist me");
    }

    #[test]
    fn read_at_bounds() {
        let dev = NvramDevice::new(64);
        dev.format(100);
        dev.insert(b"0123456789").unwrap();
        assert_eq!(dev.read_at(100, 4), Some(b"0123".to_vec()));
        assert_eq!(dev.read_at(106, 4), Some(b"6789".to_vec()));
        assert_eq!(dev.read_at(106, 5), None); // runs past the tail
        assert_eq!(dev.read_at(99, 1), None); // before the base
    }

    #[test]
    fn interval_snapshot_area() {
        let dev = NvramDevice::new(8);
        assert_eq!(dev.load_intervals(), None);
        dev.store_intervals(vec![9, 9, 9]);
        assert_eq!(dev.load_intervals(), Some(vec![9, 9, 9]));
        dev.format(0);
        assert_eq!(dev.load_intervals(), None);
    }

    #[test]
    #[should_panic(expected = "retiring more than pending")]
    fn retire_overflow_panics() {
        let dev = NvramDevice::new(8);
        dev.insert(b"ab").unwrap();
        dev.retire(3);
    }

    #[test]
    fn guarded_insert_requires_current_seal() {
        let dev = NvramDevice::new(64);
        let seal0 = dev.seal();
        let seal1 = dev.insert_guarded(seal0, b"first").unwrap();
        assert_ne!(seal0, seal1);
        // A wild writer replaying the old seal is rejected, untouched.
        let before = dev.pending();
        match dev.insert_guarded(seal0, b"stray") {
            Err(GuardError::Mismatch(m)) => {
                assert_eq!(m.presented, seal0);
                assert_eq!(m.current, seal1);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert_eq!(dev.pending(), before);
        // The legitimate writer continues from the fresh seal.
        let seal2 = dev.insert_guarded(seal1, b"second").unwrap();
        assert_ne!(seal1, seal2);
        assert_eq!(dev.pending().1, b"firstsecond");
    }

    #[test]
    fn guarded_insert_reports_full() {
        let dev = NvramDevice::new(4);
        let seal = dev.seal();
        match dev.insert_guarded(seal, b"too large") {
            Err(GuardError::Full(f)) => assert_eq!(f.requested, 9),
            other => panic!("expected full, got {other:?}"),
        }
    }

    #[test]
    fn every_state_transition_advances_the_seal() {
        let dev = NvramDevice::new(64);
        let s0 = dev.seal();
        dev.insert(b"x").unwrap();
        let s1 = dev.seal();
        assert_ne!(s0, s1);
        dev.retire(1);
        let s2 = dev.seal();
        assert_ne!(s1, s2);
        dev.format(0);
        assert_ne!(s2, dev.seal());
    }
}
